#!/bin/bash
# Regenerates every table/figure of the paper at the default (small) tier.
# Output: results/*.csv + results/experiments.log
set -u
cd "$(dirname "$0")"
mkdir -p results
LOG=results/experiments.log
: > "$LOG"
run() {
  echo "### $*" | tee -a "$LOG"
  local t0=$SECONDS
  "$@" >> "$LOG" 2>&1
  echo "[took $((SECONDS-t0))s]" | tee -a "$LOG"
}
cargo build -p bench --release >> "$LOG" 2>&1 || { echo BUILD_FAILED | tee -a "$LOG"; exit 1; }

run ./target/release/table2 tier=small reps=3 p=4 seed=1
run ./target/release/table3 tier=small reps=2 p=4 seed=1
run ./target/release/fig5_weak base_log=11 pmax=8 reps=2 seed=1
run ./target/release/fig6_strong all pmax=8 seed=1 tier=small
run ./target/release/coarsening_effectiveness tier=small p=4 seed=1
run ./target/release/ablation all tier=small p=4 reps=2 seed=1
# Observed reference run: phase/level/refinement tables to the log, full
# schema-versioned RunReport JSON to results/ (see EXPERIMENTS.md).
run ./target/release/partition graph=amazon tier=small k=4 p=4 seed=1 report=results/run_report.json
echo "ALL EXPERIMENTS DONE" | tee -a "$LOG"
