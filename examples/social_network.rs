//! Partitioning a social network for distributed graph processing — the
//! paper's motivating scenario (PageRank-style workloads on k machines).
//!
//! Generates a community-structured social-network stand-in, partitions it
//! into k = 16 blocks with ParHIP, and compares against hash partitioning
//! (the cloud-toolkit default the paper calls out): cut, communication
//! volume, balance.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use pgp::parhip::{partition_parallel, GraphClass, ParhipConfig};
use pgp::pgp_baselines::hash_partition;
use pgp::pgp_gen::sbm::{sbm, SbmParams};
use pgp::pgp_graph::metrics::communication_volume;

fn main() {
    let n = 20_000;
    let (graph, _truth) = sbm(
        n,
        SbmParams {
            intra_degree: 10.0,
            inter_degree: 2.5,
            ..Default::default()
        },
        7,
    );
    println!(
        "social network stand-in: n = {}, m = {}, max degree = {}",
        graph.n(),
        graph.m(),
        graph.max_degree()
    );

    let k = 16;
    let cfg = ParhipConfig::fast(k, GraphClass::Social, 1);
    let (parhip_p, stats) = partition_parallel(&graph, 4, &cfg);
    let hash_p = hash_partition(&graph, k, 1);

    let (pv_total, pv_max) = communication_volume(&graph, &parhip_p);
    let (hv_total, hv_max) = communication_volume(&graph, &hash_p);

    println!("\n{:<22}{:>12}{:>12}", "", "ParHIP", "hash");
    println!(
        "{:<22}{:>12}{:>12}",
        "edge cut",
        parhip_p.edge_cut(&graph),
        hash_p.edge_cut(&graph)
    );
    println!(
        "{:<22}{:>12}{:>12}",
        "comm volume (total)", pv_total, hv_total
    );
    println!("{:<22}{:>12}{:>12}", "comm volume (max/PE)", pv_max, hv_max);
    println!(
        "{:<22}{:>12.3}{:>12.3}",
        "imbalance",
        parhip_p.imbalance(&graph),
        hash_p.imbalance(&graph)
    );
    println!(
        "\ncoarsening shrank the graph to {} nodes over {} levels",
        stats.coarsest_n, stats.levels
    );
    let ratio = hash_p.edge_cut(&graph) as f64 / parhip_p.edge_cut(&graph) as f64;
    println!("ParHIP cuts {ratio:.1}x fewer edges than hash partitioning");
    assert!(ratio > 2.0, "community structure should be worth >2x");
}
