//! The paper's headline: partitioning a web graph "in seconds" with the
//! *minimal* configuration while matching-based competitors cannot handle
//! the instance at all.
//!
//! Scaled to a laptop: a heavy-tailed R-MAT web stand-in; ParHIP minimal
//! vs fast vs the ParMetis-like baseline under the memory model that
//! reproduces its failure.
//!
//! ```text
//! cargo run --release --example web_graph_speedrun
//! ```

use pgp::parhip::{partition_parallel, GraphClass, ParhipConfig, Preset};
use pgp::pgp_baselines::{parmetis_like, BaselineError, ParmetisLikeConfig};
use pgp::pgp_gen::webgraph::{web_graph, WebGraphParams};
use std::time::Instant;

fn main() {
    // A web-crawl stand-in: hub pages + site-level community structure
    // (see pgp_gen::webgraph for why both properties matter).
    let (graph, _) = web_graph(
        1 << 16,
        WebGraphParams {
            intra_degree: 20.0,
            inter_degree: 4.0,
            ..Default::default()
        },
        99,
    );
    println!(
        "web graph stand-in: n = {}, m = {}, max degree = {}",
        graph.n(),
        graph.m(),
        graph.max_degree()
    );
    let k = 2;
    let p = 4;

    for preset in [Preset::Minimal, Preset::Fast] {
        let cfg = ParhipConfig::preset(preset, k, GraphClass::Social, 3);
        let t = Instant::now();
        let (part, stats) = partition_parallel(&graph, p, &cfg);
        println!(
            "{preset:?}: cut = {}, balanced = {}, {:.2}s wall ({} levels, coarsest {})",
            part.edge_cut(&graph),
            part.is_balanced(&graph, 0.03),
            t.elapsed().as_secs_f64(),
            stats.levels,
            stats.coarsest_n,
        );
    }

    // The baseline: matching cannot shrink the hub-dominated graph, the
    // coarsest graph must be replicated per PE, and the memory model
    // reports the paper's '*' outcome.
    let budget = 4_500_000; // bytes/PE, the "cluster node" of the scaled model
    let cfg = ParmetisLikeConfig::new(k, 3).with_memory_budget(budget);
    match parmetis_like(&graph, p, &cfg) {
        Ok((part, stats)) => println!(
            "ParMetis-like: cut = {} (coarsest {} after {} levels)",
            part.edge_cut(&graph),
            stats.coarsest_n,
            stats.levels
        ),
        Err(BaselineError::OutOfMemory {
            required,
            budget,
            coarsest_n,
        }) => println!(
            "ParMetis-like: FAILED — coarsening stalled at {coarsest_n} nodes; \
             replication needs {required} bytes/PE > budget {budget} (the paper's '*')"
        ),
    }
}
