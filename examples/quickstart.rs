//! Quickstart: build a graph, partition it on 4 simulated PEs, inspect the
//! result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pgp::parhip::{partition_parallel, GraphClass, ParhipConfig};
use pgp::pgp_graph::GraphBuilder;

fn main() {
    // A graph can be built from any edge list; here: two dense communities
    // bridged by a single edge, plus a custom weighted edge.
    let mut b = GraphBuilder::new(8);
    for &(u, v) in &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
        b.push_edge(u, v, 1);
    }
    for &(u, v) in &[(4, 5), (4, 6), (5, 6), (5, 7), (6, 7)] {
        b.push_edge(u, v, 1);
    }
    b.push_edge(3, 4, 1); // the bridge
    let graph = b.build();

    // Partition into k = 2 blocks with 3 % imbalance on 4 PEs, using the
    // paper's "fast" configuration.
    let mut cfg = ParhipConfig::fast(2, GraphClass::Social, /* seed */ 42);
    cfg.coarsest_nodes_per_block = 4; // tiny demo graph: coarsen it anyway
    let (partition, stats) = partition_parallel(&graph, 4, &cfg);

    println!("edge cut        : {}", partition.edge_cut(&graph));
    println!("block weights   : {:?}", partition.block_weights());
    println!("imbalance       : {:.3}", partition.imbalance(&graph));
    println!("assignment      : {:?}", partition.assignment());
    println!("hierarchy depth : {}", stats.levels);
    assert_eq!(
        partition.edge_cut(&graph),
        1,
        "the bridge is the optimal cut"
    );
}
