//! METIS-format I/O: write a generated graph to the standard `.graph`
//! text format (readable by METIS/KaHIP/Chaco-family tools), read it back,
//! partition it, and emit the partition file in the conventional
//! one-block-per-line format.
//!
//! ```text
//! cargo run --release --example io_roundtrip
//! ```

use pgp::parhip::{partition_parallel, GraphClass, ParhipConfig};
use pgp::pgp_graph::io::{read_metis_file, read_partition, write_metis_file, write_partition};

fn main() {
    let dir = std::env::temp_dir().join("pgp_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let graph_path = dir.join("example.graph");
    let part_path = dir.join("example.graph.part.4");

    // Generate and persist.
    let (graph, _) = pgp::pgp_gen::sbm::sbm(5_000, Default::default(), 21);
    write_metis_file(&graph, &graph_path).expect("write graph");
    println!(
        "wrote {} ({} nodes, {} edges, METIS format)",
        graph_path.display(),
        graph.n(),
        graph.m()
    );

    // Read back and verify the round trip.
    let loaded = read_metis_file(&graph_path).expect("read graph");
    assert_eq!(loaded, graph, "METIS round trip must be lossless");

    // Partition and write the partition file.
    let cfg = ParhipConfig::fast(4, GraphClass::Social, 5);
    let (partition, _) = partition_parallel(&loaded, 2, &cfg);
    let f = std::fs::File::create(&part_path).expect("create partition file");
    write_partition(&partition, f).expect("write partition");
    // And the partition file reads back losslessly too.
    let reread = read_partition(
        &loaded,
        std::fs::File::open(&part_path).expect("open partition"),
    )
    .expect("read partition");
    assert_eq!(reread.assignment(), partition.assignment());
    println!(
        "wrote {} (cut = {}, imbalance = {:.3})",
        part_path.display(),
        partition.edge_cut(&loaded),
        partition.imbalance(&loaded)
    );
}
