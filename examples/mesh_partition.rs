//! Mesh-type workloads (the `rggX` / `delX` families of the paper's
//! scalability study): on meshes, matching-based multilevel partitioning
//! is in its comfort zone — the gap to ParHIP narrows, exactly as Table II
//! reports ("on mesh type networks our algorithm does not have the same
//! advantage as on social networks").
//!
//! ```text
//! cargo run --release --example mesh_partition
//! ```

use pgp::parhip::{GraphClass, ParhipConfig, Preset};
use pgp::pgp_baselines::ParmetisLikeConfig;
use pgp::pgp_dmp::collectives::allgatherv;
use pgp::pgp_dmp::DistGraph;
use pgp::pgp_graph::Partition;

fn main() {
    let k = 8;
    let p = 4;
    for (name, graph) in [
        (
            "rgg15",
            pgp::pgp_gen::ensure_connected(pgp::pgp_gen::rgg::rgg_x(15, 5)),
        ),
        ("del14", pgp::pgp_gen::delaunay::delaunay_x(14, 5)),
    ] {
        println!("\n[{name}] n = {}, m = {}", graph.n(), graph.m());

        // ParHIP eco (quality-oriented) on the mesh class.
        let cfg = ParhipConfig::preset(Preset::Eco, k, GraphClass::Mesh, 11);
        let (part, _) = pgp::parhip::partition_parallel(&graph, p, &cfg);
        println!(
            "  ParHIP eco     : cut = {:>6}, imbalance = {:.3}",
            part.edge_cut(&graph),
            part.imbalance(&graph)
        );

        // The ParMetis-like baseline — driven through the SPMD interface to
        // show the lower-level API as well.
        let cfg = ParmetisLikeConfig::new(k, 11);
        let results = pgp::pgp_dmp::run(p, |comm| {
            let dg = DistGraph::from_global(comm, &graph);
            let (local, stats) =
                pgp::pgp_baselines::parmetis_like_distributed(comm, &dg, &cfg).expect("fits");
            (allgatherv(comm, local), stats.levels)
        });
        let (assignment, levels) = results
            .into_iter()
            .next()
            .expect("run() always yields p >= 1 results");
        let part = Partition::from_assignment(&graph, k, assignment);
        println!(
            "  ParMetis-like  : cut = {:>6}, imbalance = {:.3} ({levels} levels)",
            part.edge_cut(&graph),
            part.imbalance(&graph)
        );
    }
}
