//! Facade crate re-exporting the whole parallel-graph-partitioning stack.
//!
//! This workspace reproduces *Parallel Graph Partitioning for Complex
//! Networks* (Meyerhenke, Sanders, Schulz; IPDPS 2015) — the system published
//! as **ParHIP**. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the reproduction results.
//!
//! The individual crates:
//!
//! * [`pgp_graph`] — static CSR graphs, partitions, contraction, metrics, I/O.
//! * [`pgp_dmp`] — the distributed message-passing substrate (PEs as threads,
//!   MPI-style collectives, distributed graphs with ghost nodes).
//! * [`pgp_gen`] — graph generators (rgg, Delaunay, R-MAT, BA, SBM, meshes…).
//! * [`pgp_lp`] — size-constrained label propagation (sequential + parallel).
//! * [`pgp_seq`] — sequential multilevel partitioner (KaFFPa-lite).
//! * [`pgp_evo`] — the distributed evolutionary algorithm (KaFFPaE).
//! * [`parhip`] — the overall parallel system from the paper.
//! * [`pgp_baselines`] — ParMetis-like, hash, and recursive-bisection baselines.
//! * [`pgp_obs`] — observability: phase tracing, comm counters, run reports.

pub use parhip;
pub use pgp_baselines;
pub use pgp_dmp;
pub use pgp_evo;
pub use pgp_gen;
pub use pgp_graph;
pub use pgp_lp;
pub use pgp_obs;
pub use pgp_seq;
