//! Live telemetry viewer and stream checker for the ParHIP pipeline
//! (DESIGN.md §16).
//!
//! ```text
//! pgp-top --follow <file.ndjson> [--interval-ms 200]
//! pgp-top --validate <file.ndjson> [--report <report.json>] [--min-snapshots <n>]
//! ```
//!
//! `--follow` tails an NDJSON telemetry stream being written by a
//! concurrent `pgp-partition --telemetry <file>` (or `bench partition
//! telemetry=<file>`) run and repaints a per-PE straggler table until
//! the stream's `summary` line arrives. `--validate` checks a finished
//! stream — meta line first, per-rank sequence and counter monotonicity,
//! summary totals — and, given the run's JSON report, that the stream's
//! final aggregates exactly match the report's per-PE comm counters (the
//! conservation contract CI's live-monitor smoke job enforces). Exits
//! nonzero on any violation.

use pgp::pgp_obs::{
    check_stream_matches_report, render_live_table, validate_live_stream, JsonValue,
    MetricSnapshot, RunReport,
};
use std::process::ExitCode;
use std::time::Duration;

fn value_arg(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: pgp-top --follow <file.ndjson> [--interval-ms <n>]\n\
         \x20      pgp-top --validate <file.ndjson> [--report <report.json>] \
         [--min-snapshots <n>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = value_arg(&args, "--follow") {
        let interval = value_arg(&args, "--interval-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(200u64);
        follow(&path, Duration::from_millis(interval))
    } else if let Some(path) = value_arg(&args, "--validate") {
        validate(
            &path,
            value_arg(&args, "--report").as_deref(),
            value_arg(&args, "--min-snapshots").and_then(|v| v.parse().ok()),
        )
    } else {
        usage()
    }
}

/// Tails the stream file, keeping each rank's latest snapshot and
/// repainting the table, until the writer's `summary` line lands (or the
/// user interrupts). Tolerates the file not existing yet — a follower is
/// typically started moments before the partitioner.
fn follow(path: &str, interval: Duration) -> ExitCode {
    loop {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        let mut p = 0usize;
        let mut done = false;
        let mut latest: Vec<Option<MetricSnapshot>> = Vec::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let Ok(v) = JsonValue::parse(line) else {
                continue; // torn tail of an in-flight write
            };
            match v.get("type").and_then(JsonValue::as_str) {
                Some("meta") => {
                    p = v
                        .get("p")
                        .and_then(JsonValue::as_u64)
                        .and_then(|n| usize::try_from(n).ok())
                        .unwrap_or(0);
                    latest.resize(p, None);
                }
                Some("snapshot") => {
                    if let Ok(snap) = MetricSnapshot::from_json_line(line) {
                        let rank = snap.rank;
                        if rank < latest.len() {
                            latest[rank] = Some(snap);
                        }
                    }
                }
                Some("summary") => done = true,
                _ => {}
            }
        }
        // ANSI clear + home, like `top`.
        if p > 0 {
            eprint!("\x1b[2J\x1b[H{}", render_live_table(&latest));
        } else {
            eprintln!("waiting for {path} ...");
        }
        if done {
            eprintln!("stream complete.");
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}

/// Validates a finished stream (and optionally its run report); prints
/// what was checked and exits nonzero on the first violation.
fn validate(path: &str, report_path: Option<&str>, min_snapshots: Option<u64>) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = match validate_live_stream(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid telemetry stream {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "{path}: valid stream, p = {}, backend = {}, {} snapshot(s), {} alert(s)",
        summary.p, summary.backend, summary.snapshots, summary.alerts
    );
    if let Some(min) = min_snapshots {
        if summary.snapshots < min {
            eprintln!(
                "error: {} snapshot(s) < required minimum {min}",
                summary.snapshots
            );
            return ExitCode::FAILURE;
        }
    }
    if let Some(report_path) = report_path {
        let report = match std::fs::read_to_string(report_path)
            .map_err(|e| e.to_string())
            .and_then(|t| RunReport::from_json(&t))
        {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error reading report {report_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = check_stream_matches_report(&summary, &report) {
            eprintln!("stream/report mismatch: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("stream aggregates match {report_path} exactly");
    }
    ExitCode::SUCCESS
}
