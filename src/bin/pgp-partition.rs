//! Command-line graph partitioner, in the spirit of the KaHIP/ParHIP
//! executables: reads a METIS-format graph, writes a partition file.
//!
//! ```text
//! pgp-partition <graph.metis> k=8 [preset=fast|eco|minimal] [p=4]
//!               [eps=0.03] [seed=0] [class=auto|social|mesh]
//!               [backend=threads|sockets] [threads-per-pe=1]
//!               [output=<graph>.part.<k>]
//!               [report=<file.json>] [trace=<file.json>]
//! ```
//!
//! `backend=<b>` (or `--backend <b>`) selects the comm transport
//! (DESIGN.md §15): `threads` (default) runs the PEs as OS threads over
//! in-process mailboxes; `sockets` moves every message through
//! length-prefixed frames on Unix-domain socketpairs. The partition is
//! bit-identical either way (the cross-backend golden tests enforce it);
//! `sockets` exists to exercise the real wire path and is the transport
//! the multi-process runner uses.
//!
//! `threads-per-pe=<n>` (or `--threads-per-pe <n>`) gives every PE `n`
//! worker threads for the hybrid SCLP (DESIGN.md §13). `1` is the classic
//! single-threaded path; any `n ≥ 2` is deterministic in `(seed, p)` and
//! produces identical output for every `n ≥ 2`.
//!
//! `report=<file.json>` (or `--report <file.json>`) runs with the
//! observability recorder enabled and writes the schema-versioned JSON
//! `RunReport` — per-PE phase timings, per-tag comm counters, per-level
//! structural metrics (DESIGN.md §10, EXPERIMENTS.md for consuming it).
//!
//! `trace=<file.json>` (or `--trace <file.json>`) additionally records a
//! per-PE event timeline and writes it as Chrome-trace/Perfetto JSON
//! (DESIGN.md §11) — open at <https://ui.perfetto.dev> to see one track
//! per PE with spans, collectives, receive waits, and send→recv flows.
//!
//! `--telemetry <file.ndjson>` (or `telemetry=<file>`) streams live
//! per-PE metric snapshots to the file as NDJSON while the run is in
//! flight (DESIGN.md §16): one `meta` line, then `snapshot`/`alert`
//! lines as PEs cross phase boundaries, then a final `summary` whose
//! aggregates exactly match the run report's counters. `--monitor` (or
//! `monitor=1`) additionally renders a live per-PE straggler table to
//! stderr (use `pgp-top --follow <file>` to watch from another
//! terminal, or `pgp-top --validate <file>` to check a finished
//! stream).
//!
//! `--recover` (or `recover=1`) runs under the automatic-recovery
//! supervisor (DESIGN.md §14): V-cycle boundaries are checkpointed every
//! `checkpoint-every=<n>` cycles (default 1), confirmed PE deaths trigger
//! respawn-and-resume from the latest snapshot, and uncorroborated
//! timeouts are retried up to `max-retries=<n>` times (default 3) with
//! seeded exponential backoff before escalating. The partition is
//! bit-identical to the fault-free run; recovery counters land in the
//! run report's `recovery` block.

use pgp::parhip::{
    partition_parallel, partition_parallel_supervised, partition_parallel_with_obs,
    CheckpointPolicy, GraphClass, ParhipConfig, Preset, RecoveryLimits,
};
use pgp::pgp_graph::io::{read_metis_file, write_partition};
use pgp::pgp_graph::stats::GraphStats;
use std::process::ExitCode;

fn arg(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("{key}=")).map(|v| v.to_string()))
}

/// Enables live publication on `obs` and spawns the aggregating monitor:
/// NDJSON to `telemetry_path` (or discarded when only the table was
/// asked for), straggler table to stderr when `render` is set.
fn start_monitor(
    obs: &std::sync::Arc<pgp::pgp_obs::Obs>,
    telemetry_path: Option<&str>,
    render: bool,
) -> std::io::Result<pgp::pgp_obs::LiveMonitor> {
    obs.enable_live();
    let out: Box<dyn std::io::Write + Send> = match telemetry_path {
        Some(path) => Box::new(std::fs::File::create(path)?),
        None => Box::new(std::io::sink()),
    };
    let cfg = pgp::pgp_obs::LiveMonitorConfig {
        render,
        ..Default::default()
    };
    pgp::pgp_obs::LiveMonitor::spawn(std::sync::Arc::clone(obs), cfg, out)
}

/// Stops the monitor (final slot sweep + `summary` line) and reports
/// what it streamed.
fn finish_monitor(monitor: pgp::pgp_obs::LiveMonitor, telemetry_path: Option<&str>) {
    match monitor.finish() {
        Ok(stats) => {
            if let Some(path) = telemetry_path {
                eprintln!(
                    "wrote telemetry {path}: {} snapshot(s), {} alert(s)",
                    stats.snapshots, stats.alerts
                );
            }
        }
        Err(e) => eprintln!("warning: telemetry stream failed: {e}"),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Normalize the conventional `--flag <path>` spellings into the
    // `key=value` form before positional-argument detection.
    for flag in [
        "report",
        "trace",
        "backend",
        "threads-per-pe",
        "max-retries",
        "checkpoint-every",
        "telemetry",
    ] {
        if let Some(i) = args.iter().position(|a| a == &format!("--{flag}")) {
            if i + 1 >= args.len() {
                eprintln!("error: --{flag} requires a value argument");
                return ExitCode::from(2);
            }
            let flag_value = args.remove(i + 1);
            args[i] = format!("{flag}={flag_value}");
        }
    }
    // `--recover` and `--monitor` are boolean switches, not value flags.
    if let Some(i) = args.iter().position(|a| a == "--recover") {
        args[i] = "recover=1".to_string();
    }
    if let Some(i) = args.iter().position(|a| a == "--monitor") {
        args[i] = "monitor=1".to_string();
    }
    let Some(path) = args.iter().find(|a| !a.contains('=')) else {
        eprintln!(
            "usage: pgp-partition <graph.metis> k=<blocks> [preset=fast|eco|minimal] \
             [p=<PEs>] [eps=0.03] [seed=0] [class=auto|social|mesh] \
             [backend=threads|sockets] [threads-per-pe=<n>] [output=<file>] \
             [report=<file.json>] [trace=<file.json>] \
             [telemetry=<file.ndjson>] [--monitor] [--recover] \
             [max-retries=<n>] [checkpoint-every=<n>]"
        );
        return ExitCode::from(2);
    };
    let Some(k) = arg(&args, "k").and_then(|v| v.parse::<usize>().ok()) else {
        eprintln!("error: missing or invalid k=<blocks>");
        return ExitCode::from(2);
    };

    let graph = match read_metis_file(path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("read {path}: n = {}, m = {}", graph.n(), graph.m());

    // Class: explicit, or inferred from the degree distribution the way
    // Table I classifies instances.
    let class = match arg(&args, "class").as_deref() {
        Some("social") => GraphClass::Social,
        Some("mesh") => GraphClass::Mesh,
        Some("auto") | None => {
            let stats = GraphStats::compute(&graph, 256);
            let c = if stats.looks_like_complex_network() {
                GraphClass::Social
            } else {
                GraphClass::Mesh
            };
            eprintln!(
                "class=auto: degree skew {:.1} -> {:?}",
                stats.degree_skew, c
            );
            c
        }
        Some(other) => {
            eprintln!("error: unknown class '{other}'");
            return ExitCode::from(2);
        }
    };
    let preset = match arg(&args, "preset").as_deref() {
        Some("eco") => Preset::Eco,
        Some("minimal") => Preset::Minimal,
        Some("fast") | None => Preset::Fast,
        Some(other) => {
            eprintln!("error: unknown preset '{other}'");
            return ExitCode::from(2);
        }
    };
    let p: usize = arg(&args, "p").and_then(|v| v.parse().ok()).unwrap_or(4);
    let seed: u64 = arg(&args, "seed").and_then(|v| v.parse().ok()).unwrap_or(0);
    let eps: f64 = arg(&args, "eps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.03);

    let threads_per_pe: usize = arg(&args, "threads-per-pe")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let backend = match arg(&args, "backend").as_deref().map(str::parse) {
        None => pgp::pgp_dmp::BackendKind::Threads,
        Some(Ok(b)) => b,
        Some(Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let recover = arg(&args, "recover").is_some_and(|v| v != "0");
    let max_retries: u32 = arg(&args, "max-retries")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| RecoveryLimits::default().max_retries);
    let checkpoint_every: usize = arg(&args, "checkpoint-every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let mut cfg = ParhipConfig::preset(preset, k, class, seed);
    cfg.eps = eps;
    cfg.backend = backend;
    cfg.threads_per_pe = threads_per_pe;
    cfg.checkpoint = CheckpointPolicy::every(checkpoint_every);
    let report_path = arg(&args, "report");
    let trace_path = arg(&args, "trace");
    let telemetry_path = arg(&args, "telemetry");
    let monitor_on = arg(&args, "monitor").is_some_and(|v| v != "0");
    let live = telemetry_path.is_some() || monitor_on;
    let t0 = std::time::Instant::now();
    let (partition, stats) = if recover {
        let obs = if trace_path.is_some() {
            Some(pgp::pgp_obs::Obs::with_trace(
                p,
                pgp::pgp_obs::DEFAULT_TRACE_CAPACITY,
            ))
        } else if report_path.is_some() || live {
            Some(pgp::pgp_obs::Obs::new(p))
        } else {
            None
        };
        let monitor = match &obs {
            Some(obs) if live => {
                obs.set_backend(backend.name());
                match start_monitor(obs, telemetry_path.as_deref(), monitor_on) {
                    Ok(m) => Some(m),
                    Err(e) => {
                        eprintln!("error starting telemetry stream: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => None,
        };
        let run = pgp::pgp_dmp::RunConfig {
            backend: cfg.backend,
            obs: obs.clone(),
            ..Default::default()
        };
        let limits = RecoveryLimits {
            max_retries,
            ..RecoveryLimits::default()
        };
        let (partition, stats, recovery) =
            match partition_parallel_supervised(&graph, p, &cfg, run, limits) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: recovery budget exhausted: {e:?}");
                    return ExitCode::FAILURE;
                }
            };
        eprintln!(
            "recovery: {} attempt(s), {} transient retries, {} full recoveries, \
             dead ranks {:?}, {} lost V-cycle(s)",
            recovery.attempts,
            recovery.retries,
            recovery.recoveries,
            recovery.dead_ranks,
            recovery.lost_cycles
        );
        // Stop the monitor before assembling the report so every alert
        // it raised (including ones from the final slot sweep) is in the
        // report's `alerts` block.
        if let Some(monitor) = monitor {
            finish_monitor(monitor, telemetry_path.as_deref());
        }
        if let Some(obs) = &obs {
            if let Some(trace_path) = &trace_path {
                let trace = obs.trace().expect("registry was built with tracing on");
                if let Err(e) = std::fs::write(trace_path, pgp::pgp_obs::to_perfetto_json(&trace)) {
                    eprintln!("error writing {trace_path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote trace {trace_path}");
            }
            if let Some(report_path) = &report_path {
                if let Err(e) = std::fs::write(report_path, obs.report().to_json(false)) {
                    eprintln!("error writing {report_path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote run report {report_path}");
            }
        }
        (partition, stats)
    } else if live || trace_path.is_some() || report_path.is_some() {
        let obs = if trace_path.is_some() {
            pgp::pgp_obs::Obs::with_trace(p, pgp::pgp_obs::DEFAULT_TRACE_CAPACITY)
        } else {
            pgp::pgp_obs::Obs::new(p)
        };
        let monitor = if live {
            obs.set_backend(backend.name());
            match start_monitor(&obs, telemetry_path.as_deref(), monitor_on) {
                Ok(m) => Some(m),
                Err(e) => {
                    eprintln!("error starting telemetry stream: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            None
        };
        let (partition, stats) =
            partition_parallel_with_obs(&graph, p, &cfg, std::sync::Arc::clone(&obs));
        // Monitor first (final slot sweep + summary line), then the
        // report, so streamed aggregates and report counters agree and
        // every alert is in both.
        if let Some(monitor) = monitor {
            finish_monitor(monitor, telemetry_path.as_deref());
        }
        if let Some(trace_path) = &trace_path {
            let trace = obs.trace().expect("registry was built with tracing on");
            if let Err(e) = std::fs::write(trace_path, pgp::pgp_obs::to_perfetto_json(&trace)) {
                eprintln!("error writing {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote trace {trace_path}");
        }
        if let Some(report_path) = &report_path {
            if let Err(e) = std::fs::write(report_path, obs.report().to_json(false)) {
                eprintln!("error writing {report_path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote run report {report_path}");
        }
        (partition, stats)
    } else {
        partition_parallel(&graph, p, &cfg)
    };
    eprintln!(
        "partitioned in {:.2}s wall: cut = {}, imbalance = {:.4} ({} levels, coarsest n = {})",
        t0.elapsed().as_secs_f64(),
        partition.edge_cut(&graph),
        partition.imbalance(&graph),
        stats.levels,
        stats.coarsest_n
    );
    if let Err(e) = partition.validate(&graph, eps) {
        eprintln!("warning: balance constraint not met exactly: {e}");
    }

    let output = arg(&args, "output").unwrap_or_else(|| format!("{path}.part.{k}"));
    let file = match std::fs::File::create(&output) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error creating {output}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = write_partition(&partition, file) {
        eprintln!("error writing {output}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {output}");
    ExitCode::SUCCESS
}
