//! Workspace automation tasks (`cargo xtask <command>`).
//!
//! `cargo xtask lint` enforces the repo-specific correctness-wall rules that
//! clippy cannot express (ISSUE 1):
//!
//! 1. **id-cast** — in the ID-domain hot-path files (the distributed
//!    substrate and the kernels that mix local IDs, global IDs, PE ranks,
//!    and array indices), raw `as` casts between integer domains are
//!    forbidden; code must go through the blessed helpers in
//!    `pgp_graph::ids` or `From`/`TryFrom`. Escape hatch for a genuinely
//!    domain-free cast: a trailing `// lint:cast-ok: <reason>` comment.
//! 2. **relaxed-ordering** — `Ordering::Relaxed` is forbidden in the comm
//!    layer (`crates/pgp-dmp/src`): a relaxed counter that gates a phase
//!    barrier reorders freely against payload writes. Counters that are
//!    genuinely diagnostic-only must carry `// lint:relaxed-ok: <reason>`.
//! 3. **raw-csr-index** — direct indexing into `xadj`/`adjncy`/`adjwgt`
//!    arrays is only allowed in the CSR-owning modules; everything else
//!    must use the accessor methods, which keep the head-pointer/target
//!    arithmetic in one audited place.
//! 4. **lints-opt-in** — every workspace crate manifest must contain
//!    `[lints] workspace = true` so the workspace lint gate applies.
//! 5. **mailbox-internals** — the bucketed-mailbox types (`MailboxInner`,
//!    `SrcState`, `TagQueue`, `Payload`) may only be named in
//!    `crates/pgp-dmp/src/comm.rs`. The single-consumer invariant that
//!    makes `notify_one` and the per-(src, tag) FIFO guarantee sound is
//!    local to that file; code elsewhere must stay behind the `Comm` API.
//! 6. **chaos-hooks** — the fault-injection seam (`FaultHook`, `SendFault`)
//!    may only be named in the comm layer (`comm.rs`, `runner.rs`, the
//!    `pgp-dmp` re-export) and the `pgp-chaos` crate (ISSUE 3). Algorithm
//!    code consulting the fault oracle would let injected faults leak into
//!    program logic, silently turning chaos tests into self-fulfilling
//!    prophecies.
//! 7. **instant-now** — raw `Instant::now()` and `SystemTime::now()` in
//!    the instrumented crates (`crates/{core,pgp-dmp,pgp-lp,pgp-obs}/src`)
//!    are forbidden (ISSUE 4): phase timing must go through the `pgp-obs`
//!    Recorder spans so every timer lands in the run report and is
//!    zeroable for golden comparisons, and the live telemetry plane
//!    (ISSUE 10) must stamp snapshots from the registry's monotonic
//!    epoch — a wall clock in a snapshot would make streams
//!    non-reproducible and skew straggler math across PEs. The
//!    watchdog-deadline sites in `comm.rs` and the annotated
//!    recorder/epoch sites inside `pgp-obs` itself (ISSUE 5 trace
//!    timestamps) are the sanctioned exceptions, marked
//!    `// lint:instant-ok: <reason>`.
//!
//! The scanner is line-based with comment/string stripping and skips
//! `#[cfg(test)]` modules (test code may take shortcuts).
//!
//! `cargo xtask bench-regress <new.json> <baseline.json> [--tolerance
//! <frac>]` compares two hotpath bench reports (`BENCH_hotpath.json`
//! format) with a noise-aware threshold (default 25%) and exits nonzero
//! when a metric regressed — CI runs it as a hard gate against the
//! committed smoke-scale baseline with a widened shared-runner tolerance
//! (see EXPERIMENTS.md for the baseline-refresh procedure).
//! `cargo xtask validate-trace <trace.json>` runs the Perfetto structural
//! validator over an exported trace.
//!
//! `cargo xtask analyze [--json <path>]` runs the pgp-analyze static
//! analyzer (message-protocol conformance, SPMD divergence, determinism
//! hazards — DESIGN.md §12) over the workspace and exits nonzero on any
//! unsuppressed finding.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files where ID-domain discipline is enforced (rule 1).
const ID_DOMAIN_FILES: &[&str] = &[
    "crates/pgp-dmp/src/comm.rs",
    "crates/pgp-dmp/src/collectives.rs",
    "crates/pgp-dmp/src/dgraph.rs",
    "crates/pgp-dmp/src/exchange.rs",
    "crates/pgp-dmp/src/runner.rs",
    "crates/core/src/contract.rs",
    "crates/core/src/coarsen.rs",
    "crates/core/src/partitioner.rs",
    "crates/pgp-lp/src/par.rs",
    "crates/pgp-check/src/lib.rs",
];

/// Cast targets that denote an ID/index/rank domain (rule 1).
const ID_CAST_TARGETS: &[&str] = &["u32", "u64", "usize", "Node", "Weight"];

/// Modules allowed to index CSR arrays directly (rule 3).
const CSR_OWNER_FILES: &[&str] = &[
    "crates/pgp-graph/src/csr.rs",
    "crates/pgp-graph/src/builder.rs",
    "crates/pgp-graph/src/contract.rs",
    "crates/pgp-dmp/src/dgraph.rs",
    // The validator audits the raw arrays by design.
    "crates/pgp-check/src/lib.rs",
];

/// CSR array names whose direct indexing is restricted (rule 3).
const CSR_ARRAYS: &[&str] = &["xadj[", "adjncy[", "adjwgt["];

/// The only files allowed to name the mailbox-internal types (rule 5):
/// the Comm facade plus the transport backends behind it (DESIGN.md §15).
const MAILBOX_OWNER_FILES: &[&str] = &[
    "crates/pgp-dmp/src/comm.rs",
    "crates/pgp-dmp/src/transport/mod.rs",
    "crates/pgp-dmp/src/transport/thread.rs",
    "crates/pgp-dmp/src/transport/socket.rs",
];

/// Mailbox-internal type names restricted to [`MAILBOX_OWNER_FILES`]
/// (rule 5).
const MAILBOX_INTERNALS: &[&str] = &["MailboxInner", "SrcState", "TagQueue", "Payload"];

/// Files allowed to name the fault-injection seam (rule 6).
const CHAOS_HOOK_FILES: &[&str] = &[
    "crates/pgp-dmp/src/comm.rs",
    "crates/pgp-dmp/src/runner.rs",
    "crates/pgp-dmp/src/lib.rs",
    "crates/pgp-chaos/src/lib.rs",
    // Group construction threads the hook down to each backend's Comm.
    "crates/pgp-dmp/src/transport/mod.rs",
    "crates/pgp-dmp/src/transport/socket.rs",
];

/// Fault-injection seam names restricted to [`CHAOS_HOOK_FILES`] (rule 6).
const CHAOS_HOOK_TYPES: &[&str] = &["FaultHook", "SendFault"];

/// Source trees where raw `Instant::now()` is confined to the pgp-obs seam
/// (rule 7).
const INSTANT_RESTRICTED_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/pgp-dmp/src/",
    "crates/pgp-lp/src/",
    // pgp-obs is the seam itself: its annotated recorder/epoch sites are
    // the only sanctioned `Instant::now()` escapes (ISSUE 5).
    "crates/pgp-obs/src/",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("analyze") => analyze(&args[1..]),
        Some("bench-regress") => bench_regress(&args[1..]),
        Some("validate-trace") => validate_trace(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command: {other}");
            eprintln!("available commands: lint, analyze, bench-regress, validate-trace");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <command>");
            eprintln!("available commands: lint, analyze, bench-regress, validate-trace");
            ExitCode::FAILURE
        }
    }
}

/// `cargo xtask analyze [--json <path>]`: runs the AST-level workspace
/// analysis (message-protocol conformance, SPMD divergence, determinism —
/// see the `pgp-analyze` crate and DESIGN.md §12). Exits nonzero when any
/// unsuppressed finding remains; `--json` additionally writes the stable
/// `pgp-analyze/v1` report for CI artifacts.
fn analyze(args: &[String]) -> ExitCode {
    let mut json_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("analyze: --json requires a path");
                    return ExitCode::FAILURE;
                };
                json_path = Some(PathBuf::from(p));
            }
            other => {
                eprintln!("analyze: unknown flag {other} (usage: analyze [--json <path>])");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let root = workspace_root();
    let analysis = match pgp_analyze::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyze: cannot read workspace sources: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = json_path {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("analyze: cannot create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(&path, analysis.to_json()) {
            eprintln!("analyze: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    for f in &analysis.findings {
        eprintln!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    eprintln!(
        "analyze: {} file(s) scanned, {} finding(s), {} suppressed",
        analysis.files_scanned,
        analysis.findings.len(),
        analysis.suppressed
    );
    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Benchmark metrics compared by `bench-regress`, with direction.
/// Dotted paths address nested objects in the `BENCH_hotpath.json` layout;
/// a metric missing on either side is skipped (reports evolve).
const REGRESS_METRICS: &[(&str, bool)] = &[
    // (path, higher_is_better)
    ("comm.backlog_msgs_per_s", true),
    ("comm.ping_msgs_per_s", true),
    ("exchange.updates_per_s", true),
    // Disabled-recorder overhead gate: tracing off must stay a branch.
    ("obs.ping_disabled_msgs_per_s", true),
    // Live-telemetry overhead gate: recording + snapshot publication
    // under a polling monitor must not collapse ping throughput.
    ("obs.ping_live_msgs_per_s", true),
    ("sclp.cluster_round_s", false),
    ("sclp.refine_round_s", false),
    // Worker-pool cluster round at threads_per_pe = 4 and the fixed
    // per-call SCLP overhead (cached degree fingerprint). The x4 scaling
    // *ratio* is deliberately not gated — it is a property of the host's
    // core count, not of the code.
    ("sclp.cluster_round_t4_s", false),
    ("sclp.warm_call_us", false),
    ("end_to_end.wall_s", false),
    ("end_to_end.cpu_max_s", false),
];

/// Worse-than-baseline factor tolerated before a metric counts as a
/// regression. The bench host is a shared container whose effective speed
/// drifts tens of percent between runs (see the `method` note in
/// `BENCH_hotpath.json`), so the gate only fires on changes well outside
/// that envelope.
const REGRESS_TOLERANCE: f64 = 0.25;

/// One compared metric: name, baseline value, new value, and the
/// worse-by fraction (> 0 means the new value is worse).
struct MetricDelta {
    path: &'static str,
    baseline: f64,
    new: f64,
    worse_by: f64,
}

/// Resolves a dotted path (`comm.ping_msgs_per_s`) in a parsed report,
/// descending into an `after` block when one exists (the
/// `BENCH_hotpath.json` before/after wrapper); bare flat reports work too.
fn metric_at(report: &pgp_obs::JsonValue, path: &str) -> Option<f64> {
    let mut node = report.get("after").unwrap_or(report);
    for key in path.split('.') {
        node = node.get(key)?;
    }
    node.as_f64()
}

/// Compares every known metric present in both reports. Pure so the
/// threshold logic is unit-testable without touching the filesystem.
fn compare_reports(new: &pgp_obs::JsonValue, baseline: &pgp_obs::JsonValue) -> Vec<MetricDelta> {
    let mut out = Vec::new();
    for &(path, higher_is_better) in REGRESS_METRICS {
        let (Some(n), Some(b)) = (metric_at(new, path), metric_at(baseline, path)) else {
            continue;
        };
        if b <= 0.0 {
            continue;
        }
        // worse_by > 0 ⇔ new is worse than baseline, as a fraction of it.
        let worse_by = if higher_is_better {
            (b - n) / b
        } else {
            (n - b) / b
        };
        out.push(MetricDelta {
            path,
            baseline: b,
            new: n,
            worse_by,
        });
    }
    out
}

/// `cargo xtask bench-regress <new.json> <baseline.json>`: exits nonzero
/// when any metric regressed beyond [`REGRESS_TOLERANCE`].
fn bench_regress(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut tolerance = REGRESS_TOLERANCE;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tolerance" {
            let parsed = args.get(i + 1).and_then(|v| v.parse::<f64>().ok());
            let Some(t) = parsed.filter(|t| *t > 0.0) else {
                eprintln!("bench-regress: --tolerance needs a positive fraction (e.g. 0.5)");
                return ExitCode::FAILURE;
            };
            tolerance = t;
            i += 2;
        } else {
            paths.push(&args[i]);
            i += 1;
        }
    }
    let [new_path, base_path] = paths[..] else {
        eprintln!(
            "usage: cargo xtask bench-regress <new.json> <baseline.json> [--tolerance <frac>]"
        );
        return ExitCode::FAILURE;
    };
    let load = |path: &str| -> Result<pgp_obs::JsonValue, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        pgp_obs::JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (new, baseline) = match (load(new_path), load(base_path)) {
        (Ok(n), Ok(b)) => (n, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-regress: {e}");
            return ExitCode::FAILURE;
        }
    };
    let deltas = compare_reports(&new, &baseline);
    if deltas.is_empty() {
        eprintln!("bench-regress: no comparable metrics found");
        return ExitCode::FAILURE;
    }
    let mut regressed = false;
    for d in &deltas {
        let status = if d.worse_by > tolerance {
            regressed = true;
            "REGRESSED"
        } else if d.worse_by < -tolerance {
            "improved"
        } else {
            "ok"
        };
        println!(
            "{:28} baseline {:>14.4}  new {:>14.4}  {:>+7.1}%  {status}",
            d.path,
            d.baseline,
            d.new,
            d.worse_by * 100.0
        );
    }
    if regressed {
        eprintln!(
            "bench-regress: regression beyond {:.0}% tolerance",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("bench-regress: within tolerance");
        ExitCode::SUCCESS
    }
}

/// `cargo xtask validate-trace <trace.json>`: structural check of an
/// exported Chrome-trace/Perfetto file (balanced spans, resolvable flows).
fn validate_trace(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("usage: cargo xtask validate-trace <trace.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate-trace: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match pgp_obs::validate_perfetto(&text) {
        Ok(summary) => {
            println!("validate-trace: {path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate-trace: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One rule violation.
#[derive(Debug)]
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut violations = Vec::new();

    for file in rust_sources(&root) {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        scan_file(&file, &rel, &text, &mut violations);
    }
    check_manifests(&root, &mut violations);

    if violations.is_empty() {
        println!("xtask lint: all checks passed");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!(
                "{}:{}: [{}] {}",
                v.file.display(),
                v.line,
                v.rule,
                v.message
            );
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The repo root: xtask always runs from somewhere inside the workspace.
// File walking is shared with the analyzer: one definition of "first-party
// sources" (vendor/, fixtures/, and target/ excluded) keeps `lint` and
// `analyze` scanning the same tree.
use pgp_analyze::{rust_sources, workspace_root};

/// Per-file scan state: strips comments/strings, tracks `#[cfg(test)]`
/// module extents by brace depth, applies the rules.
fn scan_file(file: &Path, rel: &str, text: &str, violations: &mut Vec<Violation>) {
    let id_domain = ID_DOMAIN_FILES.contains(&rel);
    let comm_layer = rel.starts_with("crates/pgp-dmp/src/");
    let csr_restricted = !CSR_OWNER_FILES.contains(&rel);
    let mailbox_restricted = !MAILBOX_OWNER_FILES.contains(&rel);
    let chaos_restricted = !CHAOS_HOOK_FILES.contains(&rel);
    let instant_restricted = INSTANT_RESTRICTED_PREFIXES
        .iter()
        .any(|p| rel.starts_with(p));
    let is_test_file = rel.starts_with("tests/") || rel.contains("/tests/");

    let mut depth: i32 = 0;
    let mut in_block_comment = false;
    // When Some(d): inside a #[cfg(test)] item that opened at depth d;
    // cleared once the brace depth drops back to d.
    let mut test_region: Option<i32> = None;
    // Set when a #[cfg(test)] attribute was seen but its item's brace has
    // not opened yet.
    let mut pending_test_attr = false;

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let (code, was_in_block) = strip_comments(raw_line, in_block_comment);
        in_block_comment = was_in_block;
        let code = strip_strings(&code);
        let trimmed = code.trim();

        if trimmed.starts_with("#[cfg(test)]") {
            pending_test_attr = true;
        }

        let opens = code.matches('{').count() as i32;
        let closes = code.matches('}').count() as i32;

        if pending_test_attr && opens > 0 {
            test_region.get_or_insert(depth);
            pending_test_attr = false;
        }

        let in_test = is_test_file || test_region.is_some() || pending_test_attr;

        if !in_test {
            apply_rules(
                file,
                rel,
                lineno,
                raw_line,
                &code,
                id_domain,
                comm_layer,
                csr_restricted,
                mailbox_restricted,
                chaos_restricted,
                instant_restricted,
                violations,
            );
        }

        depth += opens - closes;
        if let Some(d) = test_region {
            if depth <= d {
                test_region = None;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)] // internal plumbing, clearer flat than bundled
fn apply_rules(
    file: &Path,
    rel: &str,
    lineno: usize,
    raw_line: &str,
    code: &str,
    id_domain: bool,
    comm_layer: bool,
    csr_restricted: bool,
    mailbox_restricted: bool,
    chaos_restricted: bool,
    instant_restricted: bool,
    violations: &mut Vec<Violation>,
) {
    // Rule 1: id-cast.
    if id_domain && !raw_line.contains("lint:cast-ok") {
        for target in ID_CAST_TARGETS {
            if let Some(pos) = find_cast(code, target) {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: lineno,
                    rule: "id-cast",
                    message: format!(
                        "raw `as {target}` cast in an ID-domain file (col {pos}); use the \
                         pgp_graph::ids helpers or From/TryFrom, or justify with \
                         `// lint:cast-ok: <reason>`"
                    ),
                });
                break; // one report per line is enough
            }
        }
    }

    // Rule 2: relaxed-ordering in the comm layer.
    if comm_layer && code.contains("Ordering::Relaxed") && !raw_line.contains("lint:relaxed-ok") {
        violations.push(Violation {
            file: file.to_path_buf(),
            line: lineno,
            rule: "relaxed-ordering",
            message: "Ordering::Relaxed in the comm layer; counters that gate phase \
                      barriers need Acquire/Release (justify diagnostic-only counters \
                      with `// lint:relaxed-ok: <reason>`)"
                .to_string(),
        });
    }

    // Rule 3: raw CSR indexing outside the owning modules.
    if csr_restricted && !raw_line.contains("lint:csr-ok") {
        for arr in CSR_ARRAYS {
            if let Some(pos) = find_ident_use(code, arr) {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: lineno,
                    rule: "raw-csr-index",
                    message: format!(
                        "direct `{}` indexing outside the CSR owners (col {pos}, file {rel}); \
                         use the accessor methods (neighbors/degree/neighbor_slice)",
                        arr.trim_end_matches('[')
                    ),
                });
                break;
            }
        }
    }

    // Rule 5: mailbox internals outside comm.rs.
    if mailbox_restricted {
        for name in MAILBOX_INTERNALS {
            if let Some(pos) = find_word(code, name) {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: lineno,
                    rule: "mailbox-internals",
                    message: format!(
                        "mailbox-internal type `{name}` named outside the comm/transport \
                         layer (col {pos}); go through the Comm API instead"
                    ),
                });
                break;
            }
        }
    }

    // Rule 6: the fault-injection seam outside the comm layer / pgp-chaos.
    if chaos_restricted {
        for name in CHAOS_HOOK_TYPES {
            if let Some(pos) = find_word(code, name) {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: lineno,
                    rule: "chaos-hooks",
                    message: format!(
                        "fault-injection type `{name}` named outside the comm layer and \
                         pgp-chaos (col {pos}); algorithm code must not consult the fault \
                         oracle"
                    ),
                });
                break;
            }
        }
    }

    // Rule 7: raw clock reads in the instrumented crates. Instant::now()
    // bypasses the Recorder span seam; SystemTime::now() is worse — a
    // wall-clock stamp in a metric snapshot or trace event breaks replay
    // determinism outright (the live telemetry plane stamps snapshots
    // from the registry's monotonic epoch instead).
    if instant_restricted
        && (code.contains("Instant::now") || code.contains("SystemTime::now"))
        && !raw_line.contains("lint:instant-ok")
    {
        violations.push(Violation {
            file: file.to_path_buf(),
            line: lineno,
            rule: "instant-now",
            message: "raw Instant::now()/SystemTime::now() in an instrumented crate; phase \
                      timing must go through the pgp-obs Recorder spans and telemetry \
                      timestamps through the registry epoch (justify non-metric timers \
                      with `// lint:instant-ok: <reason>`)"
                .to_string(),
        });
    }
}

/// Finds `word` as a complete identifier token (boundaries on both sides);
/// returns the column, or `None`.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let abs = from + pos;
        let before_ok = abs == 0
            || code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| !c.is_alphanumeric() && c != '_');
        let after = abs + word.len();
        let after_ok = code[after..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return Some(abs);
        }
        from = after;
    }
    None
}

/// Finds ` as <target>` where `<target>` is a complete token; returns the
/// column, or `None`.
fn find_cast(code: &str, target: &str) -> Option<usize> {
    let needle = format!(" as {target}");
    let mut from = 0;
    while let Some(pos) = code[from..].find(&needle) {
        let abs = from + pos;
        let after = abs + needle.len();
        let boundary = code[after..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            return Some(abs + 1);
        }
        from = after;
    }
    None
}

/// Finds `name[` as an identifier use (not part of a longer identifier,
/// e.g. `iface_xadj[` must not match `xadj[`).
fn find_ident_use(code: &str, pattern: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = code[from..].find(pattern) {
        let abs = from + pos;
        let preceded_by_ident = abs > 0
            && code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !preceded_by_ident {
            return Some(abs);
        }
        from = abs + pattern.len();
    }
    None
}

/// Removes line comments and tracks block comments across lines. Returns
/// the surviving code and whether a block comment continues past the line.
fn strip_comments(line: &str, mut in_block: bool) -> (String, bool) {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if in_block {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                in_block = false;
                i += 2;
            } else {
                i += 1;
            }
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            break; // line comment: rest of line is gone
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            in_block = true;
            i += 2;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    (out, in_block)
}

/// Blanks out string literals (keeps length/columns stable enough for
/// reporting; escapes handled, raw strings approximated).
fn strip_strings(code: &str) -> String {
    let mut out = String::with_capacity(code.len());
    let mut chars = code.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    let _ = chars.next(); // skip escaped char
                    out.push('_');
                    out.push('_');
                }
                '"' => {
                    in_string = false;
                    out.push('"');
                }
                _ => out.push('_'),
            }
        } else if c == '"' {
            in_string = true;
            out.push('"');
        } else {
            out.push(c);
        }
    }
    out
}

/// Rule 4: every first-party crate manifest opts into the workspace lints.
fn check_manifests(root: &Path, violations: &mut Vec<Violation>) {
    let Ok(entries) = std::fs::read_dir(root.join("crates")) else {
        return;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        if !dir.is_dir() || dir.file_name().is_some_and(|n| n == "vendor") {
            continue;
        }
        let manifest = dir.join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        let has_opt_in = text
            .split("[lints]")
            .nth(1)
            .is_some_and(|after| after.trim_start().starts_with("workspace = true"));
        if !has_opt_in {
            violations.push(Violation {
                file: manifest,
                line: 1,
                rule: "lints-opt-in",
                message: "crate does not opt into the workspace lint gate; add \
                          `[lints]\\nworkspace = true`"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_detection_respects_token_boundaries() {
        assert!(find_cast("let x = y as u32;", "u32").is_some());
        assert!(find_cast("let x = y as u32", "u32").is_some());
        // `as u32` inside a longer token must not match.
        assert!(find_cast("let x = y as u32x;", "u32").is_none());
        assert!(find_cast("let x = y as f64;", "u32").is_none());
    }

    #[test]
    fn ident_use_respects_prefixes() {
        assert!(find_ident_use("self.xadj[u]", "xadj[").is_some());
        assert!(find_ident_use("iface_xadj[u]", "xadj[").is_none());
        assert!(find_ident_use("let iface_xadj[..]; xadj[0]", "xadj[").is_some());
    }

    #[test]
    fn comment_stripping() {
        let (code, cont) = strip_comments("a /* x */ b // c", false);
        assert_eq!(code.trim(), "a  b");
        assert!(!cont);
        let (code, cont) = strip_comments("a /* open", false);
        assert_eq!(code.trim(), "a");
        assert!(cont);
        let (code, cont) = strip_comments("still */ done", true);
        assert_eq!(code.trim(), "done");
        assert!(!cont);
    }

    #[test]
    fn string_stripping_hides_contents() {
        let s = strip_strings(r#"f("x as u64 [adjncy[")"#);
        assert!(find_cast(&s, "u64").is_none());
        assert!(find_ident_use(&s, "adjncy[").is_none());
    }

    #[test]
    fn chaos_hooks_confined_to_allowlist() {
        let src = "fn f(h: &dyn FaultHook) -> SendFault { h.on_send(0, 1, 2, 3) }\n";
        // Outside the allowlist: two lines of one violation each is too
        // strict — one violation for the single line.
        let mut v = Vec::new();
        scan_file(
            Path::new("crates/core/src/partitioner.rs"),
            "crates/core/src/partitioner.rs",
            src,
            &mut v,
        );
        assert!(v.iter().any(|x| x.rule == "chaos-hooks"), "must flag");
        // Inside the allowlist: clean.
        let mut v = Vec::new();
        scan_file(
            Path::new("crates/pgp-chaos/src/lib.rs"),
            "crates/pgp-chaos/src/lib.rs",
            src,
            &mut v,
        );
        assert!(v.iter().all(|x| x.rule != "chaos-hooks"), "must pass");
    }

    #[test]
    fn instant_now_confined_to_obs_seam() {
        let src = "fn f() { let t = Instant::now(); }\n\
                   fn g() { let t = Instant::now(); } // lint:instant-ok: watchdog\n";
        // Inside an instrumented crate: the unescaped use is flagged, the
        // escaped one is not.
        let mut v = Vec::new();
        scan_file(
            Path::new("crates/pgp-lp/src/par.rs"),
            "crates/pgp-lp/src/par.rs",
            src,
            &mut v,
        );
        let hits: Vec<_> = v.iter().filter(|x| x.rule == "instant-now").collect();
        assert_eq!(hits.len(), 1, "exactly the unescaped line");
        assert_eq!(hits[0].line, 1);
        // Outside the instrumented crates: clean.
        let mut v = Vec::new();
        scan_file(
            Path::new("crates/bench/src/main.rs"),
            "crates/bench/src/main.rs",
            src,
            &mut v,
        );
        assert!(v.iter().all(|x| x.rule != "instant-now"), "must pass");
    }

    #[test]
    fn wall_clock_reads_flagged_in_telemetry_code() {
        // The live telemetry plane must stamp snapshots from the
        // registry's monotonic epoch; a SystemTime read in pgp-obs (or
        // any instrumented crate) trips rule 7 like a raw Instant.
        let src = "fn f() -> u64 { stamp(SystemTime::now()) }\n\
                   fn g() { let t = SystemTime::now(); } // lint:instant-ok: NDJSON file mtime\n";
        let mut v = Vec::new();
        scan_file(
            Path::new("crates/pgp-obs/src/live.rs"),
            "crates/pgp-obs/src/live.rs",
            src,
            &mut v,
        );
        let hits: Vec<_> = v.iter().filter(|x| x.rule == "instant-now").collect();
        assert_eq!(hits.len(), 1, "exactly the unescaped line");
        assert_eq!(hits[0].line, 1);
        // CLI front-ends (pgp-top's follow loop) live outside the
        // instrumented prefixes and may read whatever clock they like.
        let mut v = Vec::new();
        scan_file(
            Path::new("src/bin/pgp-top.rs"),
            "src/bin/pgp-top.rs",
            src,
            &mut v,
        );
        assert!(v.iter().all(|x| x.rule != "instant-now"), "must pass");
    }

    #[test]
    fn id_cast_confined_to_id_domain_files() {
        let src = "fn f(v: usize) -> u64 { v as u64 }\n\
                   fn g(v: usize) -> u64 { v as u64 } // lint:cast-ok: length, not an ID\n";
        // Inside an ID-domain file: the unescaped cast is flagged, the
        // justified one is not.
        let mut v = Vec::new();
        scan_file(
            Path::new("crates/pgp-dmp/src/dgraph.rs"),
            "crates/pgp-dmp/src/dgraph.rs",
            src,
            &mut v,
        );
        let hits: Vec<_> = v.iter().filter(|x| x.rule == "id-cast").collect();
        assert_eq!(hits.len(), 1, "exactly the unescaped line");
        assert_eq!(hits[0].line, 1);
        // Outside the ID-domain list: clean.
        let mut v = Vec::new();
        scan_file(
            Path::new("crates/pgp-graph/src/csr.rs"),
            "crates/pgp-graph/src/csr.rs",
            src,
            &mut v,
        );
        assert!(v.iter().all(|x| x.rule != "id-cast"), "must pass");
    }

    #[test]
    fn relaxed_ordering_confined_to_comm_layer() {
        let src = "fn f(c: &AtomicUsize) -> usize { c.load(Ordering::Relaxed) }\n\
                   fn g(c: &AtomicUsize) -> usize { c.load(Ordering::Relaxed) } \
                   // lint:relaxed-ok: diagnostic counter\n";
        // Inside the comm layer: the unescaped load is flagged, the
        // justified one is not.
        let mut v = Vec::new();
        scan_file(
            Path::new("crates/pgp-dmp/src/collectives.rs"),
            "crates/pgp-dmp/src/collectives.rs",
            src,
            &mut v,
        );
        let hits: Vec<_> = v.iter().filter(|x| x.rule == "relaxed-ordering").collect();
        assert_eq!(hits.len(), 1, "exactly the unescaped line");
        assert_eq!(hits[0].line, 1);
        // Outside the comm layer: clean.
        let mut v = Vec::new();
        scan_file(
            Path::new("crates/bench/src/main.rs"),
            "crates/bench/src/main.rs",
            src,
            &mut v,
        );
        assert!(v.iter().all(|x| x.rule != "relaxed-ordering"), "must pass");
    }

    #[test]
    fn raw_csr_index_confined_to_owner_modules() {
        let src = "fn deg(g: &Csr, u: usize) -> usize { g.xadj[u + 1] - g.xadj[u] }\n\
                   fn tgt(g: &Csr, e: usize) -> usize { g.adjncy[e] } \
                   // lint:csr-ok: audited validator walk\n";
        // Outside the CSR owners: the unescaped indexing is flagged once
        // per line, the justified one is not.
        let mut v = Vec::new();
        scan_file(
            Path::new("crates/pgp-lp/src/par.rs"),
            "crates/pgp-lp/src/par.rs",
            src,
            &mut v,
        );
        let hits: Vec<_> = v.iter().filter(|x| x.rule == "raw-csr-index").collect();
        assert_eq!(hits.len(), 1, "exactly the unescaped line");
        assert_eq!(hits[0].line, 1);
        // Inside an owner module: clean.
        let mut v = Vec::new();
        scan_file(
            Path::new("crates/pgp-graph/src/csr.rs"),
            "crates/pgp-graph/src/csr.rs",
            src,
            &mut v,
        );
        assert!(v.iter().all(|x| x.rule != "raw-csr-index"), "must pass");
    }

    #[test]
    fn lints_opt_in_checks_every_crate_manifest() {
        // A synthetic workspace under target/: one opted-in crate, one
        // missing the opt-in, and a vendored tree that must be skipped.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join(format!("lints-opt-in-test-{}", std::process::id()));
        let crates = root.join("crates");
        let good = crates.join("good");
        let bad = crates.join("bad");
        let vendor = crates.join("vendor");
        for d in [&good, &bad, &vendor] {
            std::fs::create_dir_all(d).expect("create fixture crate dir");
        }
        std::fs::write(
            good.join("Cargo.toml"),
            "[package]\nname = \"good\"\n\n[lints]\nworkspace = true\n",
        )
        .expect("write good manifest");
        std::fs::write(bad.join("Cargo.toml"), "[package]\nname = \"bad\"\n")
            .expect("write bad manifest");
        std::fs::write(vendor.join("Cargo.toml"), "[package]\nname = \"dep\"\n")
            .expect("write vendored manifest");

        let mut v = Vec::new();
        check_manifests(&root, &mut v);
        let hits: Vec<_> = v.iter().filter(|x| x.rule == "lints-opt-in").collect();
        assert_eq!(hits.len(), 1, "only the crate missing the opt-in: {hits:?}");
        assert_eq!(hits[0].file, bad.join("Cargo.toml"));
        std::fs::remove_dir_all(&root).ok();
    }

    fn parse(text: &str) -> pgp_obs::JsonValue {
        pgp_obs::JsonValue::parse(text).expect("test JSON parses")
    }

    #[test]
    fn bench_regress_flags_a_degraded_report() {
        let baseline = parse(
            r#"{"after": {"comm": {"ping_msgs_per_s": 600000},
                          "end_to_end": {"wall_s": 80.0}}}"#,
        );
        // Synthetically degraded: half the throughput, double the wall.
        let degraded = parse(
            r#"{"after": {"comm": {"ping_msgs_per_s": 300000},
                          "end_to_end": {"wall_s": 160.0}}}"#,
        );
        let deltas = compare_reports(&degraded, &baseline);
        assert_eq!(deltas.len(), 2, "both shared metrics compared");
        assert!(
            deltas.iter().all(|d| d.worse_by > REGRESS_TOLERANCE),
            "a 2x degradation must exceed the noise tolerance"
        );
        // The same report against itself is clean.
        let same = compare_reports(&baseline, &baseline);
        assert!(same.iter().all(|d| d.worse_by.abs() < f64::EPSILON));
    }

    #[test]
    fn bench_regress_tolerates_noise_and_missing_metrics() {
        let baseline = parse(r#"{"after": {"comm": {"ping_msgs_per_s": 600000}}}"#);
        // 10% slower: inside the shared-host noise envelope.
        let noisy = parse(r#"{"after": {"comm": {"ping_msgs_per_s": 540000}}}"#);
        let deltas = compare_reports(&noisy, &baseline);
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].worse_by < REGRESS_TOLERANCE, "10% is noise");
        // A metric only one side has is skipped, not an error.
        let sparse = parse(r#"{"after": {"exchange": {"updates_per_s": 1000}}}"#);
        assert!(compare_reports(&sparse, &baseline).is_empty());
    }

    #[test]
    fn bench_regress_reads_flat_reports_too() {
        // No before/after wrapper: metrics at the root are found.
        let flat = parse(r#"{"end_to_end": {"wall_s": 10.0}}"#);
        let deltas = compare_reports(&flat, &flat);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].path, "end_to_end.wall_s");
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "fn a() { let x = 1 as u64; }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn b() { let y = 2 as u64; }\n\
                   }\n";
        let mut v = Vec::new();
        scan_file(
            Path::new("crates/pgp-dmp/src/dgraph.rs"),
            "crates/pgp-dmp/src/dgraph.rs",
            src,
            &mut v,
        );
        // Only the non-test cast is reported.
        assert_eq!(
            v.len(),
            1,
            "{:?}",
            v.iter().map(|x| x.line).collect::<Vec<_>>()
        );
        assert_eq!(v[0].line, 1);
    }
}
