//! Per-PE population management for the coarse-grained evolutionary
//! algorithm: a bounded set of partitions ("individuals") ordered by their
//! objective score (edge cut by default), with replace-the-worst insertion.

use pgp_graph::{BlockId, CsrGraph, Partition, Weight};

/// One individual: a partition and its cached objective score (the edge
/// cut under the default objective).
#[derive(Clone, Debug)]
pub struct Individual {
    /// The partition's assignment vector.
    pub assignment: Vec<BlockId>,
    /// Cached objective score (lower is better).
    pub score: Weight,
}

/// A bounded population, best (smallest score) first.
#[derive(Clone, Debug)]
pub struct Population {
    capacity: usize,
    members: Vec<Individual>,
}

impl Population {
    /// An empty population with room for `capacity` individuals.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        Self {
            capacity,
            members: Vec::with_capacity(capacity),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The best individual, if any.
    pub fn best(&self) -> Option<&Individual> {
        self.members.first()
    }

    /// The worst score currently held (`None` when empty).
    pub fn worst_score(&self) -> Option<Weight> {
        self.members.last().map(|m| m.score)
    }

    /// All members, best first.
    pub fn members(&self) -> &[Individual] {
        &self.members
    }

    /// Inserts a partition scored by its edge cut: accepted when the
    /// population has room or the score beats the current worst (which is
    /// evicted). Exact duplicates of an existing assignment are rejected.
    /// Returns true when inserted.
    pub fn insert(&mut self, graph: &CsrGraph, partition: &Partition) -> bool {
        let score = partition.edge_cut(graph);
        self.insert_raw(partition.assignment().to_vec(), score)
    }

    /// Inserts a raw assignment with a precomputed objective score.
    pub fn insert_raw(&mut self, assignment: Vec<BlockId>, score: Weight) -> bool {
        if self
            .members
            .iter()
            .any(|m| m.score == score && m.assignment == assignment)
        {
            return false;
        }
        if self.members.len() == self.capacity {
            if score >= self.members.last().expect("non-empty").score {
                return false;
            }
            self.members.pop();
        }
        let pos = self.members.partition_point(|m| m.score <= score);
        self.members.insert(pos, Individual { assignment, score });
        true
    }

    /// Picks two distinct member indices (best-biased: uniformly random,
    /// but index 0 — the best — is always a candidate).
    pub fn pick_parents(&self, rng: &mut impl rand::Rng) -> Option<(usize, usize)> {
        if self.members.len() < 2 {
            return None;
        }
        let a = rng.gen_range(0..self.members.len());
        let mut b = rng.gen_range(0..self.members.len() - 1);
        if b >= a {
            b += 1;
        }
        Some((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgp_graph::builder::from_edges;

    fn path() -> CsrGraph {
        from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn keeps_best_first_and_evicts_worst() {
        let g = path();
        let mut pop = Population::new(2);
        let p_bad = Partition::from_assignment(&g, 2, vec![0, 1, 0, 1]); // cut 3
        let p_mid = Partition::from_assignment(&g, 2, vec![0, 0, 1, 0]); // cut 2
        let p_good = Partition::from_assignment(&g, 2, vec![0, 0, 1, 1]); // cut 1
        assert!(pop.insert(&g, &p_bad));
        assert!(pop.insert(&g, &p_mid));
        assert_eq!(pop.worst_score(), Some(3));
        assert!(pop.insert(&g, &p_good)); // evicts cut-3
        assert_eq!(pop.len(), 2);
        assert_eq!(pop.best().unwrap().score, 1);
        assert_eq!(pop.worst_score(), Some(2));
        // Worse than current worst: rejected.
        assert!(!pop.insert(&g, &p_bad));
    }

    #[test]
    fn duplicates_rejected() {
        let g = path();
        let mut pop = Population::new(3);
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 1, 1]);
        assert!(pop.insert(&g, &p));
        assert!(!pop.insert(&g, &p));
        assert_eq!(pop.len(), 1);
    }

    #[test]
    fn pick_parents_distinct() {
        use rand::SeedableRng;
        let g = path();
        let mut pop = Population::new(4);
        for (i, assign) in [vec![0, 0, 1, 1], vec![0, 1, 0, 1], vec![0, 1, 1, 0]]
            .into_iter()
            .enumerate()
        {
            let p = Partition::from_assignment(&g, 2, assign);
            pop.insert(&g, &p);
            let _ = i;
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let (a, b) = pop.pick_parents(&mut rng).unwrap();
            assert_ne!(a, b);
            assert!(a < 3 && b < 3);
        }
    }

    #[test]
    fn pick_parents_needs_two() {
        use rand::SeedableRng;
        let pop = Population::new(4);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        assert!(pop.pick_parents(&mut rng).is_none());
    }
}
