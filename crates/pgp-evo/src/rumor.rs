//! Randomized rumor spreading: the scalable exchange protocol of KaFFPaE.
//!
//! "From time to time, the best local partition is sent to a random
//! selection of other processors." Sends are fire-and-forget; receivers
//! drain their mailbox opportunistically between operations.

use crate::population::{Individual, Population};
use pgp_dmp::tags;
use pgp_dmp::{Comm, Tag};
use pgp_graph::{BlockId, CsrGraph, Weight};
use rand::Rng;

/// Rumor-spreading endpoint. Each instance allocates its own tag block, so
/// stragglers from a previous evolutionary run (e.g. an earlier V-cycle,
/// whose coarsest graph differs) can never be drained into this one.
pub struct Rumor {
    tag: Tag,
}

impl Rumor {
    /// Creates the endpoint (SPMD: all PEs construct it at the same point,
    /// so the tag blocks agree group-wide).
    pub fn new(comm: &Comm) -> Self {
        Self {
            tag: comm.fresh_tag_block() + tags::RUMOR,
        }
    }

    /// Sends `best` to `fanout` distinct random other PEs.
    pub fn spread(&self, comm: &Comm, rng: &mut impl Rng, fanout: usize, best: &Individual) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        let fanout = fanout.min(p - 1);
        let mut chosen: Vec<usize> = Vec::with_capacity(fanout);
        while chosen.len() < fanout {
            let dst = rng.gen_range(0..p);
            if dst != comm.rank() && !chosen.contains(&dst) {
                chosen.push(dst);
            }
        }
        for dst in chosen {
            let payload: (Weight, Vec<BlockId>) = (best.score, best.assignment.clone());
            let n = payload.1.len() as u64;
            comm.send_counted(dst, self.tag, payload, n);
        }
    }

    /// Drains all pending rumor messages into the population.
    /// Returns how many were accepted.
    pub fn drain_into(&self, comm: &Comm, graph: &CsrGraph, pop: &mut Population) -> usize {
        let mut accepted = 0;
        for (_src, (score, assignment)) in comm.drain::<(Weight, Vec<BlockId>)>(self.tag) {
            assert_eq!(
                assignment.len(),
                graph.n(),
                "rumor individual does not match the replicated graph"
            );
            if pop.insert_raw(assignment, score) {
                accepted += 1;
            }
        }
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgp_dmp::collectives::barrier;
    use pgp_dmp::run;
    use pgp_graph::builder::from_edges;
    use rand::SeedableRng;

    #[test]
    fn rumors_reach_other_populations() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let accepted = run(3, |comm| {
            let rumor = Rumor::new(comm);
            let mut pop = Population::new(4);
            let mut rng = rand::rngs::SmallRng::seed_from_u64(comm.rank() as u64);
            if comm.rank() == 0 {
                // PE 0 spreads a good individual to both others.
                let ind = Individual {
                    assignment: vec![0, 0, 1, 1],
                    score: 1,
                };
                rumor.spread(comm, &mut rng, 2, &ind);
            }
            barrier(comm);
            let got = rumor.drain_into(comm, &g, &mut pop);
            barrier(comm);
            got
        });
        assert_eq!(accepted[0], 0);
        assert_eq!(accepted[1], 1);
        assert_eq!(accepted[2], 1);
    }

    #[test]
    fn single_pe_spread_is_noop() {
        let g = from_edges(2, &[(0, 1)]);
        run(1, |comm| {
            let rumor = Rumor::new(comm);
            let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
            rumor.spread(
                comm,
                &mut rng,
                3,
                &Individual {
                    assignment: vec![0, 1],
                    score: 1,
                },
            );
            let mut pop = Population::new(2);
            assert_eq!(rumor.drain_into(comm, &g, &mut pop), 0);
        });
    }
}
