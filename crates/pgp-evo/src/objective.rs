//! Alternative optimization objectives for the evolutionary algorithm —
//! the paper's §VI future-work item: "it might be interesting to integrate
//! other objective functions such as maximum/total communication volume
//! … into the evolutionary algorithm which is called on the coarsest
//! graph".
//!
//! The multilevel engines keep optimizing the edge cut (it correlates with
//! everything else, as the paper's introduction argues); the *selection
//! pressure* — which individuals survive, spread and win — follows the
//! configured objective.

use pgp_graph::metrics::communication_volume;
use pgp_graph::{CsrGraph, Partition, Weight};

/// What the evolutionary selection minimizes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Objective {
    /// Total weight of cut edges (the paper's primary objective).
    #[default]
    EdgeCut,
    /// Total communication volume over all blocks.
    TotalCommVolume,
    /// The worst block's communication volume (the "most loaded PE"
    /// formulation of Hendrickson & Kolda the paper cites).
    MaxCommVolume,
}

impl Objective {
    /// Scores a partition (lower is better).
    pub fn score(&self, graph: &CsrGraph, partition: &Partition) -> Weight {
        match self {
            Objective::EdgeCut => partition.edge_cut(graph),
            Objective::TotalCommVolume => communication_volume(graph, partition).0,
            Objective::MaxCommVolume => communication_volume(graph, partition).1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgp_graph::builder::from_edges;

    #[test]
    fn objectives_disagree_where_they_should() {
        // A star center in block 0 with leaves split over blocks 1 and 2:
        // cut = 4, total volume = center(2) + leaves(4) = 6, max = 4
        // (center's block sends to 2, each leaf block to 1... volumes are
        // per-block sums).
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let p = Partition::from_assignment(&g, 3, vec![0, 1, 1, 2, 2]);
        assert_eq!(Objective::EdgeCut.score(&g, &p), 4);
        let total = Objective::TotalCommVolume.score(&g, &p);
        let max = Objective::MaxCommVolume.score(&g, &p);
        assert_eq!(total, 2 + 2 + 2); // block0: 2 distinct targets; blocks 1,2: 2 leaves x 1
        assert!(max <= total);
        assert!(max >= 2);
    }

    #[test]
    fn default_is_edge_cut() {
        assert_eq!(Objective::default(), Objective::EdgeCut);
    }
}
