//! KaFFPaE — the coarse-grained distributed evolutionary graph
//! partitioner the paper applies to the coarsest level of the hierarchy
//! (Sections II-C and IV-E).
//!
//! * [`population`] — per-PE populations with replace-the-worst insertion.
//! * [`kaffpae`] — the evolutionary driver: initial population, combine
//!   operations (non-worsening by construction), mutation, budgets.
//! * [`rumor`] — randomized rumor spreading of the best individual.

pub mod kaffpae;
pub mod objective;
pub mod population;
pub mod rumor;

pub use kaffpae::{kaffpae, Budget, EvoConfig};
pub use objective::Objective;
pub use population::{Individual, Population};
pub use rumor::Rumor;
