//! KaFFPaE — the coarse-grained distributed evolutionary algorithm
//! (Section II-C, used at the coarsest level of the parallel system).
//!
//! Every PE holds a copy of the (coarsest) graph and its own population.
//! PEs run combine/mutation operations locally; from time to time the best
//! local individual is sent to a random selection of other PEs (randomized
//! rumor spreading); incoming individuals are drained opportunistically and
//! inserted. At the end the globally best partition is selected with one
//! `allreduce` and broadcast.

use crate::population::Population;
use crate::rumor::Rumor;
use pgp_dmp::collectives::{allreduce_min_with_rank, broadcast};
use pgp_dmp::Comm;
use pgp_graph::{BlockId, CsrGraph, Partition};
use pgp_seq::{kaffpa, kaffpa_with_inputs, KaffpaConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Effort budget for the evolutionary loop (after the initial population).
#[derive(Clone, Copy, Debug)]
pub enum Budget {
    /// A fixed number of combine/mutation operations per PE. Deterministic
    /// when rumor spreading is disabled.
    Operations(usize),
    /// Wall-clock time per PE (the paper's `t_p = t_1 / p`).
    Time(Duration),
}

/// KaFFPaE configuration.
#[derive(Clone, Debug)]
pub struct EvoConfig {
    /// Number of blocks.
    pub k: usize,
    /// Balance slack.
    pub eps: f64,
    /// Per-PE population size.
    pub population_size: usize,
    /// Evolutionary budget after the initial population is built.
    pub budget: Budget,
    /// Probability of a mutation (fresh multilevel run with a random
    /// cluster factor) instead of a combine.
    pub mutation_rate: f64,
    /// Send the best individual to this many random PEs every
    /// `rumor_interval` operations (0 disables rumor spreading).
    pub rumor_fanout: usize,
    /// Operations between rumor rounds.
    pub rumor_interval: usize,
    /// RNG seed.
    pub seed: u64,
    /// What the selection minimizes (§VI extension; the multilevel engine
    /// still optimizes the cut internally).
    pub objective: crate::Objective,
}

impl EvoConfig {
    /// The fast-configuration setting: only the initial population, no
    /// evolutionary loop (the paper's *fast* gives KaFFPaE "only enough
    /// time to compute the initial population").
    pub fn initial_only(k: usize, seed: u64) -> Self {
        Self {
            k,
            eps: 0.03,
            population_size: 3,
            budget: Budget::Operations(0),
            mutation_rate: 0.1,
            rumor_fanout: 1,
            rumor_interval: 4,
            seed,
            objective: crate::Objective::EdgeCut,
        }
    }

    /// An eco-style setting with an explicit operation budget.
    pub fn with_operations(k: usize, ops: usize, seed: u64) -> Self {
        Self {
            budget: Budget::Operations(ops),
            population_size: 5,
            ..Self::initial_only(k, seed)
        }
    }
}

fn base_kaffpa_config(cfg: &EvoConfig, seed: u64, cluster_factor: f64) -> KaffpaConfig {
    let mut kc = KaffpaConfig::new(cfg.k, seed);
    kc.eps = cfg.eps;
    kc.cluster_factor = cluster_factor;
    kc
}

/// Runs KaFFPaE on a replicated `graph`. `seed_individual`, when given
/// (iterated V-cycles), joins every PE's initial population, so the result
/// is never worse than it. Returns the globally best partition (identical
/// on every PE).
pub fn kaffpae(
    comm: &Comm,
    graph: &CsrGraph,
    cfg: &EvoConfig,
    seed_individual: Option<&Partition>,
) -> Partition {
    let mut rng = SmallRng::seed_from_u64(pgp_dmp::mix_seed(cfg.seed, comm.rank() as u64));
    let mut pop = Population::new(cfg.population_size.max(1));
    let rumor = Rumor::new(comm);

    // Initial population: independent multilevel runs with diversified
    // cluster factors (the paper randomizes f in later cycles).
    let insert_scored = |pop: &mut Population, p: &Partition| {
        let score = cfg.objective.score(graph, p);
        pop.insert_raw(p.assignment().to_vec(), score)
    };
    if let Some(seed_p) = seed_individual {
        insert_scored(&mut pop, seed_p);
    }
    let initial_runs = cfg.population_size.saturating_sub(pop.len()).max(1);
    for i in 0..initial_runs {
        let f = rng.gen_range(10.0..25.0);
        let kc = base_kaffpa_config(cfg, rng.gen::<u64>() ^ (i as u64), f);
        let p = kaffpa(graph, &kc);
        insert_scored(&mut pop, &p);
        rumor.drain_into(comm, graph, &mut pop);
    }

    // Evolutionary loop.
    let start = Instant::now();
    let mut op = 0usize;
    loop {
        let proceed = match cfg.budget {
            Budget::Operations(n) => op < n,
            Budget::Time(t) => start.elapsed() < t,
        };
        if !proceed {
            break;
        }
        op += 1;
        rumor.drain_into(comm, graph, &mut pop);

        let offspring = if rng.gen::<f64>() < cfg.mutation_rate || pop.len() < 2 {
            // Mutation: fresh diversified run.
            let f = rng.gen_range(10.0..25.0);
            let kc = base_kaffpa_config(cfg, rng.gen(), f);
            kaffpa(graph, &kc)
        } else {
            // Combine: two parents, offspring at least as good as the
            // better one.
            let (a, b) = pop.pick_parents(&mut rng).expect("len >= 2");
            let pa = Partition::from_assignment(graph, cfg.k, pop.members()[a].assignment.clone());
            let pb = Partition::from_assignment(graph, cfg.k, pop.members()[b].assignment.clone());
            let f = rng.gen_range(10.0..25.0);
            let kc = base_kaffpa_config(cfg, rng.gen(), f);
            kaffpa_with_inputs(graph, &kc, &[&pa, &pb])
        };
        insert_scored(&mut pop, &offspring);

        // Rumor spreading: push the best to a few random PEs.
        if cfg.rumor_fanout > 0 && op.is_multiple_of(cfg.rumor_interval.max(1)) {
            if let Some(best) = pop.best() {
                rumor.spread(comm, &mut rng, cfg.rumor_fanout, best);
            }
        }
    }
    rumor.drain_into(comm, graph, &mut pop);

    // Global winner: (cut, rank) min-reduction, then broadcast the winning
    // assignment.
    let local_best_score = pop.best().map(|b| b.score).unwrap_or(u64::MAX);
    let (_, winner) = allreduce_min_with_rank(comm, local_best_score);
    let payload: Option<Vec<BlockId>> = if comm.rank() == winner {
        Some(pop.best().expect("winner has a best").assignment.clone())
    } else {
        None
    };
    let assignment = broadcast(comm, winner, payload);
    Partition::from_assignment(graph, cfg.k, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgp_dmp::run;

    #[test]
    fn all_pes_agree_on_the_result() {
        let (g, _) = pgp_gen::sbm::sbm(300, pgp_gen::sbm::SbmParams::default(), 3);
        let cfg = EvoConfig::with_operations(4, 2, 7);
        let results = run(3, |comm| kaffpae(comm, &g, &cfg, None).into_assignment());
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn result_is_valid_and_balanced() {
        let (g, _) = pgp_gen::sbm::sbm(400, pgp_gen::sbm::SbmParams::default(), 5);
        let cfg = EvoConfig::with_operations(4, 3, 11);
        let results = run(2, |comm| kaffpae(comm, &g, &cfg, None));
        for p in &results {
            p.validate(&g, 0.03).unwrap();
        }
    }

    #[test]
    fn seed_individual_bounds_the_result() {
        let g = pgp_gen::mesh::grid2d(14, 14);
        let seed_p = pgp_seq::kaffpa(&g, &KaffpaConfig::new(2, 9));
        let seed_cut = seed_p.edge_cut(&g);
        let cfg = EvoConfig::with_operations(2, 2, 3);
        let results = run(2, |comm| {
            kaffpae(comm, &g, &cfg, Some(&seed_p)).edge_cut(&g)
        });
        for &cut in &results {
            assert!(
                cut <= seed_cut,
                "evo result {cut} worse than seed {seed_cut}"
            );
        }
    }

    #[test]
    fn evolution_improves_over_initial_only() {
        let (g, _) = pgp_gen::sbm::sbm(500, pgp_gen::sbm::SbmParams::default(), 13);
        let initial = EvoConfig {
            rumor_fanout: 0,
            ..EvoConfig::initial_only(8, 21)
        };
        let evolved = EvoConfig {
            rumor_fanout: 0,
            ..EvoConfig::with_operations(8, 6, 21)
        };
        let a = run(2, |comm| kaffpae(comm, &g, &initial, None).edge_cut(&g))[0];
        let b = run(2, |comm| kaffpae(comm, &g, &evolved, None).edge_cut(&g))[0];
        assert!(
            b <= a,
            "evolved {b} should not be worse than initial-only {a}"
        );
    }

    #[test]
    fn single_pe_works() {
        let g = pgp_gen::mesh::grid2d(10, 10);
        let cfg = EvoConfig::with_operations(2, 2, 5);
        let results = run(1, |comm| kaffpae(comm, &g, &cfg, None));
        results[0].validate(&g, 0.03).unwrap();
    }
}
