//! Experiment drivers shared by the table/figure binaries.

use crate::{fnum, geomean, summarize_runs, RunSummary, Table};
use parhip::{GraphClass, ParhipConfig, Preset};
use pgp_baselines::{parmetis_like_distributed, BaselineError, ParmetisLikeConfig};
use pgp_dmp::collectives::allgatherv;
use pgp_dmp::DistGraph;
use pgp_gen::benchmark_set::{self, Tier};
use pgp_graph::{CsrGraph, Partition};

/// Runs ParHIP on `p` simulated PEs; the reported time is the *maximum
/// per-PE CPU time* (critical path on dedicated cores; see EXPERIMENTS.md).
pub fn run_parhip(graph: &CsrGraph, p: usize, cfg: &ParhipConfig) -> (Partition, f64) {
    let (results, times) = pgp_dmp::run_timed(p, |comm| {
        let dg = DistGraph::from_global(comm, graph);
        let (local, _) = parhip::parhip_distributed(comm, &dg, cfg);
        allgatherv(comm, local)
    });
    let partition = Partition::from_assignment(
        graph,
        cfg.k,
        results
            .into_iter()
            .next()
            .expect("run() always yields p >= 1 results"),
    );
    let par_time = times.into_iter().fold(0.0f64, f64::max);
    (partition, par_time)
}

/// Runs the ParMetis-like baseline the same way. `Err` carries the
/// baseline's failure (the paper's `*` entries).
pub fn run_parmetis(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParmetisLikeConfig,
) -> Result<(Partition, f64), BaselineError> {
    let (results, times) = pgp_dmp::run_timed(p, |comm| {
        let dg = DistGraph::from_global(comm, graph);
        parmetis_like_distributed(comm, &dg, cfg).map(|(local, _)| allgatherv(comm, local))
    });
    let assignment = results
        .into_iter()
        .next()
        .expect("run() always yields p >= 1 results")?;
    let partition = Partition::from_assignment(graph, cfg.k, assignment);
    let par_time = times.into_iter().fold(0.0f64, f64::max);
    Ok((partition, par_time))
}

/// Per-PE memory budget (bytes) for the baseline's replication failure
/// model, scaled per tier so that — like the paper's fixed 512 GB machine —
/// the mesh instances fit comfortably while the large stalled web graphs
/// do not.
pub fn memory_budget(tier: Tier) -> u64 {
    // Calibrated so the paper's outcome pattern holds at each tier: the
    // main benchmark set (including the mid-size web crawls, where real
    // ParMetis coarsens poorly but finishes) fits, while the three large
    // web graphs (arabic-2005, sk-2005, uk-2007) exceed the budget after
    // their coarsening stalls.
    match tier {
        Tier::Tiny => 600_000,
        Tier::Small => 4_500_000,
        Tier::Medium => 18_000_000,
    }
}

/// Parses a tier CLI value.
pub fn parse_tier(s: Option<String>) -> Tier {
    match s.as_deref() {
        None | Some("small") => Tier::Small,
        Some("tiny") => Tier::Tiny,
        Some("medium") => Tier::Medium,
        Some(other) => panic!("unknown tier '{other}' (tiny|small|medium)"),
    }
}

/// One instance row of Table II / III.
pub struct InstanceResult {
    /// Instance name.
    pub name: String,
    /// Whether it is one of the large web graphs ParMetis fails on.
    pub large_web: bool,
    /// ParMetis-like summary, or the failure marker.
    pub parmetis: Result<RunSummary, BaselineError>,
    /// ParHIP fast summary.
    pub fast: RunSummary,
    /// ParHIP eco summary.
    pub eco: RunSummary,
}

/// Runs the full Table II/III experiment for a given `k`.
pub fn run_quality_table(
    k: usize,
    tier: Tier,
    reps: usize,
    p: usize,
    seed: u64,
    include_large: bool,
) -> Vec<InstanceResult> {
    let mut out = Vec::new();
    let names: Vec<(&str, bool)> = benchmark_set::MAIN_SET
        .iter()
        .map(|&n| (n, false))
        .chain(
            include_large
                .then_some(benchmark_set::LARGE_WEB_SET)
                .into_iter()
                .flatten()
                .map(|n| (n, true)),
        )
        .collect();
    for (name, large_web) in names {
        let inst = benchmark_set::instance(name, tier, seed);
        let class = match inst.class {
            benchmark_set::GraphClass::Social => GraphClass::Social,
            benchmark_set::GraphClass::Mesh => GraphClass::Mesh,
        };
        let g = &inst.graph;
        eprintln!("[{name}] n = {}, m = {} ({:?})", g.n(), g.m(), inst.class);

        // ParMetis-like with the tier's memory model.
        let pm_cfg_base = ParmetisLikeConfig::new(k, seed).with_memory_budget(memory_budget(tier));
        let parmetis = summarize_checked(g, reps, seed, |s| {
            let mut c = pm_cfg_base.clone();
            c.seed = s;
            run_parmetis(g, p, &c)
        });

        let fast = summarize_runs(
            g,
            reps,
            |s| {
                let mut cfg = ParhipConfig::preset(Preset::Fast, k, class, s);
                cfg.seed = s;
                run_parhip(g, p, &cfg)
            },
            seed,
        );
        let eco = summarize_runs(
            g,
            reps,
            |s| {
                let mut cfg = ParhipConfig::preset(Preset::Eco, k, class, s);
                cfg.seed = s;
                run_parhip(g, p, &cfg)
            },
            seed,
        );
        out.push(InstanceResult {
            name: name.to_string(),
            large_web,
            parmetis,
            fast,
            eco,
        });
    }
    out
}

fn summarize_checked(
    g: &CsrGraph,
    reps: usize,
    base_seed: u64,
    mut f: impl FnMut(u64) -> Result<(Partition, f64), BaselineError>,
) -> Result<RunSummary, BaselineError> {
    // Probe once; on success run the full repetition set.
    f(base_seed)?;
    Ok(summarize_runs(
        g,
        reps,
        |s| f(s).expect("succeeded on probe seed"),
        base_seed,
    ))
}

/// Renders the paper-style table plus the aggregate comparison lines from
/// §V-B, and saves a CSV.
pub fn render_quality_table(results: &[InstanceResult], title: &str, csv_name: &str) {
    let mut t = Table::new(&[
        "graph",
        "PM avg cut",
        "PM best",
        "PM t[s]",
        "Fast avg cut",
        "Fast best",
        "Fast t[s]",
        "Eco avg cut",
        "Eco best",
        "Eco t[s]",
    ]);
    for r in results {
        let (pm_avg, pm_best, pm_t) = match &r.parmetis {
            Ok(s) => (fnum(s.avg_cut), s.best_cut.to_string(), fnum(s.avg_time_s)),
            Err(_) => ("*".into(), "*".into(), "*".into()),
        };
        t.row(vec![
            r.name.clone(),
            pm_avg,
            pm_best,
            pm_t,
            fnum(r.fast.avg_cut),
            r.fast.best_cut.to_string(),
            fnum(r.fast.avg_time_s),
            fnum(r.eco.avg_cut),
            r.eco.best_cut.to_string(),
            fnum(r.eco.avg_time_s),
        ]);
    }
    println!("\n== {title} ==\n{}", t.render());
    t.save_csv(csv_name);

    // Aggregates over instances ParMetis could solve (geometric means of
    // cut ratios, as the paper reports).
    let solved: Vec<&InstanceResult> = results.iter().filter(|r| r.parmetis.is_ok()).collect();
    if !solved.is_empty() {
        let ratio = |f: &dyn Fn(&InstanceResult) -> f64| geomean(solved.iter().map(|r| f(r)));
        let fast_impr = 1.0
            - ratio(&|r| {
                r.fast.avg_cut
                    / r.parmetis
                        .as_ref()
                        .expect("parmetis baseline ran for this row")
                        .avg_cut
            });
        let eco_impr = 1.0
            - ratio(&|r| {
                r.eco.avg_cut
                    / r.parmetis
                        .as_ref()
                        .expect("parmetis baseline ran for this row")
                        .avg_cut
            });
        println!(
            "vs ParMetis-like (geomean over {} solved instances): fast cuts {:.1}% smaller, eco cuts {:.1}% smaller",
            solved.len(),
            fast_impr * 100.0,
            eco_impr * 100.0
        );
        for r in results {
            if r.parmetis.is_err() {
                println!(
                    "  {}: ParMetis-like failed (paper '*'): {}",
                    r.name,
                    match &r.parmetis {
                        Err(e) => e.to_string(),
                        Ok(_) => unreachable!(),
                    }
                );
            }
        }
    }
}
