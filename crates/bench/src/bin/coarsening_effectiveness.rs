//! Reproduces the paper's coarsening-effectiveness narrative (§V-B):
//! ParMetis "cannot coarsen complex networks effectively — on uk-2007 the
//! coarsest graph still has more than 60 M vertices, less than a factor of
//! two reduction", while cluster contraction shrinks the same graph by
//! *two orders of magnitude* (and a factor ~300 in edges) in one step.
//!
//! For each instance class the harness performs one coarsening step with
//! each scheme and reports node/edge shrink factors and the coarse average
//! degree; it then runs both full coarsening loops and reports the
//! coarsest sizes.
//!
//! Usage: `cargo run -p bench --release --bin coarsening_effectiveness -- [tier=small] [p=4] [seed=1]`

use bench::harness::parse_tier;
use bench::{arg, arg_usize, fnum, Table};
use parhip::{parallel_coarsen, GraphClass, ParhipConfig};
use pgp_baselines::matching::parallel_hem;
use pgp_dmp::DistGraph;
use pgp_gen::benchmark_set::{instance, GraphClass as BClass};
use pgp_lp::par::{parallel_sclp_cluster, singleton_labels};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tier = parse_tier(arg(&args, "tier"));
    let p = arg_usize(&args, "p", 4);
    let seed = arg_usize(&args, "seed", 1) as u64;

    let mut t = Table::new(&[
        "graph",
        "class",
        "scheme",
        "1-step n-shrink",
        "1-step m-shrink",
        "coarse avg deg",
        "final coarsest n",
        "levels",
    ]);

    for name in [
        "uk-2007", "sk-2005", "eu-2005", "youtube", "channel", "rgg26",
    ] {
        let inst = instance(name, tier, seed);
        let g = &inst.graph;
        let class = match inst.class {
            BClass::Social => GraphClass::Social,
            BClass::Mesh => GraphClass::Mesh,
        };
        eprintln!("[{name}] n = {}, m = {}", g.n(), g.m());

        for scheme in ["cluster", "matching"] {
            let rows = pgp_dmp::run(p, |comm| {
                let dg = DistGraph::from_global(comm, g);
                // One explicit step for the shrink factors.
                let labels = if scheme == "cluster" {
                    let mut cfg = ParhipConfig::fast(2, class, seed);
                    cfg.coarsest_nodes_per_block = 100;
                    let u = cfg.u_bound(dg.total_node_weight(), 1, 0);
                    let mut l = singleton_labels(&dg);
                    parallel_sclp_cluster(comm, &dg, u, 3, seed, &mut l, None);
                    l
                } else {
                    parallel_hem(comm, &dg, 4, seed)
                };
                let c = parhip::parallel_contract(comm, &dg, &labels);
                let one_n = dg.n_global() as f64 / c.coarse.n_global().max(1) as f64;
                let one_m = dg.m_global() as f64 / c.coarse.m_global().max(1) as f64;
                let deg = if c.coarse.n_global() == 0 {
                    0.0
                } else {
                    2.0 * c.coarse.m_global() as f64 / c.coarse.n_global() as f64
                };
                // Full loop for the final coarsest size.
                let (final_n, levels) = if scheme == "cluster" {
                    let mut cfg = ParhipConfig::fast(2, class, seed);
                    cfg.coarsest_nodes_per_block = 100;
                    let h = parallel_coarsen(comm, dg, &cfg, 0, None);
                    (h.coarsest().n_global(), h.depth())
                } else {
                    // Matching loop with stall detection (as the baseline).
                    let mut cur = dg;
                    let mut levels = 1usize;
                    loop {
                        if cur.n_global() <= 200 {
                            break;
                        }
                        let l = parallel_hem(comm, &cur, 4, seed + levels as u64);
                        let c = parhip::parallel_contract(comm, &cur, &l);
                        if (c.coarse.n_global() as f64) > cur.n_global() as f64 / 1.25 {
                            break;
                        }
                        cur = c.coarse;
                        levels += 1;
                    }
                    (cur.n_global(), levels)
                };
                (one_n, one_m, deg, final_n, levels)
            });
            let (one_n, one_m, deg, final_n, levels) = rows
                .into_iter()
                .next()
                .expect("run() always yields p >= 1 results");
            t.row(vec![
                name.into(),
                format!("{:?}", inst.class),
                scheme.into(),
                fnum(one_n),
                fnum(one_m),
                fnum(deg),
                final_n.to_string(),
                levels.to_string(),
            ]);
        }
    }
    println!(
        "\n== Coarsening effectiveness (paper §V-B narrative) ==\n{}",
        t.render()
    );
    t.save_csv("coarsening_effectiveness");
}
