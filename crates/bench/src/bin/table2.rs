//! Reproduces **Table II**: average/best cut and running time of the
//! ParMetis-like baseline vs ParHIP fast vs ParHIP eco for bipartitioning
//! (k = 2) across the benchmark set, including the large web graphs the
//! baseline fails on.
//!
//! Usage: `cargo run -p bench --release --bin table2 -- [tier=small] [reps=3] [p=4] [seed=1]`

use bench::harness::{parse_tier, render_quality_table, run_quality_table};
use bench::{arg, arg_usize};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tier = parse_tier(arg(&args, "tier"));
    let reps = arg_usize(&args, "reps", 3);
    let p = arg_usize(&args, "p", 4);
    let seed = arg_usize(&args, "seed", 1) as u64;
    let results = run_quality_table(2, tier, reps, p, seed, true);
    render_quality_table(
        &results,
        &format!("Table II stand-in: k = 2, p = {p}, {reps} reps"),
        "table2",
    );
}
