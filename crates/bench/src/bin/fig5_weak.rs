//! Reproduces **Figure 5**: weak scaling on the `rggX` and `delX`
//! families. With `p` PEs the instance has `base·p` nodes (the paper uses
//! `2^19·p`; the laptop default is `2^12·p`), k = 16 blocks, and the
//! reported series is *time per edge* for ParHIP fast and the
//! ParMetis-like baseline.
//!
//! Usage: `cargo run -p bench --release --bin fig5_weak -- [base_log=12] [pmax=8] [reps=2] [seed=1]`

use bench::harness::{run_parhip, run_parmetis};
use bench::{arg_usize, fnum, Table};
use parhip::{GraphClass, ParhipConfig, Preset};
use pgp_baselines::ParmetisLikeConfig;
use pgp_graph::CsrGraph;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let base_log = arg_usize(&args, "base_log", 12) as u32;
    let pmax = arg_usize(&args, "pmax", 8);
    let reps = arg_usize(&args, "reps", 2);
    let seed = arg_usize(&args, "seed", 1) as u64;
    let k = 16;

    let mut t = Table::new(&[
        "family",
        "p",
        "n",
        "m",
        "ParHIP t/edge [s]",
        "ParHIP cut",
        "PM t/edge [s]",
        "PM cut",
    ]);
    let mut p = 1usize;
    while p <= pmax {
        let x = base_log + p.trailing_zeros();
        for family in ["rgg", "del"] {
            let g: CsrGraph = match family {
                "rgg" => pgp_gen::ensure_connected(pgp_gen::rgg::rgg_x(x, seed)),
                _ => pgp_gen::delaunay::delaunay_x(x, seed),
            };
            eprintln!("[{family}{x}] p = {p}, n = {}, m = {}", g.n(), g.m());

            let mut ph_time = 0.0;
            let mut ph_cut = 0u64;
            for r in 0..reps {
                let cfg = ParhipConfig::preset(Preset::Fast, k, GraphClass::Mesh, seed + r as u64);
                let (part, time) = run_parhip(&g, p, &cfg);
                ph_time += time;
                ph_cut += part.edge_cut(&g);
            }
            let (mut pm_time, mut pm_cut, mut pm_ok) = (0.0, 0u64, true);
            for r in 0..reps {
                let cfg = ParmetisLikeConfig::new(k, seed + r as u64);
                match run_parmetis(&g, p, &cfg) {
                    Ok((part, time)) => {
                        pm_time += time;
                        pm_cut += part.edge_cut(&g);
                    }
                    Err(_) => pm_ok = false,
                }
            }
            let m = g.m() as f64;
            t.row(vec![
                family.into(),
                p.to_string(),
                g.n().to_string(),
                g.m().to_string(),
                fnum(ph_time / reps as f64 / m),
                (ph_cut / reps as u64).to_string(),
                if pm_ok {
                    fnum(pm_time / reps as f64 / m)
                } else {
                    "*".into()
                },
                if pm_ok {
                    (pm_cut / reps as u64).to_string()
                } else {
                    "*".into()
                },
            ]);
        }
        p *= 2;
    }
    println!(
        "\n== Figure 5 stand-in: weak scaling, k = {k} ==\n{}",
        t.render()
    );
    t.save_csv("fig5_weak");
}
