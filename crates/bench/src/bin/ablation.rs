//! Ablation studies backing the paper's design-choice claims:
//!
//! * `ordering` — §III-A: degree-increasing node ordering during label
//!   propagation improves quality (and convergence) over random order.
//! * `fsweep` — §V-A: sensitivity to the size-constraint factor `f`.
//! * `iters` — §V-A: "we also tried larger amounts of label propagation
//!   iterations during coarsening, but did not observe a significant
//!   impact on solution quality".
//! * `vcycles` — fast(2) vs eco(5) vs minimal(1): more V-cycles trade
//!   time for quality; minimal is much faster with a moderately worse cut
//!   (uk-2007: +18.2 % cut for a large speedup in the paper).
//!
//! Usage: `cargo run -p bench --release --bin ablation -- <which> [tier=small] [p=4] [reps=3] [seed=1]`
//! with `which` ∈ {ordering, fsweep, iters, vcycles, all}.

use bench::harness::{parse_tier, run_parhip};
use bench::{arg, arg_usize, fnum, summarize_runs, Table};
use parhip::{GraphClass, ParhipConfig};
use pgp_gen::benchmark_set::{instance, Tier};
use pgp_graph::Node;
use pgp_lp::seq::{sclp, Mode, Order, SclpConfig};

fn social_instances(tier: Tier, seed: u64) -> Vec<(String, pgp_graph::CsrGraph)> {
    ["youtube", "eu-2005", "amazon"]
        .iter()
        .map(|&n| (n.to_string(), instance(n, tier, seed).graph))
        .collect()
}

/// §III-A: quality of one coarsening clustering under degree vs random
/// ordering, measured as edge coverage (fraction of edge weight kept
/// inside clusters — higher is better for the cut objective).
fn ordering(tier: Tier, reps: usize, seed: u64) {
    let mut t = Table::new(&[
        "graph",
        "order",
        "coverage",
        "clusters",
        "rounds-to-converge",
    ]);
    for (name, g) in social_instances(tier, seed) {
        for order in [Order::Degree, Order::Random] {
            let mut covs = Vec::new();
            let mut clusters = Vec::new();
            let mut rounds = Vec::new();
            for r in 0..reps {
                let mut labels: Vec<Node> = g.nodes().collect();
                let stats = sclp(
                    &g,
                    &SclpConfig {
                        u_bound: (g.total_node_weight() / 14).max(1),
                        iterations: 20, // to convergence: measures speed too
                        mode: Mode::Cluster,
                        order,
                        seed: seed + r as u64,
                    },
                    &mut labels,
                    None,
                );
                covs.push(pgp_graph::metrics::coverage(&g, &labels));
                let distinct: std::collections::HashSet<_> = labels.iter().collect();
                clusters.push(distinct.len() as f64);
                rounds.push(stats.rounds as f64);
            }
            t.row(vec![
                name.clone(),
                format!("{order:?}"),
                fnum(covs.iter().sum::<f64>() / reps as f64),
                fnum(clusters.iter().sum::<f64>() / reps as f64),
                fnum(rounds.iter().sum::<f64>() / reps as f64),
            ]);
        }
    }
    println!(
        "\n== Ablation: node ordering (paper §III-A) ==\n{}",
        t.render()
    );
    t.save_csv("ablation_ordering");
}

/// §V-A: cut sensitivity to the size-constraint factor `f` on a social
/// and a mesh instance.
fn fsweep(tier: Tier, p: usize, reps: usize, seed: u64) {
    let mut t = Table::new(&["graph", "f", "avg cut", "avg t[s]"]);
    for (name, class) in [("eu-2005", GraphClass::Social), ("rgg26", GraphClass::Mesh)] {
        let inst = instance(name, tier, seed);
        let g = &inst.graph;
        for f in [4.0, 10.0, 14.0, 20.0, 40.0] {
            let s = summarize_runs(
                g,
                reps,
                |sd| {
                    let mut cfg = ParhipConfig::fast(2, class, sd);
                    cfg.social_first_factor = f;
                    // For the mesh instance sweep the ratio path as well.
                    cfg.mesh_first_cluster_weight =
                        ((pgp_graph::lmax(g.total_node_weight(), 2, 0.03) as f64 / f) as u64)
                            .max(2);
                    run_parhip(g, p, &cfg)
                },
                seed,
            );
            t.row(vec![
                name.into(),
                fnum(f),
                fnum(s.avg_cut),
                fnum(s.avg_time_s),
            ]);
        }
    }
    println!(
        "\n== Ablation: size-constraint factor f (paper §V-A) ==\n{}",
        t.render()
    );
    t.save_csv("ablation_fsweep");
}

/// §V-A: number of LP iterations during coarsening.
fn iters(tier: Tier, p: usize, reps: usize, seed: u64) {
    let mut t = Table::new(&["graph", "coarsen iters", "avg cut", "avg t[s]"]);
    for (name, g) in social_instances(tier, seed) {
        for it in [1usize, 2, 3, 5, 8] {
            let s = summarize_runs(
                &g,
                reps,
                |sd| {
                    let mut cfg = ParhipConfig::fast(2, GraphClass::Social, sd);
                    cfg.coarsen_iterations = it;
                    run_parhip(&g, p, &cfg)
                },
                seed,
            );
            t.row(vec![
                name.clone(),
                it.to_string(),
                fnum(s.avg_cut),
                fnum(s.avg_time_s),
            ]);
        }
    }
    println!(
        "\n== Ablation: LP iterations during coarsening (paper §V-A) ==\n{}",
        t.render()
    );
    t.save_csv("ablation_iters");
}

/// minimal(1) / fast(2) / eco(5) V-cycles: the time/quality trade.
fn vcycles(tier: Tier, p: usize, reps: usize, seed: u64) {
    let mut t = Table::new(&["graph", "V-cycles", "avg cut", "avg t[s]", "cut vs fast"]);
    for name in ["uk-2007", "uk-2002"] {
        let inst = instance(name, tier, seed);
        let g = &inst.graph;
        let summaries: Vec<(usize, _)> = [1usize, 2, 5]
            .into_iter()
            .map(|cycles| {
                let s = summarize_runs(
                    g,
                    reps,
                    |sd| {
                        let mut cfg = ParhipConfig::fast(2, GraphClass::Social, sd);
                        cfg.vcycles = cycles;
                        if cycles == 5 {
                            cfg.evo_operations = 4; // eco
                            cfg.population_size = 5;
                        }
                        run_parhip(g, p, &cfg)
                    },
                    seed,
                );
                (cycles, s)
            })
            .collect();
        let fast_cut = summaries
            .iter()
            .find(|(c, _)| *c == 2)
            .map(|(_, s)| s.avg_cut)
            .unwrap_or(1.0);
        for (cycles, s) in &summaries {
            t.row(vec![
                name.into(),
                cycles.to_string(),
                fnum(s.avg_cut),
                fnum(s.avg_time_s),
                format!("{:+.1}%", (s.avg_cut / fast_cut - 1.0) * 100.0),
            ]);
        }
    }
    println!(
        "\n== Ablation: V-cycles (minimal/fast/eco) ==\n{}",
        t.render()
    );
    t.save_csv("ablation_vcycles");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .iter()
        .find(|a| !a.contains('='))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let tier = parse_tier(arg(&args, "tier"));
    let p = arg_usize(&args, "p", 4);
    let reps = arg_usize(&args, "reps", 3);
    let seed = arg_usize(&args, "seed", 1) as u64;

    match which.as_str() {
        "ordering" => ordering(tier, reps, seed),
        "fsweep" => fsweep(tier, p, reps, seed),
        "iters" => iters(tier, p, reps, seed),
        "vcycles" => vcycles(tier, p, reps, seed),
        "all" => {
            ordering(tier, reps, seed);
            fsweep(tier, p, reps, seed);
            iters(tier, p, reps, seed);
            vcycles(tier, p, reps, seed);
        }
        other => panic!("unknown ablation '{other}'"),
    }
}
