//! Reproduces **Table III**: the same comparison as Table II for k = 32.
//!
//! Usage: `cargo run -p bench --release --bin table3 -- [tier=small] [reps=3] [p=4] [seed=1]`

use bench::harness::{parse_tier, render_quality_table, run_quality_table};
use bench::{arg, arg_usize};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tier = parse_tier(arg(&args, "tier"));
    let reps = arg_usize(&args, "reps", 3);
    let p = arg_usize(&args, "p", 4);
    let seed = arg_usize(&args, "seed", 1) as u64;
    let results = run_quality_table(32, tier, reps, p, seed, true);
    render_quality_table(
        &results,
        &format!("Table III stand-in: k = 32, p = {p}, {reps} reps"),
        "table3",
    );
}
