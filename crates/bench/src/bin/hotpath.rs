//! Hot-path benchmark gate (ISSUE 2): measures the layers the hot-path
//! overhaul targets and emits a machine-readable JSON snapshot so every
//! perf PR records before/after numbers.
//!
//! Sections:
//!
//! 1. **comm** — selective-receive throughput on the mailbox under the
//!    traffic the algorithms actually generate: per-peer tag backlogs
//!    received out of order (exchange/collective pattern) plus an
//!    in-order ping stream. Reported as messages/sec.
//!
//!    1b. **obs** — the same ping stream under each recorder mode
//!    (disabled / report / trace / live): the disabled mode must sit
//!    within noise of the plain comm ping (single-branch hooks), and the
//!    others quantify the cost of turning recording on; `live` adds
//!    snapshot publication with a polling telemetry monitor attached
//!    (DESIGN.md §16).
//! 2. **exchange** — `LabelExchange` phase throughput on an R-MAT graph:
//!    every interface node records an update each phase. Reported as
//!    updates/sec.
//! 3. **sclp** — one `parallel_sclp_cluster` and one
//!    `parallel_sclp_refine` run on the same graph; per-round time from
//!    max per-PE CPU seconds.
//!
//!    3b. **sclp thread scaling** — the same cluster run under the
//!    intra-PE worker pool (DESIGN.md §13) at `threads_per_pe` ∈
//!    {1, 2, 4}, timed by per-PE wall clock (worker threads are invisible
//!    to per-thread CPU accounting). On a single-core container the x4
//!    ratio sits at or below 1.0 — the ≥ 1.5× target is a multi-core
//!    number; CI uploads this section from its multi-core runners.
//!
//!    3c. **sclp warm-call overhead** — repeated zero-round
//!    `parallel_sclp_cluster_with_scratch` calls on a warm scratch:
//!    the fixed per-call cost, dominated before the cached
//!    `degree_fingerprint` by re-hashing the whole `xadj` array.
//! 4. **end_to_end** — full `partition_parallel` on the R-MAT harness
//!    with fixed seeds: wall clock, max per-PE CPU time, edge cut,
//!    imbalance, and the message/element counters.
//!
//! Usage: `cargo run -p bench --release --bin hotpath -- [smoke=1]
//! [out=results/hotpath.json] [scale=13] [p=4] [k=8] [reps=3] [seed=3]`
//!
//! The committed `BENCH_hotpath.json` holds a before/after pair of these
//! snapshots (see EXPERIMENTS.md "Microbenchmarks").

use bench::{arg, arg_usize};
use parhip::{GraphClass, ParhipConfig};
use pgp_dmp::{run, run_timed, DistGraph, LabelExchange};
use pgp_graph::Node;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = arg(&args, "smoke").is_some();
    let out = arg(&args, "out").unwrap_or_else(|| "results/hotpath.json".to_string());
    let p = arg_usize(&args, "p", 4);
    let k = arg_usize(&args, "k", 8);
    let scale = arg_usize(&args, "scale", if smoke { 10 } else { 13 }) as u32;
    let reps = arg_usize(&args, "reps", if smoke { 1 } else { 3 });
    let seed = arg_usize(&args, "seed", 3) as u64;

    // Microbench sizes: the backlog depth is the lever that exposes the
    // O(queue) selective-receive scan of a single-deque mailbox — each PE
    // holds `(p-1) * backlog` queued messages spread over a handful of
    // tags (the live-tag count of real traffic: collectives drain
    // promptly, the exchange keeps at most two phases in flight) and
    // receives the tags in reverse order. Finding the highest tag then
    // means scanning past the whole lower-tag backlog on every receive —
    // quadratic for a single deque, O(1) for per-tag buckets.
    let backlog_tags: u64 = 4;
    let backlog: u64 = arg_usize(&args, "backlog", if smoke { 32 } else { 4_096 }) as u64;
    let backlog_per_tag = (backlog / backlog_tags).max(1);
    let ping_rounds: u64 = if smoke { 500 } else { 5_000 };
    let exchange_phases: usize = if smoke { 20 } else { 100 };

    eprintln!("[hotpath] p={p} k={k} scale={scale} reps={reps} seed={seed} smoke={smoke}");

    // ---- 1. comm: out-of-order tag backlog -----------------------------
    // Every PE sends `backlog` messages to each peer, round-robin over
    // `backlog_tags` tags (FIFO within each tag), then receives them per
    // peer in *reverse* tag order — the pattern of an exchange receiving
    // phases out of order while earlier phases are still queued. Best wall
    // time over `reps` runs: thread-scheduling noise on few-core machines
    // only ever slows a run down, so the minimum is the cleanest estimate
    // of the mailbox's own cost.
    let mut backlog_wall = f64::INFINITY;
    let mut backlog_msgs = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let msgs = run(p, |comm| {
            let mut got = 0u64;
            for dst in 0..comm.size() {
                if dst == comm.rank() {
                    continue;
                }
                for i in 0..backlog_per_tag {
                    for tag in 0..backlog_tags {
                        comm.send(dst, 1_000 + tag, vec![comm.rank() as u64, tag, i]);
                    }
                }
            }
            for src in 0..comm.size() {
                if src == comm.rank() {
                    continue;
                }
                for tag in (0..backlog_tags).rev() {
                    for i in 0..backlog_per_tag {
                        let v: Vec<u64> = comm.recv(src, 1_000 + tag);
                        assert_eq!(v, vec![src as u64, tag, i], "FIFO per (src, tag)");
                        got += 1;
                    }
                }
            }
            got
        });
        backlog_wall = backlog_wall.min(t0.elapsed().as_secs_f64());
        backlog_msgs = msgs.iter().sum();
    }
    let comm_backlog_msgs_per_s = backlog_msgs as f64 / backlog_wall;

    // In-order ping stream between two PEs (latency-bound path); best of
    // `reps` as above.
    let mut ping_wall = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..ping_rounds {
                    comm.send(1, 7, vec![i]);
                    let _: Vec<u64> = comm.recv(1, 9);
                }
            } else {
                for _ in 0..ping_rounds {
                    let v: Vec<u64> = comm.recv(0, 7);
                    comm.send(0, 9, v);
                }
            }
        });
        ping_wall = ping_wall.min(t0.elapsed().as_secs_f64());
    }
    let comm_ping_msgs_per_s = (2 * ping_rounds) as f64 / ping_wall;

    // ---- 1b. obs A/B: the same ping stream under each recorder mode ----
    // The observability discipline promises a single-branch hot path when
    // recording is off; `obs.disabled` vs the plain ping above must sit
    // within noise, and `obs.report`/`obs.trace`/`obs.live` quantify the
    // cost of turning recording on (counters + histograms, then + event
    // rings, then + live snapshot publication under a polling monitor).
    let ping_obs = |obs: Option<std::sync::Arc<pgp_obs::Obs>>| -> f64 {
        let mut wall = f64::INFINITY;
        for _ in 0..reps {
            let rc = pgp_dmp::RunConfig {
                obs: obs.clone(),
                ..Default::default()
            };
            let t0 = Instant::now();
            let results = pgp_dmp::run_config(2, rc, |comm| {
                if comm.rank() == 0 {
                    for i in 0..ping_rounds {
                        comm.send(1, 7, vec![i]);
                        let _: Vec<u64> = comm.recv(1, 9);
                    }
                } else {
                    for _ in 0..ping_rounds {
                        let v: Vec<u64> = comm.recv(0, 7);
                        comm.send(0, 9, v);
                    }
                }
            });
            for r in results {
                r.expect("fault-free ping cannot fail");
            }
            wall = wall.min(t0.elapsed().as_secs_f64());
        }
        (2 * ping_rounds) as f64 / wall
    };
    let obs_ping_disabled = ping_obs(None);
    let obs_ping_report = ping_obs(Some(pgp_obs::Obs::new(2)));
    let obs_ping_trace = ping_obs(Some(pgp_obs::Obs::with_trace(
        2,
        pgp_obs::DEFAULT_TRACE_CAPACITY,
    )));
    // Live telemetry mode: recording on, live publication enabled, and an
    // aggregating monitor polling the snapshot slots concurrently (stream
    // discarded). The delta vs `obs.report` is the live plane's whole
    // cost on the recording path; `obs.disabled` above stays the gate for
    // the telemetry-off single-branch claim.
    let obs_ping_live = {
        let mut wall = f64::INFINITY;
        for _ in 0..reps {
            let obs = pgp_obs::Obs::new(2);
            obs.enable_live();
            let monitor = pgp_obs::LiveMonitor::spawn(
                obs.clone(),
                pgp_obs::LiveMonitorConfig::default(),
                Box::new(std::io::sink()),
            )
            .expect("spawn live monitor");
            let rc = pgp_dmp::RunConfig {
                obs: Some(obs),
                ..Default::default()
            };
            let t0 = Instant::now();
            let results = pgp_dmp::run_config(2, rc, |comm| {
                if comm.rank() == 0 {
                    for i in 0..ping_rounds {
                        comm.send(1, 7, vec![i]);
                        let _: Vec<u64> = comm.recv(1, 9);
                    }
                } else {
                    for _ in 0..ping_rounds {
                        let v: Vec<u64> = comm.recv(0, 7);
                        comm.send(0, 9, v);
                    }
                }
            });
            for r in results {
                r.expect("fault-free ping cannot fail");
            }
            wall = wall.min(t0.elapsed().as_secs_f64());
            monitor.finish().expect("live monitor stream");
        }
        (2 * ping_rounds) as f64 / wall
    };

    // ---- shared R-MAT instance for exchange / sclp / end-to-end --------
    let g = pgp_gen::rmat::rmat_web(scale, 8, seed);
    eprintln!("[hotpath] rmat n = {}, m = {}", g.n(), g.m());

    // ---- 2. exchange: per-phase ghost-update throughput ----------------
    let t0 = Instant::now();
    let ex_stats = run(p, |comm| {
        let dg = DistGraph::from_global(comm, &g);
        let mut labels: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
            .map(|l| dg.local_to_global(l))
            .collect();
        let mut ex = LabelExchange::new(comm, &dg);
        let iface: Vec<Node> = (0..dg.n_local() as Node)
            .filter(|&l| dg.is_interface(l))
            .collect();
        for phase in 0..exchange_phases {
            for &l in &iface {
                ex.record(&dg, l, phase as Node);
            }
            ex.flush_overlap(comm, &dg, &mut labels);
        }
        ex.finish(comm, &dg, &mut labels);
        ex.updates_recorded()
    });
    let exchange_wall = t0.elapsed().as_secs_f64();
    let exchange_updates: u64 = ex_stats.iter().sum();
    let exchange_updates_per_s = exchange_updates as f64 / exchange_wall;

    // ---- 3. sclp: cluster + refine round times -------------------------
    let sclp_iters = 4usize;
    let (cluster_rounds, cluster_times) = {
        let (stats, times) = run_timed(p, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let mut labels = pgp_lp::singleton_labels(&dg);
            let u = (dg.total_node_weight() / 16).max(2);
            pgp_lp::parallel_sclp_cluster(comm, &dg, u, sclp_iters, seed, &mut labels, None)
        });
        (stats[0].rounds.max(1), times)
    };
    let cluster_cpu = cluster_times.into_iter().fold(0.0f64, f64::max);
    let sclp_cluster_round_s = cluster_cpu / cluster_rounds as f64;

    let (refine_rounds, refine_times) = {
        let lmax = pgp_graph::lmax(g.total_node_weight(), k, 0.03);
        let (stats, times) = run_timed(p, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let mut blocks: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                .map(|l| dg.local_to_global(l) % k as Node)
                .collect();
            pgp_lp::parallel_sclp_refine(comm, &dg, k, lmax, sclp_iters, seed, &mut blocks)
        });
        (stats[0].rounds.max(1), times)
    };
    let refine_cpu = refine_times.into_iter().fold(0.0f64, f64::max);
    let sclp_refine_round_s = refine_cpu / refine_rounds as f64;

    // ---- 3b. sclp thread scaling: worker pool at T ∈ {1, 2, 4} ---------
    // Per-PE wall time around the SCLP call itself (graph distribution
    // excluded), max over PEs, best over reps; divided by rounds.
    let cluster_round_at = |threads: usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let rc = pgp_dmp::RunConfig {
                threads_per_pe: threads,
                ..Default::default()
            };
            let results = pgp_dmp::run_config(p, rc, |comm| {
                let dg = DistGraph::from_global(comm, &g);
                let mut labels = pgp_lp::singleton_labels(&dg);
                let u = (dg.total_node_weight() / 16).max(2);
                let t0 = Instant::now();
                let stats = pgp_lp::parallel_sclp_cluster(
                    comm,
                    &dg,
                    u,
                    sclp_iters,
                    seed,
                    &mut labels,
                    None,
                );
                (t0.elapsed().as_secs_f64(), stats.rounds.max(1))
            });
            let (wall, rounds) = results
                .into_iter()
                .map(|r| r.expect("fault-free sclp cannot fail"))
                .fold((0.0f64, 1usize), |(w, r), (pw, pr)| (w.max(pw), r.max(pr)));
            best = best.min(wall / rounds as f64);
        }
        best
    };
    let sclp_cluster_round_t1_s = cluster_round_at(1);
    let sclp_cluster_round_t2_s = cluster_round_at(2);
    let sclp_cluster_round_t4_s = cluster_round_at(4);
    let sclp_thread_scaling_x4 = sclp_cluster_round_t1_s / sclp_cluster_round_t4_s;

    // ---- 3c. sclp warm-call overhead: cached degree fingerprint --------
    // Zero-round calls on a warm scratch isolate the per-call fixed cost:
    // `SclpScratch::prepare` (an O(1) fingerprint compare since the cache
    // moved onto `DistGraph`) plus cluster-weight init and exchange setup.
    let warm_calls: u32 = if smoke { 50 } else { 500 };
    let warm_walls = run(p, |comm| {
        let dg = DistGraph::from_global(comm, &g);
        let mut labels = pgp_lp::singleton_labels(&dg);
        let u = (dg.total_node_weight() / 16).max(2);
        let mut scratch = pgp_lp::SclpScratch::new();
        // One real call fills the scratch caches.
        pgp_lp::parallel_sclp_cluster_with_scratch(
            comm,
            &dg,
            u,
            1,
            seed,
            &mut labels,
            None,
            &mut scratch,
        );
        let t0 = Instant::now();
        for _ in 0..warm_calls {
            pgp_lp::parallel_sclp_cluster_with_scratch(
                comm,
                &dg,
                u,
                0,
                seed,
                &mut labels,
                None,
                &mut scratch,
            );
        }
        t0.elapsed().as_secs_f64()
    });
    let warm_wall = warm_walls.into_iter().fold(0.0f64, f64::max);
    let sclp_warm_call_us = warm_wall / warm_calls as f64 * 1e6;

    // ---- 4. end-to-end R-MAT partition ---------------------------------
    let mut cuts: Vec<u64> = Vec::new();
    let mut walls: Vec<f64> = Vec::new();
    let mut cpu_maxes: Vec<f64> = Vec::new();
    let mut imbalance = 0.0f64;
    let mut msg_count = 0u64;
    let mut elem_count = 0u64;
    for rep in 0..reps {
        let mut cfg = ParhipConfig::fast(k, GraphClass::Social, seed + rep as u64);
        cfg.deterministic = true;
        let t0 = Instant::now();
        // Mirror harness::run_parhip, keeping the universe for counters.
        let (results, times) = pgp_dmp::run_timed(p, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let (local, _) = parhip::parhip_distributed(comm, &dg, &cfg);
            let all = pgp_dmp::collectives::allgatherv(comm, local);
            (
                all,
                comm.universe().message_count(),
                comm.universe().element_count(),
            )
        });
        walls.push(t0.elapsed().as_secs_f64());
        cpu_maxes.push(times.into_iter().fold(0.0f64, f64::max));
        let (assignment, m, e) = results.into_iter().next().expect("p >= 1 results");
        msg_count = msg_count.max(m);
        elem_count = elem_count.max(e);
        let part = pgp_graph::Partition::from_assignment(&g, k, assignment);
        cuts.push(part.edge_cut(&g));
        imbalance = imbalance.max(part.imbalance(&g));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let e2e_wall_s = avg(&walls);
    let e2e_cpu_max_s = avg(&cpu_maxes);
    let avg_cut = cuts.iter().map(|&c| c as f64).sum::<f64>() / cuts.len() as f64;

    // ---- JSON ----------------------------------------------------------
    let json = format!(
        "{{\n  \"meta\": {{ \"p\": {p}, \"k\": {k}, \"scale\": {scale}, \"reps\": {reps}, \
         \"seed\": {seed}, \"smoke\": {smoke}, \"n\": {n}, \"m\": {m} }},\n  \
         \"comm\": {{ \"backlog_msgs_per_s\": {bpers:.0}, \"ping_msgs_per_s\": {ping:.0}, \
         \"backlog\": {backlog}, \"backlog_tags\": {backlog_tags}, \
         \"backlog_msgs\": {backlog_msgs} }},\n  \
         \"obs\": {{ \"ping_disabled_msgs_per_s\": {opd:.0}, \
         \"ping_report_msgs_per_s\": {opr:.0}, \"ping_trace_msgs_per_s\": {opt:.0}, \
         \"ping_live_msgs_per_s\": {opl:.0} }},\n  \
         \"exchange\": {{ \"updates_per_s\": {exu:.0}, \"updates\": {exn}, \"phases\": {exp} }},\n  \
         \"sclp\": {{ \"cluster_round_s\": {cr:.6}, \"refine_round_s\": {rr:.6}, \
         \"cluster_round_t1_s\": {ct1:.6}, \"cluster_round_t2_s\": {ct2:.6}, \
         \"cluster_round_t4_s\": {ct4:.6}, \"thread_scaling_x4\": {tsx:.3}, \
         \"warm_call_us\": {wcu:.2} }},\n  \
         \"end_to_end\": {{ \"wall_s\": {wall:.4}, \"cpu_max_s\": {cpum:.4}, \
         \"avg_cut\": {cut:.1}, \"cuts\": {cuts:?}, \"max_imbalance\": {imb:.5}, \
         \"messages\": {msgs}, \"elements\": {elems} }}\n}}\n",
        n = g.n(),
        m = g.m(),
        bpers = comm_backlog_msgs_per_s,
        ping = comm_ping_msgs_per_s,
        opd = obs_ping_disabled,
        opr = obs_ping_report,
        opt = obs_ping_trace,
        opl = obs_ping_live,
        exu = exchange_updates_per_s,
        exn = exchange_updates,
        exp = exchange_phases,
        cr = sclp_cluster_round_s,
        rr = sclp_refine_round_s,
        ct1 = sclp_cluster_round_t1_s,
        ct2 = sclp_cluster_round_t2_s,
        ct4 = sclp_cluster_round_t4_s,
        tsx = sclp_thread_scaling_x4,
        wcu = sclp_warm_call_us,
        wall = e2e_wall_s,
        cpum = e2e_cpu_max_s,
        cut = avg_cut,
        cuts = cuts,
        imb = imbalance,
        msgs = msg_count,
        elems = elem_count,
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&out, &json).expect("write json");
    println!("{json}");
    println!("[saved {out}]");
}
