//! Reproduces **Figure 6**: strong scaling — total time vs number of PEs
//! on (top) Delaunay graphs, (middle) random geometric graphs, (bottom)
//! the large web stand-ins, where the ParMetis-like baseline fails due to
//! ineffective coarsening and the *minimal* variant is additionally shown
//! on the largest web graph.
//!
//! Usage: `cargo run -p bench --release --bin fig6_strong -- [panel] [pmax=8] [seed=1] [tier=small]`
//! where `panel` ∈ {del, rgg, web, all} (default all).

use bench::harness::{memory_budget, parse_tier, run_parhip, run_parmetis};
use bench::{arg, arg_usize, fnum, Table};
use parhip::{GraphClass, ParhipConfig, Preset};
use pgp_baselines::ParmetisLikeConfig;
use pgp_gen::benchmark_set::{instance, Tier};
use pgp_graph::CsrGraph;

fn pe_counts(pmax: usize) -> Vec<usize> {
    let mut v = vec![1];
    while *v.last().expect("starts with one element") * 2 <= pmax {
        v.push(v.last().expect("starts with one element") * 2);
    }
    v
}

fn panel(
    title: &str,
    csv: &str,
    graphs: &[(String, CsrGraph, GraphClass)],
    pmax: usize,
    seed: u64,
    tier: Tier,
    with_minimal_on_last: bool,
) {
    let mut t = Table::new(&[
        "graph",
        "p",
        "ParHIP t[s]",
        "ParHIP cut",
        "PM t[s]",
        "PM cut",
    ]);
    for (idx, (name, g, class)) in graphs.iter().enumerate() {
        for &p in &pe_counts(pmax) {
            let cfg = ParhipConfig::preset(Preset::Fast, 2, *class, seed);
            let (part, time) = run_parhip(g, p, &cfg);
            let (pm_t, pm_c) = {
                let c = ParmetisLikeConfig::new(2, seed).with_memory_budget(memory_budget(tier));
                match run_parmetis(g, p, &c) {
                    Ok((pp, tt)) => (fnum(tt), pp.edge_cut(g).to_string()),
                    Err(_) => ("*".into(), "*".into()),
                }
            };
            t.row(vec![
                name.clone(),
                p.to_string(),
                fnum(time),
                part.edge_cut(g).to_string(),
                pm_t,
                pm_c,
            ]);
            if with_minimal_on_last && idx == graphs.len() - 1 {
                let mcfg = ParhipConfig::preset(Preset::Minimal, 2, *class, seed);
                let (mp, mt) = run_parhip(g, p, &mcfg);
                t.row(vec![
                    format!("{name}-minimal"),
                    p.to_string(),
                    fnum(mt),
                    mp.edge_cut(g).to_string(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
        eprintln!("[{name}] done");
    }
    println!("\n== {title} ==\n{}", t.render());
    t.save_csv(csv);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .iter()
        .find(|a| !a.contains('='))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let pmax = arg_usize(&args, "pmax", 8);
    let seed = arg_usize(&args, "seed", 1) as u64;
    let tier = parse_tier(arg(&args, "tier"));
    let (x_small, x_large) = match tier {
        Tier::Tiny => (10, 12),
        Tier::Small => (12, 14),
        Tier::Medium => (14, 16),
    };

    if which == "del" || which == "all" {
        let graphs: Vec<(String, CsrGraph, GraphClass)> = [x_small, x_large]
            .iter()
            .map(|&x| {
                (
                    format!("del{x}"),
                    pgp_gen::delaunay::delaunay_x(x, seed),
                    GraphClass::Mesh,
                )
            })
            .collect();
        panel(
            "Figure 6 (top): Delaunay strong scaling",
            "fig6_del",
            &graphs,
            pmax,
            seed,
            tier,
            false,
        );
    }
    if which == "rgg" || which == "all" {
        let graphs: Vec<(String, CsrGraph, GraphClass)> = [x_small, x_large]
            .iter()
            .map(|&x| {
                (
                    format!("rgg{x}"),
                    pgp_gen::ensure_connected(pgp_gen::rgg::rgg_x(x, seed)),
                    GraphClass::Mesh,
                )
            })
            .collect();
        panel(
            "Figure 6 (middle): RGG strong scaling",
            "fig6_rgg",
            &graphs,
            pmax,
            seed,
            tier,
            false,
        );
    }
    if which == "web" || which == "all" {
        let graphs: Vec<(String, CsrGraph, GraphClass)> = ["uk-2002", "arabic-2005", "uk-2007"]
            .iter()
            .map(|&n| {
                (
                    n.to_string(),
                    instance(n, tier, seed).graph,
                    GraphClass::Social,
                )
            })
            .collect();
        panel(
            "Figure 6 (bottom): web-graph strong scaling (+ minimal variant)",
            "fig6_web",
            &graphs,
            pmax,
            seed,
            tier,
            true,
        );
    }
}
