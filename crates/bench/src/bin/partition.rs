//! Single-run CLI for the parallel partitioner with the observability
//! layer enabled: partitions one benchmark instance on `p` simulated PEs
//! and (optionally) writes the schema-versioned JSON run report and/or a
//! Chrome-trace/Perfetto event timeline.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin partition -- \
//!     [graph=amazon] [tier=small] [k=4] [p=4] [seed=1] [preset=fast] \
//!     [backend=threads] [threads_per_pe=1] \
//!     [report=results/run_report.json] \
//!     [trace=results/trace.json] [recover=1] [max_retries=3] \
//!     [checkpoint_every=1] [telemetry=results/live.ndjson] [monitor=1]
//! ```
//!
//! `backend=threads|sockets` (or `--backend <b>`) selects the comm
//! transport (DESIGN.md §15); the report's `backend` field records which
//! one carried the run, and the partition is bit-identical either way.
//!
//! `--report <path>` / `--trace <path>` are accepted as aliases for the
//! `key=value` forms. The report format is documented in DESIGN.md §10,
//! the trace schema in DESIGN.md §11; per-level tables can be regenerated
//! from the JSON (see EXPERIMENTS.md). Open a trace at
//! <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! `recover=1` (or `--recover`) runs under the automatic-recovery
//! supervisor (DESIGN.md §14) with V-cycle checkpoints every
//! `checkpoint_every` cycles and up to `max_retries` transient retries;
//! the report's `recovery` block carries the supervisor counters.
//!
//! `telemetry=<path>` (or `--telemetry <path>`) streams live per-PE
//! metric snapshots to the path as NDJSON while the run is in flight
//! (DESIGN.md §16); `monitor=1` (or `--monitor`) renders the live
//! straggler table to stderr. Validate a finished stream with
//! `pgp-top --validate <path> --report <report.json>`.

use bench::harness::parse_tier;
use bench::{
    arg, arg_usize, report_level_table, report_phase_table, report_refine_table,
    report_straggler_table,
};
use parhip::{GraphClass, ParhipConfig, Preset};
use pgp_gen::benchmark_set;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Normalize the conventional `--flag <path>` spellings into the
    // harness `key=value` form.
    for flag in ["report", "trace", "backend", "telemetry"] {
        if let Some(i) = args.iter().position(|a| a == &format!("--{flag}")) {
            assert!(i + 1 < args.len(), "--{flag} requires a path argument");
            let path = args.remove(i + 1);
            args[i] = format!("{flag}={path}");
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--recover") {
        args[i] = "recover=1".to_string();
    }
    if let Some(i) = args.iter().position(|a| a == "--monitor") {
        args[i] = "monitor=1".to_string();
    }
    let name = arg(&args, "graph").unwrap_or_else(|| "amazon".to_string());
    let tier = parse_tier(arg(&args, "tier"));
    let k = arg_usize(&args, "k", 4);
    let p = arg_usize(&args, "p", 4);
    let seed = arg_usize(&args, "seed", 1) as u64;
    let preset = match arg(&args, "preset").as_deref() {
        None | Some("fast") => Preset::Fast,
        Some("eco") => Preset::Eco,
        Some("minimal") => Preset::Minimal,
        Some(other) => panic!("unknown preset `{other}` (fast|eco|minimal)"),
    };

    let inst = benchmark_set::instance(&name, tier, seed);
    let class = match inst.class {
        benchmark_set::GraphClass::Social => GraphClass::Social,
        benchmark_set::GraphClass::Mesh => GraphClass::Mesh,
    };
    let threads_per_pe = arg_usize(&args, "threads_per_pe", 1);
    let backend: pgp_dmp::BackendKind = arg(&args, "backend")
        .map(|v| v.parse().unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or_default();
    let recover = arg(&args, "recover").is_some_and(|v| v != "0");
    let max_retries = arg_usize(&args, "max_retries", 3) as u32;
    let checkpoint_every = arg_usize(&args, "checkpoint_every", 1);
    let mut cfg = ParhipConfig::preset(preset, k, class, seed);
    cfg.backend = backend;
    cfg.threads_per_pe = threads_per_pe;
    cfg.checkpoint = parhip::CheckpointPolicy::every(checkpoint_every);
    let graph = &inst.graph;
    println!(
        "partition: {} (n = {}, m = {}), k = {k}, p = {p}, preset = {preset:?}, seed = {seed}, \
         backend = {}, threads_per_pe = {threads_per_pe}",
        inst.name,
        graph.n(),
        graph.m(),
        backend.name()
    );

    let trace_path = arg(&args, "trace");
    let telemetry_path = arg(&args, "telemetry");
    let monitor_on = arg(&args, "monitor").is_some_and(|v| v != "0");
    let live = telemetry_path.is_some() || monitor_on;
    // Every path below records into one externally built registry: the
    // telemetry monitor (when on) and the report read the same counters,
    // which is what makes the stream-vs-report conservation check exact.
    let obs = if trace_path.is_some() {
        pgp_obs::Obs::with_trace(p, pgp_obs::DEFAULT_TRACE_CAPACITY)
    } else {
        pgp_obs::Obs::new(p)
    };
    let monitor = if live {
        obs.set_backend(backend.name());
        obs.enable_live();
        let out: Box<dyn std::io::Write + Send> = match &telemetry_path {
            Some(path) => {
                if let Some(dir) = std::path::Path::new(path).parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir).expect("create telemetry directory");
                    }
                }
                Box::new(std::fs::File::create(path).expect("create telemetry stream file"))
            }
            None => Box::new(std::io::sink()),
        };
        let mon_cfg = pgp_obs::LiveMonitorConfig {
            render: monitor_on,
            ..Default::default()
        };
        Some(pgp_obs::LiveMonitor::spawn(obs.clone(), mon_cfg, out).expect("spawn live monitor"))
    } else {
        None
    };
    let (partition, stats) = if recover {
        let run = pgp_dmp::RunConfig {
            backend: cfg.backend,
            obs: Some(obs.clone()),
            ..Default::default()
        };
        let limits = parhip::RecoveryLimits {
            max_retries,
            ..parhip::RecoveryLimits::default()
        };
        let (partition, stats, recovery) =
            match parhip::partition_parallel_supervised(graph, p, &cfg, run, limits) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("recovery budget exhausted: {e:?}");
                    std::process::exit(1);
                }
            };
        println!(
            "recovery: {} attempt(s), {} transient retries, {} full recoveries, \
             dead ranks {:?}, {} lost V-cycle(s)",
            recovery.attempts,
            recovery.retries,
            recovery.recoveries,
            recovery.dead_ranks,
            recovery.lost_cycles
        );
        (partition, stats)
    } else {
        parhip::partition_parallel_with_obs(graph, p, &cfg, obs.clone())
    };
    // Monitor before report: the final sweep writes the closing
    // snapshots and any last alerts into the registry first.
    if let Some(monitor) = monitor {
        match monitor.finish() {
            Ok(mstats) => {
                if let Some(path) = &telemetry_path {
                    println!(
                        "[telemetry {path}: {} snapshot(s), {} alert(s)]",
                        mstats.snapshots, mstats.alerts
                    );
                }
            }
            Err(e) => eprintln!("warning: telemetry stream failed: {e}"),
        }
    }
    let report = obs.report();
    let trace = obs.trace();
    println!(
        "cut = {}, imbalance = {:.4}, levels = {}, coarsest_n = {}",
        partition.edge_cut(graph),
        partition.imbalance(graph),
        stats.levels,
        stats.coarsest_n
    );
    println!("\n{}", report_phase_table(&report).render());
    println!("{}", report_level_table(&report).render());
    println!("{}", report_refine_table(&report).render());
    if let Some(trace) = &trace {
        println!("{}", report_straggler_table(&report, trace).render());
    }
    println!(
        "comm: {} messages, {} bytes, {} collective calls",
        report.aggregate.messages, report.aggregate.bytes, report.aggregate.collective_calls
    );

    if let Some(path) = arg(&args, "report") {
        write_output(&path, &report.to_json(false));
        println!("[report {path}]");
    }
    if let (Some(path), Some(trace)) = (trace_path, trace) {
        write_output(&path, &pgp_obs::to_perfetto_json(&trace));
        println!("[trace {path}]");
    }
}

fn write_output(path: &str, contents: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(path, contents).expect("write output file");
}
