//! Shared infrastructure for the experiment harness: repetition driver,
//! result tables, CSV emission, and the "parallel time" measurement
//! convention (see `EXPERIMENTS.md`).
//!
//! Every table and figure of the paper has a binary in `src/bin` that
//! regenerates it:
//!
//! | target | reproduces |
//! |---|---|
//! | `table2` | Table II (k = 2 quality/time comparison) |
//! | `table3` | Table III (k = 32) |
//! | `fig5_weak` | Figure 5 (weak scaling, time per edge) |
//! | `fig6_strong` | Figure 6 (strong scaling, three panels) |
//! | `coarsening_effectiveness` | §V-B narrative (shrink factors) |
//! | `ablation` | §III/§V-A design-choice claims |

pub mod harness;

use pgp_graph::{CsrGraph, Partition, Weight};
use std::fmt::Write as _;
use std::time::Instant;

/// Outcome of repeated runs of one partitioner on one instance.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Arithmetic mean cut over repetitions.
    pub avg_cut: f64,
    /// Best cut found.
    pub best_cut: Weight,
    /// Arithmetic mean "parallel time" (max per-PE CPU seconds, or wall
    /// time for sequential codes) per repetition.
    pub avg_time_s: f64,
    /// Worst imbalance observed.
    pub max_imbalance: f64,
    /// Number of repetitions.
    pub reps: usize,
}

/// Runs `f` (which returns a partition and a time in seconds) `reps` times
/// with seeds `base_seed + i` and summarizes.
pub fn summarize_runs(
    graph: &CsrGraph,
    reps: usize,
    mut f: impl FnMut(u64) -> (Partition, f64),
    base_seed: u64,
) -> RunSummary {
    assert!(reps >= 1);
    let mut cuts = Vec::with_capacity(reps);
    let mut times = Vec::with_capacity(reps);
    let mut max_imb = 0.0f64;
    for i in 0..reps {
        let (p, t) = f(base_seed + i as u64);
        cuts.push(p.edge_cut(graph));
        times.push(t);
        max_imb = max_imb.max(p.imbalance(graph));
    }
    RunSummary {
        avg_cut: cuts.iter().map(|&c| c as f64).sum::<f64>() / reps as f64,
        best_cut: *cuts.iter().min().expect("reps >= 1"),
        avg_time_s: times.iter().sum::<f64>() / reps as f64,
        max_imbalance: max_imb,
        reps,
    }
}

/// Measures a closure's wall-clock runtime.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Geometric mean (the paper's cross-instance aggregate).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean needs positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (log_sum / n as f64).exp()
}

/// A simple aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>w$}", c, w = width[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') {
                format!("\"{s}\"")
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form under `results/<name>.csv` (creating the
    /// directory), printing the path.
    pub fn save_csv(&self, name: &str) {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv()).expect("write csv");
        println!("[saved {}]", path.display());
    }
}

/// Formats a float compactly (two decimals, or scientific when tiny).
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() < 0.01 {
        format!("{v:.2e}")
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Per-level structural table from an observability [`pgp_obs::RunReport`]:
/// one row per contraction level with the group-agreed global sizes plus
/// the worst per-PE local/ghost counts (rank 0's global view; locals/ghosts
/// maxed across PEs). See EXPERIMENTS.md for the recipe.
pub fn report_level_table(report: &pgp_obs::RunReport) -> Table {
    let mut t = Table::new(&[
        "cycle",
        "level",
        "n_global",
        "m_global",
        "max_local",
        "max_ghost",
    ]);
    let Some(pe0) = report.per_pe.first() else {
        return t;
    };
    for lv in &pe0.levels {
        let mut max_local = 0u64;
        let mut max_ghost = 0u64;
        for pe in &report.per_pe {
            for other in &pe.levels {
                if other.cycle == lv.cycle && other.level == lv.level {
                    max_local = max_local.max(other.n_local);
                    max_ghost = max_ghost.max(other.n_ghost);
                }
            }
        }
        t.row(vec![
            lv.cycle.to_string(),
            lv.level.to_string(),
            lv.n_global.to_string(),
            lv.m_global.to_string(),
            max_local.to_string(),
            max_ghost.to_string(),
        ]);
    }
    t
}

/// Per-refinement-pass quality table from a [`pgp_obs::RunReport`]: cut and
/// imbalance after each recorded pass (rank 0's view; values are global).
pub fn report_refine_table(report: &pgp_obs::RunReport) -> Table {
    let mut t = Table::new(&["cycle", "level", "cut", "imbalance"]);
    let Some(pe0) = report.per_pe.first() else {
        return t;
    };
    for r in &pe0.refinements {
        t.row(vec![
            r.cycle.to_string(),
            r.level.to_string(),
            r.cut.to_string(),
            fnum(r.imbalance),
        ]);
    }
    t
}

/// Cross-PE phase-time table from a [`pgp_obs::RunReport`]: per span path,
/// closure count and total seconds summed over PEs.
pub fn report_phase_table(report: &pgp_obs::RunReport) -> Table {
    let mut t = Table::new(&["phase", "count", "total_s"]);
    for ph in &report.aggregate.phases {
        t.row(vec![
            ph.path.clone(),
            ph.count.to_string(),
            format!("{:.4}", ph.total_s),
        ]);
    }
    t
}

/// Straggler-attribution table from a [`pgp_obs::RunReport`] and the
/// matching [`pgp_obs::RunTrace`]: per span path, the slowest PE's time
/// against the median PE's time (skew = max/median), plus the top three
/// peers blamed for receive waits inside that phase (from the trace's
/// per-peer wait attribution). A phase whose skew is near 1 is balanced;
/// a large skew with one dominant blamed peer names the straggler.
pub fn report_straggler_table(report: &pgp_obs::RunReport, trace: &pgp_obs::RunTrace) -> Table {
    let mut t = Table::new(&[
        "phase",
        "max_pe_s",
        "max_pe",
        "median_pe_s",
        "skew",
        "top_blamed_peers",
    ]);
    let blame = trace.phase_blame();
    for ph in &report.aggregate.phases {
        // Per-PE totals for this path (a PE missing the path contributes 0).
        let mut times: Vec<(f64, usize)> = report
            .per_pe
            .iter()
            .map(|pe| {
                let s = pe
                    .phases
                    .iter()
                    .find(|e| e.path == ph.path)
                    .map_or(0.0, |e| e.total_s);
                (s, pe.rank)
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let &(max_s, max_pe) = times.last().expect("at least one PE");
        let median_s = times[times.len() / 2].0;
        let skew = if median_s > 0.0 {
            max_s / median_s
        } else {
            0.0
        };
        // Top-3 blamed peers by attributed wait inside this phase.
        let peers = blame.get(&ph.path).map_or_else(String::new, |b| {
            let mut ranked: Vec<(usize, u64)> = b.by_peer.iter().map(|(&p, &ns)| (p, ns)).collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            ranked
                .iter()
                .take(3)
                .map(|(p, ns)| format!("pe{}:{:.3}s", p, *ns as f64 / 1e9))
                .collect::<Vec<_>>()
                .join(" ")
        });
        t.row(vec![
            ph.path.clone(),
            format!("{max_s:.4}"),
            max_pe.to_string(),
            format!("{median_s:.4}"),
            format!("{skew:.2}"),
            peers,
        ]);
    }
    t
}

/// Parses harness CLI args of the form `key=value`; returns the value.
pub fn arg(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("{key}=")).map(|v| v.to_string()))
}

/// Parses a usize arg with default.
pub fn arg_usize(args: &[String], key: &str, default: usize) -> usize {
    arg(args, key)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {key}")))
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert!((geomean([5.0]) - 5.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty::<f64>()).is_nan());
    }

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = Table::new(&["graph", "cut"]);
        t.row(vec!["grid".into(), "42".into()]);
        t.row(vec!["a-very-long-name".into(), "7".into()]);
        let text = t.render();
        assert!(text.contains("a-very-long-name"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("graph,cut"));
    }

    #[test]
    fn summarize_collects_best_and_avg() {
        let g = pgp_gen::mesh::grid2d(4, 4);
        let s = summarize_runs(
            &g,
            3,
            |seed| {
                let assign: Vec<u32> = (0..16).map(|i| ((i + seed as usize) % 2) as u32).collect();
                (pgp_graph::Partition::from_assignment(&g, 2, assign), 0.5)
            },
            0,
        );
        assert_eq!(s.reps, 3);
        assert!(s.best_cut as f64 <= s.avg_cut);
        assert!((s.avg_time_s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = vec!["reps=5".into(), "tier=small".into()];
        assert_eq!(arg_usize(&args, "reps", 1), 5);
        assert_eq!(arg(&args, "tier").as_deref(), Some("small"));
        assert_eq!(arg_usize(&args, "missing", 7), 7);
    }
}
