//! Criterion micro-benchmarks for the performance-critical kernels:
//!
//! * `cluster_map` — the paper's linear-probing aggregation table vs
//!   `std::collections::HashMap` (§IV-A claims a large speedup; this bench
//!   verifies it on this implementation).
//! * `sclp_round` — one sequential label-propagation round per edge.
//! * `contraction` — sequential and parallel cluster contraction.
//! * `collectives` — allreduce / alltoallv latency of the dmp substrate.
//! * `generators` — graph generation throughput.
//! * `end_to_end` — ParHIP fast vs the ParMetis-like baseline on a small
//!   web stand-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgp_dmp::DistGraph;
use pgp_graph::Node;
use pgp_lp::ClusterMap;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_cluster_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_map");
    group.sample_size(30);
    let keys: Vec<Node> = (0..256u32).map(|i| (i * 2654435761) % 1024).collect();
    group.bench_function("linear_probing", |b| {
        let mut m = ClusterMap::with_max_degree(256);
        b.iter(|| {
            m.clear();
            for &k in &keys {
                m.add(black_box(k), 1);
            }
            black_box(m.len())
        });
    });
    group.bench_function("std_hashmap", |b| {
        b.iter(|| {
            let mut m: HashMap<Node, u64> = HashMap::with_capacity(256);
            for &k in &keys {
                *m.entry(black_box(k)).or_insert(0) += 1;
            }
            black_box(m.len())
        });
    });
    group.finish();
}

fn bench_sclp_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("sclp_round");
    group.sample_size(15);
    for (name, g) in [
        ("sbm_4k", pgp_gen::sbm::sbm(4096, Default::default(), 1).0),
        ("grid_64x64", pgp_gen::mesh::grid2d(64, 64)),
    ] {
        group.throughput(Throughput::Elements(g.m() as u64));
        group.bench_function(BenchmarkId::new("one_round", name), |b| {
            b.iter(|| {
                let mut labels: Vec<Node> = g.nodes().collect();
                pgp_lp::seq::sclp(
                    &g,
                    &pgp_lp::seq::SclpConfig {
                        u_bound: 64,
                        iterations: 1,
                        mode: pgp_lp::seq::Mode::Cluster,
                        order: pgp_lp::seq::Order::Degree,
                        seed: 1,
                    },
                    &mut labels,
                    None,
                );
                black_box(labels)
            });
        });
    }
    group.finish();
}

fn bench_contraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("contraction");
    group.sample_size(15);
    let (g, _) = pgp_gen::sbm::sbm(4096, Default::default(), 2);
    let clustering = pgp_lp::sclp_cluster(&g, 128, 3, 1);
    group.throughput(Throughput::Elements(g.m() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(pgp_graph::contract_clustering(&g, &clustering)));
    });
    group.bench_function("parallel_p4", |b| {
        b.iter(|| {
            pgp_dmp::run(4, |comm| {
                let dg = DistGraph::from_global(comm, &g);
                let labels: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                    .map(|l| clustering[dg.local_to_global(l) as usize])
                    .collect();
                black_box(
                    parhip::parallel_contract(comm, &dg, &labels)
                        .coarse
                        .n_local(),
                )
            })
        });
    });
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(15);
    for p in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new("allreduce_sum", p), |b| {
            b.iter(|| {
                pgp_dmp::run(p, |comm| {
                    pgp_dmp::collectives::allreduce_sum(comm, comm.rank() as u64)
                })
            });
        });
        group.bench_function(BenchmarkId::new("alltoallv_1k", p), |b| {
            b.iter(|| {
                pgp_dmp::run(p, |comm| {
                    let sends: Vec<Vec<u64>> = (0..p).map(|_| vec![7u64; 1024 / p]).collect();
                    pgp_dmp::collectives::alltoallv(comm, sends).len()
                })
            });
        });
    }
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("rgg_2^13", |b| {
        b.iter(|| black_box(pgp_gen::rgg::rgg_x(13, 1)));
    });
    group.bench_function("delaunay_2^12", |b| {
        b.iter(|| black_box(pgp_gen::delaunay::delaunay_x(12, 1)));
    });
    group.bench_function("rmat_2^13_avg8", |b| {
        b.iter(|| black_box(pgp_gen::rmat::rmat_web(13, 8, 1)));
    });
    group.bench_function("ba_8k_m3", |b| {
        b.iter(|| black_box(pgp_gen::ba::barabasi_albert(8192, 3, 1)));
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let g = pgp_gen::ensure_connected(pgp_gen::rmat::rmat_web(12, 8, 3));
    group.throughput(Throughput::Elements(g.m() as u64));
    group.bench_function("parhip_fast_k2_p4", |b| {
        b.iter(|| {
            let mut cfg = parhip::ParhipConfig::fast(2, parhip::GraphClass::Social, 1);
            cfg.deterministic = true;
            black_box(parhip::partition_parallel(&g, 4, &cfg).0.edge_cut(&g))
        });
    });
    group.bench_function("parmetis_like_k2_p4", |b| {
        b.iter(|| {
            let cfg = pgp_baselines::ParmetisLikeConfig::new(2, 1);
            black_box(
                pgp_baselines::parmetis_like(&g, 4, &cfg)
                    .map(|(p, _)| p.edge_cut(&g))
                    .unwrap_or(0),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cluster_map,
    bench_sclp_round,
    bench_contraction,
    bench_collectives,
    bench_generators,
    bench_end_to_end
);
criterion_main!(benches);
