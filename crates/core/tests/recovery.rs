//! End-to-end tests for the survivor-led automatic-recovery layer
//! (DESIGN.md §14): the full ParHIP pipeline run under
//! [`partition_parallel_supervised`] with injected faults.
//!
//! * A PE killed mid-V-cycle must be recovered without manual
//!   intervention — failure consensus names the dead rank, the group is
//!   respawned, and the run resumes from the latest checkpoint to a
//!   partition *bit-identical* to the fault-free one.
//! * Transient faults (stalls past the watchdog deadline, with no rank
//!   self-reporting dead) must be retried in place — zero full
//!   recoveries — and still converge to the bit-identical result.
//! * The recovery counters published in the [`pgp_obs`] run report must
//!   match the injected fault plan.

use parhip::{
    partition_parallel, partition_parallel_supervised, CheckpointPolicy, CheckpointStore,
    GraphClass, ParhipConfig, RecoveryLimits,
};
use pgp_chaos::FaultPlan;
use pgp_dmp::{DistGraph, RunConfig};
use pgp_graph::CsrGraph;
use std::time::Duration;

const DEADLINE: Duration = Duration::from_secs(20);

fn small_cfg(k: usize, seed: u64) -> ParhipConfig {
    let mut cfg = ParhipConfig::fast(k, GraphClass::Social, seed);
    cfg.coarsest_nodes_per_block = 50;
    cfg.deterministic = true;
    cfg
}

/// The max per-PE phase count of a fault-free checkpointed run — phases
/// (tag blocks) are deterministic for a deterministic config, so a clean
/// probe tells us exactly where to aim a kill.
fn probe_phases(g: &CsrGraph, cfg: &ParhipConfig, p: usize) -> u64 {
    let store = CheckpointStore::new();
    let counts = pgp_dmp::run(p, |comm| {
        let dg = DistGraph::from_global(comm, g);
        let _ = parhip::parhip_distributed_checkpointed(comm, &dg, cfg, None, &store);
        comm.phases_started()
    });
    counts.into_iter().max().expect("at least one PE")
}

/// A phase index midway through the *last* V-cycle of `cfg` — past the
/// previous cycle's checkpoint write, well before the finish line.
fn mid_last_cycle_phase(g: &CsrGraph, cfg: &ParhipConfig, p: usize) -> u64 {
    let mut head = cfg.clone();
    head.vcycles = cfg.vcycles.max(1) - 1;
    let phases_head = if head.vcycles == 0 {
        0
    } else {
        probe_phases(g, &head, p)
    };
    let total = probe_phases(g, cfg, p);
    assert!(
        total > phases_head + 4,
        "last cycle too short to kill inside ({phases_head}..{total})"
    );
    phases_head + (total - phases_head) / 2
}

/// Runs the supervised partitioner under `plan` with an observability
/// registry attached; returns the partition, the supervisor's counters,
/// and the published run report.
fn supervised_under_plan(
    g: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
    plan: FaultPlan,
    deadline: Duration,
    limits: RecoveryLimits,
) -> (
    pgp_graph::Partition,
    pgp_obs::RecoveryReport,
    pgp_obs::RunReport,
) {
    let obs = pgp_obs::Obs::new(p);
    let mut run: RunConfig = plan.into_config(Some(deadline));
    run.obs = Some(obs.clone());
    let (partition, _, recovery) = partition_parallel_supervised(g, p, cfg, run, limits)
        .expect("supervised run must complete within the recovery budget");
    (partition, recovery, obs.report())
}

/// ISSUE 8 acceptance: a chaos plan killing one PE mid-V-cycle, run
/// under the supervisor, completes without manual intervention and is
/// bit-identical to the fault-free run; the consensus verdict, recovery
/// count, and lost-cycle accounting all match the plan.
#[test]
fn supervised_run_survives_mid_cycle_kill_bit_identically() {
    let g = pgp_gen::rmat::rmat_web(9, 8, 5);
    let mut cfg = small_cfg(2, 17);
    cfg.vcycles = 2;
    let (reference, _) = partition_parallel(&g, 3, &cfg);

    // Kill rank 1 midway through cycle 1 — after rank 0 wrote cycle 0's
    // snapshot, so recovery resumes rather than restarts.
    let kill_phase = mid_last_cycle_phase(&g, &cfg, 3);
    let plan = FaultPlan::new(0).kill(1, kill_phase);
    let (partition, recovery, report) = supervised_under_plan(
        &g,
        3,
        &cfg,
        plan,
        Duration::from_secs(5),
        RecoveryLimits::default(),
    );

    assert_eq!(partition.assignment(), reference.assignment());
    assert_eq!(partition.edge_cut(&g), reference.edge_cut(&g));
    assert_eq!(recovery.attempts, 2, "one kill, one respawn: {recovery:?}");
    assert_eq!(recovery.recoveries, 1, "{recovery:?}");
    assert_eq!(recovery.retries, 0, "a kill is not transient: {recovery:?}");
    assert_eq!(recovery.dead_ranks, vec![1], "{recovery:?}");
    assert_eq!(
        recovery.lost_cycles, 1,
        "cycle 1 was destroyed and replayed once: {recovery:?}"
    );
    // The same counters must land in the published run report.
    assert_eq!(report.recovery, recovery);
}

/// Satellite (c): seeded chaos soak matrix — kill-at-phase × rank ×
/// (1 or 2 concurrent kills) on BA and SBM instances. Every cell must
/// complete bit-identically to the fault-free run, with recovery
/// counters consistent with the plan.
#[test]
fn soak_matrix_kills_across_graphs_ranks_and_phases() {
    let sbm = pgp_gen::sbm::sbm(1200, pgp_gen::sbm::SbmParams::default(), 3).0;
    let instances = [
        ("ba", pgp_gen::ba::barabasi_albert(1200, 3, 7)),
        ("sbm", sbm),
    ];
    let p = 4;
    for (name, g) in &instances {
        let cfg = small_cfg(4, 23);
        let (reference, _) = partition_parallel(g, p, &cfg);
        let total = probe_phases(g, &cfg, p);
        // One early kill, one late kill, a deterministic double kill at
        // phase 0 (both die before any cross-talk, one consensus round),
        // and a racy staggered double kill (either one or two recovery
        // rounds depending on who dies before the first verdict).
        let cells: Vec<(&str, Vec<(usize, u64)>)> = vec![
            ("early-r1", vec![(1, total / 4)]),
            ("late-r2", vec![(2, 3 * total / 4)]),
            ("double-at-start", vec![(0, 0), (2, 0)]),
            ("double-staggered", vec![(1, total / 3), (3, 2 * total / 3)]),
        ];
        for (cell, kills) in cells {
            let mut plan = FaultPlan::new(kills[0].1);
            for &(rank, phase) in &kills {
                plan = plan.kill(rank, phase);
            }
            let n_kills = plan.kills().len() as u64;
            let planned: Vec<usize> = kills.iter().map(|&(r, _)| r).collect();
            let (partition, recovery, report) = supervised_under_plan(
                g,
                p,
                &cfg,
                plan,
                Duration::from_secs(5),
                RecoveryLimits::default(),
            );
            assert_eq!(
                partition.assignment(),
                reference.assignment(),
                "{name}/{cell}: partition differs from fault-free"
            );
            assert_eq!(
                partition.edge_cut(g),
                reference.edge_cut(g),
                "{name}/{cell}"
            );
            assert!(
                recovery.recoveries >= 1 && recovery.recoveries <= n_kills,
                "{name}/{cell}: {n_kills} kill(s) need 1..={n_kills} recoveries: {recovery:?}"
            );
            assert_eq!(
                recovery.attempts,
                recovery.recoveries + recovery.retries + 1,
                "{name}/{cell}: {recovery:?}"
            );
            assert!(
                !recovery.dead_ranks.is_empty()
                    && recovery.dead_ranks.iter().all(|r| planned.contains(r)),
                "{name}/{cell}: verdict {:?} must be drawn from the plan {planned:?}",
                recovery.dead_ranks
            );
            assert!(
                recovery.lost_cycles <= recovery.recoveries * cfg.vcycles.max(1) as u64,
                "{name}/{cell}: lost work beyond what the kills destroyed: {recovery:?}"
            );
            assert_eq!(report.recovery, recovery, "{name}/{cell}");
        }
    }
}

/// A stall plan that pushes every rank-1 send past the watchdog deadline
/// is a *transient* fault: no rank self-reports dead, so consensus
/// retries in place with a widened deadline instead of respawning.
/// `max_recoveries: 0` makes any escalation a hard error — the run can
/// only complete via the retry path.
#[test]
fn transient_stall_is_retried_in_place_without_recovery() {
    let g = pgp_gen::rmat::rmat_web(7, 8, 5);
    let cfg = small_cfg(2, 29);
    let (reference, _) = partition_parallel(&g, 2, &cfg);

    // 15 ms stalls on every rank-1 send vs. a 4 ms base deadline: the
    // first attempt is guaranteed to time out; deadline widening (×2 per
    // retry) converges once the window covers a few chained stalls.
    let plan = FaultPlan::new(3).stall(1000, 15_000).only_src(1);
    let limits = RecoveryLimits {
        max_retries: 8,
        max_recoveries: 0,
        ..RecoveryLimits::default()
    };
    let (partition, recovery, report) =
        supervised_under_plan(&g, 2, &cfg, plan, Duration::from_millis(4), limits);

    assert_eq!(partition.assignment(), reference.assignment());
    assert_eq!(partition.edge_cut(&g), reference.edge_cut(&g));
    assert_eq!(
        recovery.recoveries, 0,
        "stalls must never escalate to a respawn: {recovery:?}"
    );
    assert!(
        recovery.retries >= 1,
        "the 4 ms deadline must have tripped at least once: {recovery:?}"
    );
    assert_eq!(recovery.attempts, recovery.retries + 1, "{recovery:?}");
    assert_eq!(recovery.dead_ranks, Vec::<usize>::new(), "{recovery:?}");
    // A timed-out attempt may already have entered a V-cycle; that work
    // counts as lost even though no PE died.
    assert!(recovery.lost_cycles <= recovery.retries, "{recovery:?}");
    assert_eq!(report.recovery, recovery);
}

/// Delay/reorder faults never trip the watchdog at all: the supervised
/// run completes first-attempt with every recovery counter at zero, and
/// the partition is still bit-identical (FIFO per `(src, tag)` plus
/// selective receives absorb the reordering).
#[test]
fn delay_reorder_keeps_all_recovery_counters_at_zero() {
    let g = pgp_gen::rmat::rmat_web(9, 8, 5);
    let cfg = small_cfg(4, 11);
    let (reference, _) = partition_parallel(&g, 4, &cfg);
    let plan = FaultPlan::new(42).delay(400, 5);
    let (partition, recovery, report) =
        supervised_under_plan(&g, 4, &cfg, plan, DEADLINE, RecoveryLimits::default());

    assert_eq!(partition.assignment(), reference.assignment());
    assert_eq!(
        recovery,
        pgp_obs::RecoveryReport {
            attempts: 1,
            ..Default::default()
        },
        "delays are invisible to the supervisor"
    );
    assert_eq!(report.recovery, recovery);
}

/// The checkpoint cadence decides the resume point: with a snapshot
/// every cycle, a kill in cycle 1 loses exactly that cycle; with
/// `every(2)` the cycle-0 boundary is skipped, so the same kill forces a
/// from-scratch restart and loses both cycles. Either way the result is
/// bit-identical — the cadence only trades checkpoint overhead against
/// repeated work.
#[test]
fn checkpoint_cadence_decides_how_much_work_a_kill_destroys() {
    let g = pgp_gen::rmat::rmat_web(9, 8, 5);
    let mut cfg = small_cfg(2, 17);
    cfg.vcycles = 2;
    // `checkpoint` is excluded from the config fingerprint, so one
    // fault-free reference serves both cadences.
    let (reference, _) = partition_parallel(&g, 3, &cfg);

    for (every, expect_lost) in [(1usize, 1u64), (2, 2)] {
        let mut cadenced = cfg.clone();
        cadenced.checkpoint = CheckpointPolicy::every(every);
        let kill_phase = mid_last_cycle_phase(&g, &cadenced, 3);
        let plan = FaultPlan::new(0).kill(1, kill_phase);
        let (partition, recovery, _) = supervised_under_plan(
            &g,
            3,
            &cadenced,
            plan,
            Duration::from_secs(5),
            RecoveryLimits::default(),
        );
        assert_eq!(
            partition.assignment(),
            reference.assignment(),
            "every({every}): cadence must not change the partition"
        );
        assert_eq!(recovery.recoveries, 1, "every({every}): {recovery:?}");
        assert_eq!(
            recovery.lost_cycles,
            expect_lost,
            "every({every}): cycle-0 snapshot {} → the kill in cycle 1 \
             should cost {expect_lost} cycle(s): {recovery:?}",
            if every == 1 { "taken" } else { "skipped" }
        );
    }
}
