//! End-to-end determinism of `ParhipConfig::threads_per_pe` (DESIGN.md
//! §13): the full pipeline must produce the identical partition for every
//! worker count ≥ 2 at a fixed `(seed, p)`, each mode must be stable
//! across reruns, and both modes must yield valid partitions. The
//! single-threaded and chunked modes are distinct deterministic paths —
//! the config fingerprint separates them (see
//! `ParhipConfig::fingerprint`), so no cross-mode equality is promised.

use parhip::{partition_parallel, GraphClass, ParhipConfig};
use pgp_graph::Partition;

fn partition_with_threads(threads: usize, seed: u64) -> Partition {
    let g = pgp_gen::ba::barabasi_albert(6_000, 3, seed);
    let mut cfg = ParhipConfig::fast(4, GraphClass::Social, seed);
    cfg.deterministic = true;
    cfg.threads_per_pe = threads;
    let (partition, _) = partition_parallel(&g, 2, &cfg);
    partition
}

#[test]
fn pipeline_is_identical_across_worker_counts() {
    let base = partition_with_threads(2, 5);
    assert_eq!(base, partition_with_threads(4, 5), "T=2 vs T=4");
    assert_eq!(base, partition_with_threads(2, 5), "T=2 rerun");
}

#[test]
fn both_modes_produce_valid_partitions() {
    for threads in [1, 2] {
        let g = pgp_gen::ba::barabasi_albert(6_000, 3, 9);
        let mut cfg = ParhipConfig::fast(4, GraphClass::Social, 9);
        cfg.deterministic = true;
        cfg.threads_per_pe = threads;
        let (partition, _) = partition_parallel(&g, 2, &cfg);
        partition
            .validate(&g, cfg.eps)
            .unwrap_or_else(|e| panic!("threads_per_pe={threads}: {e}"));
    }
}

#[test]
fn single_thread_mode_matches_its_own_rerun() {
    assert_eq!(partition_with_threads(1, 7), partition_with_threads(1, 7));
}
