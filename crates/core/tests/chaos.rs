//! End-to-end chaos tests (ISSUE 3 acceptance criteria): the full ParHIP
//! pipeline under injected faults.
//!
//! * Delay/reorder faults must be *invisible* — the partition is
//!   bit-identical to a fault-free run, because the comm substrate keeps
//!   FIFO per `(src, tag)` and every receive is selective.
//! * A PE killed mid-run must surface as a structured
//!   [`CommError::PeerDead`] / [`CommError::Timeout`] on every PE within
//!   the watchdog deadline — never a hang.
//! * A run killed after a V-cycle boundary must be resumable from its
//!   checkpoint to the exact fault-free result.

use parhip::{
    partition_parallel, partition_parallel_resume, CheckpointStore, GraphClass, ParhipConfig,
};
use pgp_chaos::{chaos_run, FaultPlan};
use pgp_dmp::collectives::allgatherv;
use pgp_dmp::{CommError, DistGraph};
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(20);

fn small_cfg(k: usize, seed: u64) -> ParhipConfig {
    let mut cfg = ParhipConfig::fast(k, GraphClass::Social, seed);
    cfg.coarsest_nodes_per_block = 50;
    cfg.deterministic = true;
    cfg
}

#[test]
fn rmat_partition_is_bit_identical_under_delay_reorder() {
    let g = pgp_gen::rmat::rmat_web(9, 8, 5);
    let cfg = small_cfg(4, 11);
    let (reference, _) = partition_parallel(&g, 4, &cfg);
    for plan_seed in [1u64, 42, 777] {
        let plan = FaultPlan::new(plan_seed).delay(400, 5);
        let results = chaos_run(4, plan, DEADLINE, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let (local, _) = parhip::parhip_distributed(comm, &dg, &cfg);
            allgatherv(comm, local)
        });
        for r in results {
            let assignment = r.expect("delay faults must not break the run");
            assert_eq!(
                assignment.as_slice(),
                reference.assignment(),
                "plan seed {plan_seed} changed the partition"
            );
        }
    }
}

/// The per-PE phase counts of a fault-free checkpointed run: one entry per
/// `vcycles` setting probed. Phases (tag blocks) are deterministic for a
/// deterministic config, so a clean probe tells us exactly where a later
/// cycle begins — which is where the kill goes.
fn probe_phases(g: &pgp_graph::CsrGraph, cfg: &ParhipConfig, p: usize) -> u64 {
    let store = CheckpointStore::new();
    let counts = pgp_dmp::run(p, |comm| {
        let dg = DistGraph::from_global(comm, g);
        let _ = parhip::parhip_distributed_checkpointed(comm, &dg, cfg, None, &store);
        comm.phases_started()
    });
    counts.into_iter().max().expect("at least one PE")
}

#[test]
fn killed_pe_surfaces_structured_error_not_a_hang() {
    let g = pgp_gen::rmat::rmat_web(9, 8, 5);
    let cfg = small_cfg(2, 13);
    // Kill rank 1 about a third of the way through the run — inside the
    // first cycle's coarsening.
    let total = probe_phases(&g, &cfg, 3);
    let plan = FaultPlan::new(0).kill(1, total / 3);
    let t0 = Instant::now();
    let results = chaos_run(3, plan, Duration::from_secs(5), |comm| {
        let dg = DistGraph::from_global(comm, &g);
        let (local, _) = parhip::parhip_distributed(comm, &dg, &cfg);
        allgatherv(comm, local)
    });
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(60),
        "watchdog must bound the failure, took {elapsed:?}"
    );
    for (rank, r) in results.into_iter().enumerate() {
        match r {
            Err(CommError::PeerDead { dead, .. }) => {
                assert_eq!(dead, 1, "PE {rank} blamed the wrong peer")
            }
            Err(CommError::Timeout { .. }) => {}
            Ok(_) => panic!("PE {rank} claims success despite a dead peer"),
        }
    }
}

#[test]
fn checkpoint_resume_reproduces_fault_free_result_after_kill() {
    let g = pgp_gen::rmat::rmat_web(9, 8, 5);
    let mut cfg = small_cfg(2, 17);
    cfg.vcycles = 2;
    let (reference, _) = partition_parallel(&g, 3, &cfg);

    // Phase counts of cycle 0 alone and of the full two-cycle run; the
    // kill lands midway through cycle 1, well past rank 0's cycle-0
    // checkpoint write.
    let mut one = cfg.clone();
    one.vcycles = 1;
    let phases_c0 = probe_phases(&g, &one, 3);
    let total = probe_phases(&g, &cfg, 3);
    assert!(total > phases_c0 + 4, "cycle 1 too short to kill inside");
    let kill_phase = phases_c0 + (total - phases_c0) / 2;

    let store = CheckpointStore::new();
    let plan = FaultPlan::new(0).kill(1, kill_phase);
    let results = chaos_run(3, plan, Duration::from_secs(5), |comm| {
        let dg = DistGraph::from_global(comm, &g);
        let (local, _) = parhip::parhip_distributed_checkpointed(comm, &dg, &cfg, None, &store);
        allgatherv(comm, local)
    });
    assert!(
        results.iter().all(|r| r.is_err()),
        "the kill must fail the whole group"
    );
    assert_eq!(
        store.latest_cycle(),
        Some(0),
        "cycle 0's snapshot must have been written before the kill"
    );

    // Restart replays cycle 1 from the snapshot — bit-identical to the
    // uninterrupted run.
    let (resumed, _) = partition_parallel_resume(&g, 3, &cfg, &store);
    assert_eq!(resumed.assignment(), reference.assignment());
    assert_eq!(resumed.edge_cut(&g), reference.edge_cut(&g));
}
