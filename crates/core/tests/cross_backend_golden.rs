//! Cross-backend golden equivalence (DESIGN.md §15): the full partition
//! pipeline must be *byte-identical* between the thread-mailbox and the
//! Unix-socket comm backends — same assignment, same cut and balance,
//! same message and collective counters — on seeded social-network
//! instances (BA and SBM). Only payload *bytes* may differ (the socket
//! backend counts framed wire bytes, threads count in-memory size), and
//! the report's `backend` field naturally names each transport.

use parhip::{partition_parallel_observed, GraphClass, ParhipConfig};
use pgp_dmp::BackendKind;
use pgp_graph::{CsrGraph, Partition};
use pgp_obs::RunReport;
use std::collections::BTreeMap;

fn run_backend(
    g: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
    backend: BackendKind,
) -> (Partition, RunReport) {
    let mut cfg = cfg.clone();
    cfg.backend = backend;
    let (partition, _, report) = partition_parallel_observed(g, p, &cfg);
    (partition, report)
}

/// Per-tag *message* counts (bytes excluded — the backends legitimately
/// count payload size differently; message counts must match exactly).
fn msgs_per_tag(report: &RunReport) -> BTreeMap<u64, u64> {
    report
        .total_sent_per_tag()
        .into_iter()
        .map(|(tag, c)| (tag, c.msgs))
        .collect()
}

fn assert_golden_equivalence(name: &str, g: &CsrGraph, p: usize, cfg: &ParhipConfig) {
    let (part_t, rep_t) = run_backend(g, p, cfg, BackendKind::Threads);
    let (part_s, rep_s) = run_backend(g, p, cfg, BackendKind::Sockets);

    // The partition itself: identical block for every node.
    assert_eq!(
        part_t, part_s,
        "{name}: threads and sockets must produce the identical partition"
    );
    part_t
        .validate(g, cfg.eps)
        .unwrap_or_else(|e| panic!("{name}: invalid partition: {e}"));

    // Quality metrics as recorded by the observation layer.
    assert_eq!(
        rep_t.aggregate.final_cut, rep_s.aggregate.final_cut,
        "{name}: final cut must match"
    );
    assert_eq!(
        rep_t.aggregate.max_imbalance, rep_s.aggregate.max_imbalance,
        "{name}: max imbalance must match"
    );
    assert_eq!(part_t.edge_cut(g), part_s.edge_cut(g), "{name}: edge cut");

    // The communication structure: same messages on the same tags, same
    // collective count. (Bytes differ by design: wire framing vs
    // in-memory size.)
    assert_eq!(
        rep_t.aggregate.messages, rep_s.aggregate.messages,
        "{name}: total message count must match"
    );
    assert_eq!(
        rep_t.aggregate.collective_calls, rep_s.aggregate.collective_calls,
        "{name}: collective call count must match"
    );
    assert_eq!(
        msgs_per_tag(&rep_t),
        msgs_per_tag(&rep_s),
        "{name}: per-tag message counts must match"
    );

    // The one field allowed to differ names each transport.
    assert_eq!(rep_t.backend, "threads");
    assert_eq!(rep_s.backend, "sockets");
}

#[test]
fn ba_instance_is_backend_invariant() {
    let g = pgp_gen::ba::barabasi_albert(5_000, 3, 42);
    let mut cfg = ParhipConfig::fast(4, GraphClass::Social, 42);
    cfg.deterministic = true;
    assert_golden_equivalence("ba(5000, 3, seed 42)", &g, 3, &cfg);
}

#[test]
fn sbm_instance_is_backend_invariant() {
    let (g, _truth) = pgp_gen::sbm::sbm(4_000, pgp_gen::sbm::SbmParams::default(), 7);
    let g = pgp_gen::ensure_connected(g);
    let mut cfg = ParhipConfig::fast(4, GraphClass::Social, 7);
    cfg.deterministic = true;
    assert_golden_equivalence("sbm(4000, seed 7)", &g, 3, &cfg);
}

#[test]
fn golden_holds_with_intra_pe_workers() {
    // The hybrid shared-memory × message-passing SCLP (threads_per_pe ≥ 2)
    // must stay backend-invariant too: worker pools change the compute
    // path, never the message protocol.
    let g = pgp_gen::ba::barabasi_albert(4_000, 3, 11);
    let mut cfg = ParhipConfig::fast(4, GraphClass::Social, 11);
    cfg.deterministic = true;
    cfg.threads_per_pe = 2;
    assert_golden_equivalence("ba(4000, 3, seed 11) T=2", &g, 2, &cfg);
}
