//! Real-process SIGKILL recovery e2e (DESIGN.md §15).
//!
//! The chaos suite simulates PE deaths inside one process; this test makes
//! the death *real*: each PE is an OS process over the multi-process
//! socket mesh, and on the first attempt rank 1 delivers `SIGKILL` to
//! itself mid-run — no result file, no socket goodbye, just an EOF on
//! every peer link. The process supervisor must diagnose the death from
//! the missing result file, respawn the group with rank 1's kill disarmed
//! (via `WorkerCtx::attempt`), and converge to the *bit-identical*
//! partition a fault-free thread-backend run produces.

use parhip::{parhip_distributed, partition_parallel, GraphClass, ParhipConfig};
use pgp_dmp::collectives::{allgatherv, barrier};
use pgp_dmp::{
    maybe_run_worker, run_multiprocess_supervised, Comm, ProcessConfig, ProcessSupervisor, Wire,
    WorkerCtx,
};
use pgp_graph::Node;
use std::time::Duration;

const P: usize = 3;
const N: usize = 2_000;
const K: usize = 4;
const SEED: u64 = 31;

fn test_config() -> ParhipConfig {
    let mut cfg = ParhipConfig::fast(K, GraphClass::Social, SEED);
    cfg.deterministic = true;
    cfg
}

/// The worker entry: build the shared seeded instance, partition it over
/// the socket-mesh communicator, return the full assignment. On the first
/// attempt rank 1 SIGKILLs its own process after the mesh is live — an
/// unclean OS-level death its peers discover as EOF.
fn partition_worker(comm: &Comm, ctx: &WorkerCtx, args: &[u8]) -> Vec<u8> {
    let seed = u64::decode_all(args).expect("worker args seed");
    let g = pgp_gen::ba::barabasi_albert(N, 3, seed);
    let cfg = test_config();
    let dg = pgp_dmp::DistGraph::from_global(comm, &g);
    // All links are live and every peer is past setup before the kill, so
    // the EOF lands mid-partition, not during mesh construction.
    barrier(comm);
    if ctx.rank == 1 && ctx.attempt == 0 {
        let pid = std::process::id();
        // `.status()` blocks until `sh` exits — which it only does after
        // the kernel has already delivered our SIGKILL, so this call
        // never actually returns.
        let _ = std::process::Command::new("sh")
            .arg("-c")
            .arg(format!("kill -9 {pid}"))
            .status();
        unreachable!("SIGKILL is not catchable");
    }
    let (local, _stats) = parhip_distributed(comm, &dg, &cfg);
    let full: Vec<Node> = allgatherv(comm, local);
    full.encode_to_vec()
}

#[test]
fn sigkill_mid_run_recovers_to_fault_free_partition() {
    // In a spawned worker process this call never returns; in the parent
    // it is a no-op.
    maybe_run_worker(&[("partition", partition_worker)]);

    let cfg = ProcessConfig {
        entry: "partition".to_string(),
        args: SEED.encode_to_vec(),
        deadline: Some(Duration::from_secs(60)),
        extra_args: vec![
            "--exact".to_string(),
            "sigkill_mid_run_recovers_to_fault_free_partition".to_string(),
            "--nocapture".to_string(),
        ],
    };
    let (values, report) = run_multiprocess_supervised(P, &cfg, &ProcessSupervisor::default())
        .expect("supervisor must recover from one SIGKILL");

    assert_eq!(
        report.recoveries, 1,
        "exactly one full recovery: {report:?}"
    );
    assert_eq!(
        report.dead_ranks,
        vec![1],
        "consensus names the killed rank"
    );
    assert!(
        report.attempts >= 2,
        "the killed attempt plus the clean one"
    );

    // Every rank returns the same full assignment...
    let assignment = Vec::<Node>::decode_all(&values[0]).expect("worker result decodes");
    for (rank, v) in values.iter().enumerate() {
        assert_eq!(
            v, &values[0],
            "rank {rank} must agree on the global assignment"
        );
    }

    // ...and it is bit-identical to the fault-free thread-backend run.
    let g = pgp_gen::ba::barabasi_albert(N, 3, SEED);
    let (fault_free, _) = partition_parallel(&g, P, &test_config());
    let from_processes = pgp_graph::Partition::from_assignment(&g, K, assignment);
    assert_eq!(
        from_processes, fault_free,
        "recovered multi-process partition must match the fault-free one"
    );
    from_processes
        .validate(&g, test_config().eps)
        .expect("recovered partition is valid");
}
