//! Glue for the `validate` feature: runs the `pgp-check` invariant
//! validators at phase boundaries and panics with the merged, PE-tagged
//! report on violation.
//!
//! Every function here is **collective** — all PEs reach the same call
//! sites because the pipeline is SPMD, and `pgp-check` allgathers the
//! verdict so the panic (or the pass) is symmetric across the group.
//! With the feature off these calls compile away entirely; they are also
//! skipped in release builds unless `debug_assertions` are on, so
//! benchmark binaries keep their timings.

use pgp_dmp::{Comm, DistGraph};
use pgp_graph::Node;

/// Whether validation should actually run (feature is on *and* this is a
/// debug build).
#[inline]
fn enabled() -> bool {
    cfg!(debug_assertions)
}

/// Panics if `g` violates any [`DistGraph`] structural invariant.
/// `context` names the phase boundary for the report.
pub fn assert_graph_valid(comm: &Comm, g: &DistGraph, context: &str) {
    if !enabled() {
        return;
    }
    if let Err(errs) = pgp_check::validate_dist_graph(comm, g) {
        panic!("invariant violation ({context}):\n{}", errs.join("\n"));
    }
}

/// Panics if `blocks` is not a well-formed `k`-way assignment over `g`
/// (range, ghost agreement, weight recount).
pub fn assert_partition_valid(
    comm: &Comm,
    g: &DistGraph,
    blocks: &[Node],
    k: usize,
    context: &str,
) {
    if !enabled() {
        return;
    }
    if let Err(errs) = pgp_check::validate_dist_partition(comm, g, blocks, k, None) {
        panic!(
            "partition invariant violation ({context}):\n{}",
            errs.join("\n")
        );
    }
}

/// Panics if a freshly assembled V-cycle checkpoint is not internally
/// consistent (coverage, block ranges, map targets — see
/// `pgp_check::validate_checkpoint`). Non-collective in its checks (the
/// snapshot is replicated), but called at a collective site so the panic
/// is symmetric.
pub fn assert_checkpoint_valid(
    comm: &Comm,
    cp: &crate::partitioner::VCycleCheckpoint,
    context: &str,
) {
    if !enabled() {
        return;
    }
    let _ = comm;
    if let Err(errs) = pgp_check::validate_checkpoint(
        cp.k,
        &cp.assignment,
        &cp.coarsest,
        &cp.coarsest_assignment,
        &cp.fine_to_coarsest,
    ) {
        panic!(
            "checkpoint invariant violation ({context}):\n{}",
            errs.join("\n")
        );
    }
}

/// Panics if the failure-consensus verdict or resume point a respawned
/// group is about to act on is malformed or divergent across PEs
/// (`pgp_check::validate_recovery`). Collective: every PE of a recovery
/// attempt reaches this at the same point.
pub fn assert_recovery_agreed(
    comm: &Comm,
    dead_ranks: &[usize],
    resume_cycle: Option<usize>,
    context: &str,
) {
    if !enabled() {
        return;
    }
    if let Err(errs) = pgp_check::validate_recovery(comm, dead_ranks, resume_cycle) {
        panic!(
            "recovery consensus violation ({context}):\n{}",
            errs.join("\n")
        );
    }
}

/// Panics if the fine→coarse `mapping` is not surjective and
/// weight-preserving onto `coarse`.
pub fn assert_contraction_valid(
    comm: &Comm,
    fine: &DistGraph,
    coarse: &DistGraph,
    mapping: &[Node],
) {
    if !enabled() {
        return;
    }
    if let Err(errs) = pgp_check::validate_contraction(comm, fine, coarse, mapping) {
        panic!("contraction invariant violation:\n{}", errs.join("\n"));
    }
}
