//! The overall parallel system (Section IV-E, Figure 4).
//!
//! Per V-cycle: parallel cluster coarsening until `10 000·k`-scaled nodes
//! remain → the distributed coarsest graph is collected on every PE →
//! KaFFPaE partitions it (seeded with the current partition after the
//! first cycle) → the best solution is broadcast and carried up by the
//! parallel uncoarsening, with `r` iterations of parallel SCLP refinement
//! per level.

use crate::coarsen::{parallel_coarsen_with_scratch, ParHierarchy};
use crate::config::ParhipConfig;
use crate::contract::parallel_project_blocks;
use pgp_dmp::collectives::allgatherv;
use pgp_dmp::{Comm, DistGraph};
use pgp_evo::{Budget, EvoConfig};
use pgp_graph::ids;
use pgp_graph::{lmax, CsrGraph, Node, Partition};
use pgp_lp::par::{parallel_sclp_refine_with_scratch, SclpScratch};
use std::time::Instant;

/// Per-phase timings and structural statistics of one run (as reported by
/// rank 0; all PEs see the same structure).
#[derive(Clone, Debug, Default)]
pub struct ParhipStats {
    /// Seconds spent in parallel coarsening (all cycles).
    pub coarsening_s: f64,
    /// Seconds spent in the evolutionary initial partitioning.
    pub initial_s: f64,
    /// Seconds spent in uncoarsening + refinement.
    pub uncoarsening_s: f64,
    /// Hierarchy depth of the first cycle.
    pub levels: usize,
    /// Global node count of the first cycle's coarsest graph.
    pub coarsest_n: u64,
    /// Global edge count of the first cycle's coarsest graph.
    pub coarsest_m: u64,
    /// Final edge cut.
    pub cut: u64,
}

/// Runs the full system on an already-distributed graph; returns this PE's
/// local block assignment (owned nodes) plus stats.
pub fn parhip_distributed(
    comm: &Comm,
    graph: &DistGraph,
    cfg: &ParhipConfig,
) -> (Vec<Node>, ParhipStats) {
    parhip_distributed_with_input(comm, graph, cfg, None)
}

/// As [`parhip_distributed`], but optionally starting from a *prepartition*
/// (paper §VI: "this prepartition could be directly fed into the first
/// V-cycle and consecutively be improved" — e.g. a geographic or
/// hash-based initialization from a cloud toolkit). `input` covers owned +
/// ghost nodes; the first cycle then behaves like a later V-cycle: cut
/// edges of the input survive coarsening and the input seeds the
/// evolutionary population, so the result is never worse than the input.
pub fn parhip_distributed_with_input(
    comm: &Comm,
    graph: &DistGraph,
    cfg: &ParhipConfig,
    input: Option<&[Node]>,
) -> (Vec<Node>, ParhipStats) {
    let mut stats = ParhipStats::default();
    let n_all = graph.n_local() + graph.n_ghost();
    // blocks: owned + ghost, maintained across cycles.
    let mut blocks: Option<Vec<Node>> = input.map(|b| {
        assert_eq!(
            b.len(),
            n_all,
            "prepartition must cover owned + ghost nodes"
        );
        b.to_vec()
    });
    #[cfg(feature = "validate")]
    crate::validate::assert_graph_valid(comm, graph, "parhip input graph");

    // One SCLP scratch for the whole run: the finest graph recurs every
    // cycle, so its degree order is computed once and reused.
    let mut scratch = SclpScratch::new();

    for cycle in 0..cfg.vcycles.max(1) {
        // ---- Parallel coarsening -------------------------------------
        let t0 = Instant::now();
        let hierarchy = parallel_coarsen_with_scratch(
            comm,
            graph.clone(),
            cfg,
            cycle,
            blocks.as_deref(),
            &mut scratch,
        );
        stats.coarsening_s += t0.elapsed().as_secs_f64();
        if cycle == 0 {
            stats.levels = hierarchy.depth();
            stats.coarsest_n = hierarchy.coarsest().n_global();
            stats.coarsest_m = hierarchy.coarsest().m_global();
        }

        // ---- Initial partitioning on the replicated coarsest graph ----
        let t1 = Instant::now();
        let coarsest = hierarchy.coarsest();
        let coarsest_global: CsrGraph = coarsest.gather_global(comm);
        let seed_partition: Option<Partition> = blocks.as_ref().map(|b| {
            // Project the current partition to the coarsest level: walk the
            // mapping chain for the local part, then allgather.
            let coarse_local = project_down(comm, &hierarchy, b);
            let all = allgatherv(comm, coarse_local);
            Partition::from_assignment(&coarsest_global, cfg.k, all)
        });
        let evo_cfg = EvoConfig {
            k: cfg.k,
            eps: cfg.eps,
            population_size: cfg.population_size,
            budget: Budget::Operations(cfg.evo_operations),
            mutation_rate: 0.1,
            rumor_fanout: if cfg.deterministic { 0 } else { 1 },
            rumor_interval: 2,
            seed: cfg.seed.wrapping_add(ids::count_global(cycle) * 0xE70),
            objective: pgp_evo::Objective::EdgeCut,
        };
        let coarse_partition =
            pgp_evo::kaffpae(comm, &coarsest_global, &evo_cfg, seed_partition.as_ref());
        stats.initial_s += t1.elapsed().as_secs_f64();

        // ---- Parallel uncoarsening + refinement ------------------------
        let t2 = Instant::now();
        let lmax_v = lmax(graph.total_node_weight(), cfg.k, cfg.eps);
        // Blocks of this PE's *owned coarsest* nodes from the replicated
        // solution.
        let first = coarsest.first_global();
        let mut level_blocks: Vec<Node> = (0..coarsest.n_local())
            .map(|l| coarse_partition.block(ids::global_node(first + ids::count_global(l))))
            .collect();
        // Walk levels coarse→fine.
        for li in (0..hierarchy.depth() - 1).rev() {
            let fine = &hierarchy.levels[li].graph;
            let coarse = &hierarchy.levels[li + 1].graph;
            let mapping = &hierarchy.levels[li].mapping;
            let mut fine_blocks = parallel_project_blocks(comm, coarse, mapping, &level_blocks);
            parallel_sclp_refine_with_scratch(
                comm,
                fine,
                cfg.k,
                lmax_v,
                cfg.refine_iterations,
                cfg.seed.wrapping_add(ids::count_global(cycle * 1000 + li)),
                &mut fine_blocks,
                &mut scratch,
            );
            level_blocks = fine_blocks[..fine.n_local()].to_vec();
        }
        // When the hierarchy is a single level, refine directly on it.
        if hierarchy.depth() == 1 {
            let fine = &hierarchy.levels[0].graph;
            let mut fb: Vec<Node> = vec![0; fine.n_local() + fine.n_ghost()];
            fb[..fine.n_local()].copy_from_slice(&level_blocks);
            // Ghost blocks from the replicated coarse partition (coarsest ==
            // finest here).
            #[allow(clippy::needless_range_loop)] // l is a local node id
            for l in fine.n_local()..fine.n_local() + fine.n_ghost() {
                fb[l] = coarse_partition.block(fine.local_to_global(ids::node_of_index(l)));
            }
            parallel_sclp_refine_with_scratch(
                comm,
                fine,
                cfg.k,
                lmax_v,
                cfg.refine_iterations,
                cfg.seed.wrapping_add(ids::count_global(cycle) * 7919),
                &mut fb,
                &mut scratch,
            );
            level_blocks = fb[..fine.n_local()].to_vec();
        }
        stats.uncoarsening_s += t2.elapsed().as_secs_f64();

        // Refresh ghost blocks for the next cycle's constraint.
        let mut full: Vec<Node> = vec![0; n_all];
        full[..graph.n_local()].copy_from_slice(&level_blocks);
        let ghost_ids: Vec<Node> = (graph.n_local()..n_all)
            .map(|l| graph.local_to_global(ids::node_of_index(l)))
            .collect();
        let ghost_blocks =
            crate::contract::query_owner_values(comm, graph.dist(), &ghost_ids, |idx| {
                level_blocks[idx]
            });
        full[graph.n_local()..].copy_from_slice(&ghost_blocks);
        #[cfg(feature = "validate")]
        crate::validate::assert_partition_valid(comm, graph, &full, cfg.k, "end of V-cycle");
        blocks = Some(full);
    }

    let final_blocks = blocks.expect("at least one cycle ran");
    (final_blocks[..graph.n_local()].to_vec(), stats)
}

/// Projects the current fine blocks (owned part) down the hierarchy to the
/// coarsest level, returning the blocks of this PE's owned coarsest nodes.
fn project_down(comm: &Comm, hierarchy: &ParHierarchy, fine_blocks: &[Node]) -> Vec<Node> {
    // At each step: owned fine nodes vote (coarse_id, block) to the coarse
    // owner; all members agree because the coarsening was constrained.
    let mut cur: Vec<Node> = fine_blocks[..hierarchy.levels[0].graph.n_local()].to_vec();
    for li in 0..hierarchy.depth() - 1 {
        let coarse = &hierarchy.levels[li + 1].graph;
        let mapping = &hierarchy.levels[li].mapping;
        let dist = coarse.dist();
        let mut votes: Vec<Vec<(Node, Node)>> = vec![Vec::new(); comm.size()];
        for (v, &b) in cur.iter().enumerate() {
            let cid = mapping[v];
            votes[dist.owner(cid)].push((cid, b));
        }
        let first = dist.first(comm.rank());
        let mut next: Vec<Node> = vec![0; coarse.n_local()];
        for (cid, b) in pgp_dmp::collectives::alltoallv(comm, votes)
            .into_iter()
            .flatten()
        {
            next[ids::global_index(ids::node_global(cid) - first)] = b;
        }
        cur = next;
    }
    cur
}

/// The top-level convenience API: partitions `graph` into `cfg.k` blocks
/// using `p` PEs, returning the assembled global partition (identical to
/// what rank 0 holds) and the run's statistics.
///
/// ```no_run
/// use parhip::{partition_parallel, ParhipConfig, GraphClass};
/// let g = pgp_gen::rmat::rmat_web(12, 8, 1);
/// let (p, stats) = partition_parallel(&g, 8, &ParhipConfig::fast(16, GraphClass::Social, 42));
/// assert!(p.is_balanced(&g, 0.05));
/// println!("cut {} in {} levels", stats.cut, stats.levels);
/// ```
pub fn partition_parallel(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
) -> (Partition, ParhipStats) {
    partition_parallel_impl(graph, p, cfg, None)
}

/// As [`partition_parallel`], improving a given *prepartition* (§VI): the
/// input's cut edges survive coarsening and the input seeds the coarsest-
/// level population, so the result is at least as good a starting point as
/// the input itself.
pub fn partition_parallel_with_input(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
    input: &Partition,
) -> (Partition, ParhipStats) {
    assert_eq!(input.k(), cfg.k, "prepartition block count mismatch");
    partition_parallel_impl(graph, p, cfg, Some(input))
}

fn partition_parallel_impl(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
    input: Option<&Partition>,
) -> (Partition, ParhipStats) {
    let results = pgp_dmp::run(p, |comm| {
        let dg = DistGraph::from_global(comm, graph);
        let local_input: Option<Vec<Node>> = input.map(|ip| {
            (0..ids::node_of_index(dg.n_local() + dg.n_ghost()))
                .map(|l| ip.block(dg.local_to_global(l)))
                .collect()
        });
        let (local, stats) = parhip_distributed_with_input(comm, &dg, cfg, local_input.as_deref());
        let all = allgatherv(comm, local);
        (all, stats)
    });
    let (assignment, mut stats) = results.into_iter().next().expect("at least one PE");
    let partition = Partition::from_assignment(graph, cfg.k, assignment);
    stats.cut = partition.edge_cut(graph);
    (partition, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphClass;

    fn small_cfg(k: usize, class: GraphClass, seed: u64) -> ParhipConfig {
        let mut cfg = ParhipConfig::fast(k, class, seed);
        cfg.coarsest_nodes_per_block = 50;
        cfg.deterministic = true;
        cfg
    }

    #[test]
    fn partitions_social_standin_validly() {
        let (g, _) = pgp_gen::sbm::sbm(1200, pgp_gen::sbm::SbmParams::default(), 4);
        let (p, stats) = partition_parallel(&g, 4, &small_cfg(4, GraphClass::Social, 1));
        p.validate(&g, 0.03).unwrap();
        assert!(stats.levels >= 2);
        assert!(stats.cut > 0);
        // Much better than a random balanced partition.
        let rand_cut =
            Partition::from_assignment(&g, 4, (0..g.n() as u32).map(|i| i % 4).collect())
                .edge_cut(&g);
        assert!(
            stats.cut < rand_cut / 2,
            "cut {} vs random {rand_cut}",
            stats.cut
        );
    }

    #[test]
    fn partitions_mesh_validly() {
        let g = pgp_gen::mesh::grid2d(30, 30);
        let (p, _) = partition_parallel(&g, 3, &small_cfg(3, GraphClass::Mesh, 7));
        p.validate(&g, 0.03).unwrap();
        // 3-way cut of a 30x30 grid: decent quality sanity bound.
        assert!(p.edge_cut(&g) <= 120, "cut {}", p.edge_cut(&g));
    }

    #[test]
    fn single_pe_works() {
        let (g, _) = pgp_gen::sbm::sbm(400, pgp_gen::sbm::SbmParams::default(), 9);
        let (p, _) = partition_parallel(&g, 1, &small_cfg(2, GraphClass::Social, 3));
        p.validate(&g, 0.03).unwrap();
    }

    #[test]
    fn deterministic_given_seed_and_p() {
        let (g, _) = pgp_gen::sbm::sbm(500, pgp_gen::sbm::SbmParams::default(), 11);
        let cfg = small_cfg(2, GraphClass::Social, 21);
        let (a, _) = partition_parallel(&g, 3, &cfg);
        let (b, _) = partition_parallel(&g, 3, &cfg);
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn more_vcycles_do_not_hurt() {
        let (g, _) = pgp_gen::sbm::sbm(700, pgp_gen::sbm::SbmParams::default(), 13);
        let mut one = small_cfg(4, GraphClass::Social, 5);
        one.vcycles = 1;
        let mut three = small_cfg(4, GraphClass::Social, 5);
        three.vcycles = 3;
        let (p1, _) = partition_parallel(&g, 2, &one);
        let (p3, _) = partition_parallel(&g, 2, &three);
        assert!(
            p3.edge_cut(&g) <= p1.edge_cut(&g),
            "3 cycles {} vs 1 cycle {}",
            p3.edge_cut(&g),
            p1.edge_cut(&g)
        );
    }

    #[test]
    fn prepartition_is_improved_never_worsened() {
        let (g, _) = pgp_gen::sbm::sbm(800, pgp_gen::sbm::SbmParams::default(), 23);
        let cfg = small_cfg(4, GraphClass::Social, 5);
        // A hash prepartition (balanced, terrible cut) fed into the first
        // V-cycle, as §VI suggests for cloud toolkits.
        let hash: Vec<Node> = (0..g.n() as Node)
            .map(|v| (pgp_dmp::mix_seed(7, v as u64) % 4) as Node)
            .collect();
        let hash_cut = Partition::from_assignment(&g, 4, hash.clone()).edge_cut(&g);
        let results = pgp_dmp::run(2, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let input: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                .map(|l| hash[dg.local_to_global(l) as usize])
                .collect();
            let (local, _) = super::parhip_distributed_with_input(comm, &dg, &cfg, Some(&input));
            allgatherv(comm, local)
        });
        let p = Partition::from_assignment(&g, 4, results.into_iter().next().unwrap());
        assert!(
            p.edge_cut(&g) < hash_cut / 2,
            "prepartition {hash_cut} should be drastically improved, got {}",
            p.edge_cut(&g)
        );
        p.validate(&g, 0.03).unwrap();
    }

    /// End-to-end with the invariant wall up: every contraction, the input
    /// graph, and every cycle's final partition are validated collectively.
    #[test]
    #[cfg(feature = "validate")]
    fn validated_rmat_partition_end_to_end() {
        let g = pgp_gen::rmat::rmat_web(10, 8, 5);
        let (p, stats) = partition_parallel(&g, 4, &small_cfg(4, GraphClass::Social, 9));
        p.validate(&g, 0.03).unwrap();
        assert!(stats.cut > 0);
    }

    #[test]
    fn stats_are_populated() {
        let (g, _) = pgp_gen::sbm::sbm(600, pgp_gen::sbm::SbmParams::default(), 2);
        let (_, stats) = partition_parallel(&g, 2, &small_cfg(2, GraphClass::Social, 17));
        assert!(stats.coarsening_s >= 0.0);
        assert!(stats.coarsest_n > 0);
        assert!(stats.levels >= 1);
    }
}
