//! The overall parallel system (Section IV-E, Figure 4).
//!
//! Per V-cycle: parallel cluster coarsening until `10 000·k`-scaled nodes
//! remain → the distributed coarsest graph is collected on every PE →
//! KaFFPaE partitions it (seeded with the current partition after the
//! first cycle) → the best solution is broadcast and carried up by the
//! parallel uncoarsening, with `r` iterations of parallel SCLP refinement
//! per level.
//!
//! # Checkpoint/restart (DESIGN.md §9)
//!
//! The only state a V-cycle carries into the next one is the block
//! assignment — every seed is derived from the *absolute* cycle index, so
//! replaying cycles `c+1..` from cycle `c`'s assignment is bit-identical
//! to a run that never stopped. [`parhip_distributed_checkpointed`] saves
//! a [`VCycleCheckpoint`] into a [`CheckpointStore`] at each V-cycle
//! boundary (assignment, the cycle's replicated coarsest graph + its
//! initial partition, the composite fine→coarsest map, level shapes, and
//! graph/config fingerprints); [`parhip_distributed_resume`] verifies the
//! fingerprints and replays the remaining cycles.

use crate::coarsen::{parallel_coarsen_with_scratch, ParHierarchy};
use crate::config::ParhipConfig;
use crate::contract::{parallel_project_blocks, query_owner_values};
use pgp_dmp::collectives::allgatherv;
use pgp_dmp::{Comm, DistGraph};
use pgp_evo::{Budget, EvoConfig};
use pgp_graph::ids;
use pgp_graph::{lmax, CsrGraph, Node, Partition};
use pgp_lp::par::{parallel_sclp_refine_with_scratch, SclpScratch};
use pgp_obs::RefineMetrics;

/// Per-phase timings and structural statistics of one run (as reported by
/// rank 0; all PEs see the same structure).
///
/// The `*_s` timing fields are filled from the observation recorder and
/// are therefore 0.0 unless the run carries an `Obs` registry (see
/// `pgp_dmp::RunConfig::obs`) — per-phase timing now lives in the
/// [`pgp_obs::RunReport`], not in ad-hoc stopwatches.
#[derive(Clone, Debug, Default)]
pub struct ParhipStats {
    /// Seconds spent in parallel coarsening (all cycles; 0.0 when
    /// observation is disabled).
    pub coarsening_s: f64,
    /// Seconds spent in the evolutionary initial partitioning (0.0 when
    /// observation is disabled).
    pub initial_s: f64,
    /// Seconds spent in uncoarsening + refinement (0.0 when observation is
    /// disabled).
    pub uncoarsening_s: f64,
    /// Hierarchy depth of the first cycle.
    pub levels: usize,
    /// Global node count of the first cycle's coarsest graph.
    pub coarsest_n: u64,
    /// Global edge count of the first cycle's coarsest graph.
    pub coarsest_m: u64,
    /// Final edge cut.
    pub cut: u64,
}

/// Shape of one hierarchy level captured in a [`VCycleCheckpoint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelSummary {
    /// Global node count of the level.
    pub n_global: u64,
    /// Global edge count of the level.
    pub m_global: u64,
}

/// A V-cycle boundary snapshot: everything needed to replay the remaining
/// cycles bit-identically, plus the cycle's coarse state for inspection
/// and validation (`pgp_check::validate_checkpoint`).
#[derive(Clone, Debug)]
pub struct VCycleCheckpoint {
    /// The completed V-cycle this snapshot was taken after (0-based).
    pub cycle: usize,
    /// Block count of the run.
    pub k: usize,
    /// Global block assignment after the cycle (indexed by global node ID).
    pub assignment: Vec<Node>,
    /// The cycle's replicated coarsest graph.
    pub coarsest: CsrGraph,
    /// The evolutionary initial partition of `coarsest` (before
    /// uncoarsening refinement).
    pub coarsest_assignment: Vec<Node>,
    /// Composite fine→coarsest map: global fine node ID → global coarsest
    /// node ID (the chain of per-level cluster mappings, collapsed).
    pub fine_to_coarsest: Vec<Node>,
    /// Shape of every hierarchy level, finest first.
    pub levels: Vec<LevelSummary>,
    /// Group-wide graph fingerprint (see [`DistGraph::fingerprint_local`]).
    pub graph_fingerprint: u64,
    /// [`ParhipConfig::fingerprint`] of the run's configuration.
    pub config_fingerprint: u64,
    /// Nanoseconds elapsed on the run's trace epoch when the snapshot was
    /// taken (0 when observation is disabled). A resumed run offsets its
    /// trace clock by this amount so the stitched timeline of
    /// original + resumed segments stays monotone.
    pub elapsed_ns: u64,
}

/// In-memory store holding the latest [`VCycleCheckpoint`] of a run.
/// Shared between the driver and the PE group (rank 0 writes it at each
/// V-cycle boundary); after a faulted run, hand it to
/// [`parhip_distributed_resume`] / [`partition_parallel_resume`].
#[derive(Default)]
pub struct CheckpointStore {
    latest: std::sync::Mutex<Option<VCycleCheckpoint>>,
    /// Total V-cycle *starts* recorded against this store (rank 0 marks
    /// one per cycle entry, across all attempts). A fault-free run starts
    /// exactly `vcycles` cycles, so anything beyond that is work a fault
    /// destroyed — the supervised wrappers report the difference as
    /// `lost_cycles`.
    cycles_started: std::sync::atomic::AtomicU64,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one V-cycle start (called by rank 0 at each cycle entry).
    pub fn note_cycle_started(&self) {
        self.cycles_started
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed); // lint:relaxed-ok: monotonic diagnostic counter
    }

    /// Total V-cycle starts recorded so far (see the field docs).
    pub fn cycles_started(&self) -> u64 {
        self.cycles_started
            .load(std::sync::atomic::Ordering::Relaxed) // lint:relaxed-ok: monotonic diagnostic counter
    }

    /// Replaces the stored checkpoint (later cycles win).
    pub fn save(&self, cp: VCycleCheckpoint) {
        // A panicking writer cannot leave a half-written checkpoint: the
        // value is moved in whole, so poisoning is safe to swallow.
        let mut slot = self.latest.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(cp);
    }

    /// The latest checkpoint, if any.
    pub fn latest(&self) -> Option<VCycleCheckpoint> {
        self.latest
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The cycle index of the latest checkpoint, if any.
    pub fn latest_cycle(&self) -> Option<usize> {
        self.latest
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|cp| cp.cycle)
    }
}

/// Group-wide graph identity: every PE's local fingerprint bound to its
/// rank, combined with a wrapping-sum allreduce (commutative, so the
/// reduction tree's shape cannot matter). Identical graph + identical PE
/// count ⇔ identical value on every PE.
fn group_graph_fingerprint(comm: &Comm, graph: &DistGraph) -> u64 {
    let local = pgp_dmp::mix_seed(
        graph.fingerprint_local(),
        ids::count_global(comm.rank()).wrapping_add(1),
    );
    pgp_dmp::collectives::allreduce(comm, local, |a, b| a.wrapping_add(b))
}

/// Collapses the hierarchy's per-level cluster mappings into one map from
/// this PE's owned *finest* nodes to global *coarsest* node IDs. Each step
/// resolves the current coarse IDs through their owners' next-level
/// mapping (an alltoallv round trip via [`query_owner_values`]).
fn compose_to_coarsest(comm: &Comm, hierarchy: &ParHierarchy) -> Vec<Node> {
    let depth = hierarchy.depth();
    let finest = &hierarchy.levels[0].graph;
    if depth == 1 {
        return (0..finest.n_local())
            .map(|l| finest.local_to_global(ids::node_of_index(l)))
            .collect();
    }
    // Level mappings cover owned + ghost nodes; the composite map covers
    // owned finest nodes only (it is allgathered into global node order).
    let mut cur: Vec<Node> = hierarchy.levels[0].mapping[..finest.n_local()].to_vec();
    for li in 1..depth - 1 {
        let level_graph = &hierarchy.levels[li].graph;
        let mapping = &hierarchy.levels[li].mapping;
        cur = query_owner_values(comm, level_graph.dist(), &cur, |idx| mapping[idx]);
    }
    cur
}

/// Runs the full system on an already-distributed graph; returns this PE's
/// local block assignment (owned nodes) plus stats.
pub fn parhip_distributed(
    comm: &Comm,
    graph: &DistGraph,
    cfg: &ParhipConfig,
) -> (Vec<Node>, ParhipStats) {
    parhip_distributed_with_input(comm, graph, cfg, None)
}

/// As [`parhip_distributed`], but optionally starting from a *prepartition*
/// (paper §VI: "this prepartition could be directly fed into the first
/// V-cycle and consecutively be improved" — e.g. a geographic or
/// hash-based initialization from a cloud toolkit). `input` covers owned +
/// ghost nodes; the first cycle then behaves like a later V-cycle: cut
/// edges of the input survive coarsening and the input seeds the
/// evolutionary population, so the result is never worse than the input.
pub fn parhip_distributed_with_input(
    comm: &Comm,
    graph: &DistGraph,
    cfg: &ParhipConfig,
    input: Option<&[Node]>,
) -> (Vec<Node>, ParhipStats) {
    parhip_cycles(comm, graph, cfg, input, 0, None)
}

/// As [`parhip_distributed_with_input`], additionally saving a
/// [`VCycleCheckpoint`] into `store` at every V-cycle boundary (rank 0
/// writes; the snapshot itself is assembled collectively). If the run is
/// later lost to a fault, [`parhip_distributed_resume`] replays the
/// remaining cycles from the last snapshot with bit-identical output.
pub fn parhip_distributed_checkpointed(
    comm: &Comm,
    graph: &DistGraph,
    cfg: &ParhipConfig,
    input: Option<&[Node]>,
    store: &CheckpointStore,
) -> (Vec<Node>, ParhipStats) {
    parhip_cycles(comm, graph, cfg, input, 0, Some(store))
}

/// Resumes a run from `checkpoint`: verifies the graph and config
/// fingerprints, rebuilds this PE's owned + ghost assignment from the
/// snapshot's global assignment, and replays cycles `checkpoint.cycle + 1`
/// onward. Because every cycle's seeds derive from the absolute cycle
/// index, the result is bit-identical to the uninterrupted run.
///
/// # Panics
/// Panics if the checkpoint was taken on a different graph, PE count, or
/// configuration (fingerprint mismatch) — resuming would silently produce
/// a different partition, which is worse than failing loudly.
pub fn parhip_distributed_resume(
    comm: &Comm,
    graph: &DistGraph,
    cfg: &ParhipConfig,
    checkpoint: &VCycleCheckpoint,
    store: Option<&CheckpointStore>,
) -> (Vec<Node>, ParhipStats) {
    assert_eq!(
        checkpoint.graph_fingerprint,
        group_graph_fingerprint(comm, graph),
        "checkpoint/graph mismatch: snapshot of cycle {} was taken on a different graph or PE count",
        checkpoint.cycle
    );
    assert_eq!(
        checkpoint.config_fingerprint,
        cfg.fingerprint(),
        "checkpoint/config mismatch: snapshot of cycle {} was taken under a different configuration",
        checkpoint.cycle
    );
    assert_eq!(
        ids::count_global(checkpoint.assignment.len()),
        graph.n_global(),
        "checkpoint assignment must cover every global node"
    );
    // Continue the original run's trace clock: resumed events start where
    // the snapshot left off instead of restarting at 0.
    comm.recorder().resume_epoch(checkpoint.elapsed_ns);
    let n_all = graph.n_local() + graph.n_ghost();
    let blocks: Vec<Node> = (0..n_all)
        .map(|l| {
            let g = graph.local_to_global(ids::node_of_index(l));
            checkpoint.assignment[ids::node_index(g)]
        })
        .collect();
    parhip_cycles(comm, graph, cfg, Some(&blocks), checkpoint.cycle + 1, store)
}

/// The per-attempt body for supervised runs (see
/// [`partition_parallel_supervised`]): on the first attempt — or whenever
/// the store holds no usable snapshot — runs checkpointed from scratch; on
/// recovery attempts with a matching snapshot, resumes from it. The
/// resume-vs-scratch decision is SPMD-uniform: `attempt` comes from the
/// supervisor (identical on every PE) and the store is only written at
/// collective V-cycle boundaries, so all PEs observe the same latest
/// snapshot between attempts.
pub fn parhip_distributed_supervised(
    comm: &Comm,
    graph: &DistGraph,
    cfg: &ParhipConfig,
    attempt: &pgp_dmp::AttemptInfo,
    store: &CheckpointStore,
) -> (Vec<Node>, ParhipStats) {
    if attempt.attempt > 0 {
        #[cfg(feature = "validate")]
        crate::validate::assert_recovery_agreed(
            comm,
            &attempt.dead_ranks,
            store.latest_cycle(),
            "supervised attempt entry",
        );
        let rec = comm.recorder();
        rec.enter("restore");
        // Fingerprint checks are collective (group_graph_fingerprint is an
        // allreduce) and must run unconditionally on this branch.
        let group_fp = group_graph_fingerprint(comm, graph);
        let usable = store.latest().filter(|cp| {
            cp.graph_fingerprint == group_fp && cp.config_fingerprint == cfg.fingerprint()
        });
        rec.exit("restore");
        if let Some(cp) = usable {
            return parhip_distributed_resume(comm, graph, cfg, &cp, Some(store));
        }
    }
    parhip_distributed_checkpointed(comm, graph, cfg, None, store)
}

/// The shared V-cycle engine: runs cycles `start_cycle..cfg.vcycles` from
/// an optional carried-in assignment, optionally checkpointing each cycle
/// boundary into `store`. All public entry points funnel here.
fn parhip_cycles(
    comm: &Comm,
    graph: &DistGraph,
    cfg: &ParhipConfig,
    input: Option<&[Node]>,
    start_cycle: usize,
    store: Option<&CheckpointStore>,
) -> (Vec<Node>, ParhipStats) {
    let mut stats = ParhipStats::default();
    let n_all = graph.n_local() + graph.n_ghost();
    // blocks: owned + ghost, maintained across cycles.
    let mut blocks: Option<Vec<Node>> = input.map(|b| {
        assert_eq!(
            b.len(),
            n_all,
            "prepartition must cover owned + ghost nodes"
        );
        b.to_vec()
    });
    assert!(
        start_cycle == 0 || blocks.is_some(),
        "resuming past cycle 0 requires a carried-in assignment"
    );
    #[cfg(feature = "validate")]
    crate::validate::assert_graph_valid(comm, graph, "parhip input graph");

    // One SCLP scratch for the whole run: the finest graph recurs every
    // cycle, so its degree order is computed once and reused.
    let mut scratch = SclpScratch::new();

    let last_cycle = cfg.vcycles.max(1) - 1;
    for cycle in start_cycle..cfg.vcycles.max(1) {
        let rec = comm.recorder();
        rec.enter("vcycle");
        // Progress markers for the live telemetry plane: every PE passes
        // the same coordinates at the same SPMD boundary, so a monitor
        // comparing PEs sees algorithmic position, not clock skew.
        let cycle_u32 = u32::try_from(cycle).unwrap_or(u32::MAX);
        rec.set_progress(cycle_u32, 0, 0);
        // Cycle-start accounting for the recovery layer: one mark per
        // entered cycle (rank 0 only — the counter is global, not per-PE).
        if let Some(store) = store {
            if comm.rank() == 0 {
                store.note_cycle_started();
            }
        }
        // ---- Parallel coarsening -------------------------------------
        rec.enter("coarsen");
        let hierarchy = parallel_coarsen_with_scratch(
            comm,
            graph.clone(),
            cfg,
            cycle,
            blocks.as_deref(),
            &mut scratch,
        );
        rec.exit("coarsen");
        if cycle == 0 {
            stats.levels = hierarchy.depth();
            stats.coarsest_n = hierarchy.coarsest().n_global();
            stats.coarsest_m = hierarchy.coarsest().m_global();
        }

        // ---- Initial partitioning on the replicated coarsest graph ----
        rec.enter("initial_partition");
        let coarsest = hierarchy.coarsest();
        let coarsest_global: CsrGraph = coarsest.gather_global(comm);
        let seed_partition: Option<Partition> = blocks.as_ref().map(|b| {
            // Project the current partition to the coarsest level: walk the
            // mapping chain for the local part, then allgather.
            let coarse_local = project_down(comm, &hierarchy, b);
            let all = allgatherv(comm, coarse_local);
            Partition::from_assignment(&coarsest_global, cfg.k, all)
        });
        let evo_cfg = EvoConfig {
            k: cfg.k,
            eps: cfg.eps,
            population_size: cfg.population_size,
            budget: Budget::Operations(cfg.evo_operations),
            mutation_rate: 0.1,
            rumor_fanout: if cfg.deterministic { 0 } else { 1 },
            rumor_interval: 2,
            seed: cfg.seed.wrapping_add(ids::count_global(cycle) * 0xE70),
            objective: pgp_evo::Objective::EdgeCut,
        };
        let coarse_partition =
            pgp_evo::kaffpae(comm, &coarsest_global, &evo_cfg, seed_partition.as_ref());
        rec.exit("initial_partition");

        // ---- Parallel uncoarsening + refinement ------------------------
        rec.enter("uncoarsen");
        let lmax_v = lmax(graph.total_node_weight(), cfg.k, cfg.eps);
        // Blocks of this PE's *owned coarsest* nodes from the replicated
        // solution.
        let first = coarsest.first_global();
        let mut level_blocks: Vec<Node> = (0..coarsest.n_local())
            .map(|l| coarse_partition.block(ids::global_node(first + ids::count_global(l))))
            .collect();
        // Walk levels coarse→fine.
        for li in (0..hierarchy.depth() - 1).rev() {
            rec.set_progress(cycle_u32, u32::try_from(li).unwrap_or(u32::MAX), 0);
            let fine = &hierarchy.levels[li].graph;
            let coarse = &hierarchy.levels[li + 1].graph;
            let mapping = &hierarchy.levels[li].mapping;
            let mut fine_blocks = parallel_project_blocks(comm, coarse, mapping, &level_blocks);
            parallel_sclp_refine_with_scratch(
                comm,
                fine,
                cfg.k,
                lmax_v,
                cfg.refine_iterations,
                cfg.seed.wrapping_add(ids::count_global(cycle * 1000 + li)),
                &mut fine_blocks,
                &mut scratch,
            );
            // Quality after the pass — two extra allreduces, taken only
            // when recording (enabledness is SPMD-uniform, so the gate
            // cannot desynchronize the group).
            if rec.is_enabled() {
                let (cut, imbalance) = observed_quality(comm, fine, &fine_blocks, cfg.k);
                rec.record_refine(RefineMetrics::at(cycle, li, cut, imbalance));
            }
            level_blocks = fine_blocks[..fine.n_local()].to_vec();
        }
        // When the hierarchy is a single level, refine directly on it.
        if hierarchy.depth() == 1 {
            let fine = &hierarchy.levels[0].graph;
            let mut fb: Vec<Node> = vec![0; fine.n_local() + fine.n_ghost()];
            fb[..fine.n_local()].copy_from_slice(&level_blocks);
            // Ghost blocks from the replicated coarse partition (coarsest ==
            // finest here).
            #[allow(clippy::needless_range_loop)] // l is a local node id
            for l in fine.n_local()..fine.n_local() + fine.n_ghost() {
                fb[l] = coarse_partition.block(fine.local_to_global(ids::node_of_index(l)));
            }
            parallel_sclp_refine_with_scratch(
                comm,
                fine,
                cfg.k,
                lmax_v,
                cfg.refine_iterations,
                cfg.seed.wrapping_add(ids::count_global(cycle) * 7919),
                &mut fb,
                &mut scratch,
            );
            if rec.is_enabled() {
                let (cut, imbalance) = observed_quality(comm, fine, &fb, cfg.k);
                rec.record_refine(RefineMetrics::at(cycle, 0, cut, imbalance));
            }
            level_blocks = fb[..fine.n_local()].to_vec();
        }
        rec.exit("uncoarsen");

        // Refresh ghost blocks for the next cycle's constraint.
        let mut full: Vec<Node> = vec![0; n_all];
        full[..graph.n_local()].copy_from_slice(&level_blocks);
        let ghost_ids: Vec<Node> = (graph.n_local()..n_all)
            .map(|l| graph.local_to_global(ids::node_of_index(l)))
            .collect();
        let ghost_blocks =
            crate::contract::query_owner_values(comm, graph.dist(), &ghost_ids, |idx| {
                level_blocks[idx]
            });
        full[graph.n_local()..].copy_from_slice(&ghost_blocks);
        #[cfg(feature = "validate")]
        crate::validate::assert_partition_valid(comm, graph, &full, cfg.k, "end of V-cycle");
        blocks = Some(full);

        // ---- V-cycle boundary checkpoint -------------------------------
        // The cadence gate is SPMD-uniform (pure function of cycle index
        // and config), so skipping a boundary cannot desynchronize the
        // group. The last cycle is always taken.
        if let Some(store) = store.filter(|_| cfg.checkpoint.take_at(cycle, last_cycle)) {
            let assignment = allgatherv(comm, level_blocks.clone());
            let fine_to_coarsest = allgatherv(comm, compose_to_coarsest(comm, &hierarchy));
            let checkpoint = VCycleCheckpoint {
                cycle,
                k: cfg.k,
                assignment,
                coarsest: coarsest_global.clone(),
                coarsest_assignment: coarse_partition.assignment().to_vec(),
                fine_to_coarsest,
                levels: hierarchy
                    .levels
                    .iter()
                    .map(|lv| LevelSummary {
                        n_global: lv.graph.n_global(),
                        m_global: lv.graph.m_global(),
                    })
                    .collect(),
                graph_fingerprint: group_graph_fingerprint(comm, graph),
                config_fingerprint: cfg.fingerprint(),
                elapsed_ns: rec.epoch_elapsed_ns(),
            };
            #[cfg(feature = "validate")]
            crate::validate::assert_checkpoint_valid(comm, &checkpoint, "V-cycle checkpoint");
            // The snapshot is assembled collectively (identical on every
            // PE); one writer suffices for the shared store.
            if comm.rank() == 0 {
                store.save(checkpoint);
            }
        }
        rec.exit("vcycle");
    }

    // Phase timings come from the recorder (summed over all span paths
    // ending in the phase name); zero when observation is disabled.
    let rec = comm.recorder();
    if rec.is_enabled() {
        stats.coarsening_s = rec.phase_seconds("coarsen");
        stats.initial_s = rec.phase_seconds("initial_partition");
        stats.uncoarsening_s = rec.phase_seconds("uncoarsen");
    }

    let final_blocks = blocks.expect("at least one cycle ran");
    (final_blocks[..graph.n_local()].to_vec(), stats)
}

/// Global edge cut and imbalance of `blocks` (owned + ghost) on `graph`:
/// one scalar allreduce for the directed cut, one vector allreduce for the
/// block weights. Only called while observation is enabled.
fn observed_quality(comm: &Comm, graph: &DistGraph, blocks: &[Node], k: usize) -> (u64, f64) {
    let mut cut2 = 0u64;
    for l in 0..graph.n_local() {
        let v = ids::node_of_index(l);
        let bv = blocks[l];
        for (u, w) in graph.neighbors(v) {
            if blocks[ids::node_index(u)] != bv {
                cut2 += w;
            }
        }
    }
    let cut = pgp_dmp::collectives::allreduce_sum(comm, cut2) / 2;
    let mut weights = vec![0u64; k];
    for l in 0..graph.n_local() {
        let v = ids::node_of_index(l);
        weights[ids::node_index(blocks[l])] += graph.node_weight(v);
    }
    let weights = pgp_dmp::collectives::allreduce_sum_vec(comm, weights);
    let total: u64 = weights.iter().sum();
    let max_w = weights.iter().copied().max().unwrap_or(0);
    let target = total.div_ceil(ids::count_global(k)).max(1);
    // Integer weights in, deterministic f64 out — safe to compare across
    // runs byte-for-byte (the golden-report tests rely on this).
    let imbalance = max_w as f64 / target as f64 - 1.0; // lint:cast-ok: exact small integers
    (cut, imbalance)
}

/// Projects the current fine blocks (owned part) down the hierarchy to the
/// coarsest level, returning the blocks of this PE's owned coarsest nodes.
fn project_down(comm: &Comm, hierarchy: &ParHierarchy, fine_blocks: &[Node]) -> Vec<Node> {
    // At each step: owned fine nodes vote (coarse_id, block) to the coarse
    // owner; all members agree because the coarsening was constrained.
    let mut cur: Vec<Node> = fine_blocks[..hierarchy.levels[0].graph.n_local()].to_vec();
    for li in 0..hierarchy.depth() - 1 {
        let coarse = &hierarchy.levels[li + 1].graph;
        let mapping = &hierarchy.levels[li].mapping;
        let dist = coarse.dist();
        let mut votes: Vec<Vec<(Node, Node)>> = vec![Vec::new(); comm.size()];
        for (v, &b) in cur.iter().enumerate() {
            let cid = mapping[v];
            votes[dist.owner(cid)].push((cid, b));
        }
        let first = dist.first(comm.rank());
        let mut next: Vec<Node> = vec![0; coarse.n_local()];
        for (cid, b) in pgp_dmp::collectives::alltoallv(comm, votes)
            .into_iter()
            .flatten()
        {
            next[ids::global_index(ids::node_global(cid) - first)] = b;
        }
        cur = next;
    }
    cur
}

/// The top-level convenience API: partitions `graph` into `cfg.k` blocks
/// using `p` PEs, returning the assembled global partition (identical to
/// what rank 0 holds) and the run's statistics.
///
/// ```no_run
/// use parhip::{partition_parallel, ParhipConfig, GraphClass};
/// let g = pgp_gen::rmat::rmat_web(12, 8, 1);
/// let (p, stats) = partition_parallel(&g, 8, &ParhipConfig::fast(16, GraphClass::Social, 42));
/// assert!(p.is_balanced(&g, 0.05));
/// println!("cut {} in {} levels", stats.cut, stats.levels);
/// ```
pub fn partition_parallel(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
) -> (Partition, ParhipStats) {
    partition_parallel_impl(graph, p, cfg, None)
}

/// As [`partition_parallel`], improving a given *prepartition* (§VI): the
/// input's cut edges survive coarsening and the input seeds the coarsest-
/// level population, so the result is at least as good a starting point as
/// the input itself.
pub fn partition_parallel_with_input(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
    input: &Partition,
) -> (Partition, ParhipStats) {
    assert_eq!(input.k(), cfg.k, "prepartition block count mismatch");
    partition_parallel_impl(graph, p, cfg, Some(input))
}

/// The runner configuration implied by `cfg` — the comm backend and the
/// intra-PE worker budget (the observed/traced entry points add `obs`).
fn run_config_for(cfg: &ParhipConfig) -> pgp_dmp::RunConfig {
    pgp_dmp::RunConfig {
        backend: cfg.backend,
        threads_per_pe: cfg.threads_per_pe,
        ..Default::default()
    }
}

fn partition_parallel_impl(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
    input: Option<&Partition>,
) -> (Partition, ParhipStats) {
    let results = pgp_dmp::run_config(p, run_config_for(cfg), |comm| {
        let dg = DistGraph::from_global(comm, graph);
        let local_input: Option<Vec<Node>> = input.map(|ip| {
            (0..ids::node_of_index(dg.n_local() + dg.n_ghost()))
                .map(|l| ip.block(dg.local_to_global(l)))
                .collect()
        });
        let (local, stats) = parhip_distributed_with_input(comm, &dg, cfg, local_input.as_deref());
        let all = allgatherv(comm, local);
        (all, stats)
    });
    let (assignment, mut stats) = results
        .into_iter()
        .next()
        .expect("at least one PE")
        .expect("fault-free run cannot fail structurally");
    let partition = Partition::from_assignment(graph, cfg.k, assignment);
    stats.cut = partition.edge_cut(graph);
    (partition, stats)
}

/// As [`partition_parallel`], additionally recording the run into a
/// schema-versioned [`pgp_obs::RunReport`]: per-PE per-phase span timings,
/// per-tag comm counters, per-level structural metrics, and cut/imbalance
/// after every refinement pass. Recording adds two allreduces per
/// refinement pass; the partition itself is identical to the unobserved
/// run (same seeds, same message pattern otherwise).
pub fn partition_parallel_observed(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
) -> (Partition, ParhipStats, pgp_obs::RunReport) {
    let obs = pgp_obs::Obs::new(p);
    let run_cfg = pgp_dmp::RunConfig {
        obs: Some(std::sync::Arc::clone(&obs)),
        ..run_config_for(cfg)
    };
    let results = pgp_dmp::run_config(p, run_cfg, |comm| {
        let dg = DistGraph::from_global(comm, graph);
        let (local, stats) = parhip_distributed(comm, &dg, cfg);
        let all = allgatherv(comm, local);
        (all, stats)
    });
    let (assignment, mut stats) = results
        .into_iter()
        .next()
        .expect("at least one PE")
        .expect("fault-free observed run cannot fail structurally");
    let partition = Partition::from_assignment(graph, cfg.k, assignment);
    stats.cut = partition.edge_cut(graph);
    (partition, stats, obs.report())
}

/// As [`partition_parallel_observed`], recording into a caller-supplied
/// registry instead of a fresh one. This is the live-telemetry entry
/// point: the caller enables live publication (`Obs::enable_live`) and
/// attaches a `LiveMonitor` *before* the run, then assembles the report
/// from the same registry after it — which is what lets the stream's
/// final aggregates be checked against the report's counters exactly.
/// `obs` must be sized for exactly `p` PEs.
pub fn partition_parallel_with_obs(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
    obs: std::sync::Arc<pgp_obs::Obs>,
) -> (Partition, ParhipStats) {
    let run_cfg = pgp_dmp::RunConfig {
        obs: Some(obs),
        ..run_config_for(cfg)
    };
    let results = pgp_dmp::run_config(p, run_cfg, |comm| {
        let dg = DistGraph::from_global(comm, graph);
        let (local, stats) = parhip_distributed(comm, &dg, cfg);
        let all = allgatherv(comm, local);
        (all, stats)
    });
    let (assignment, mut stats) = results
        .into_iter()
        .next()
        .expect("at least one PE")
        .expect("fault-free observed run cannot fail structurally");
    let partition = Partition::from_assignment(graph, cfg.k, assignment);
    stats.cut = partition.edge_cut(graph);
    (partition, stats)
}

/// As [`partition_parallel_observed`], additionally recording a bounded
/// per-PE event timeline ([`pgp_obs::RunTrace`]): span open/close,
/// sends/receives with per-peer sequence numbers, per-peer receive waits,
/// collective entry/exit, and fault incidents, all on one run-wide
/// monotonic epoch. Export with [`pgp_obs::to_perfetto_json`] or analyze
/// in-process (`RunTrace::phase_blame`) for straggler attribution.
/// `trace_capacity` bounds each PE's ring (`None` uses
/// [`pgp_obs::DEFAULT_TRACE_CAPACITY`]; overflow drops the newest events
/// and counts them).
pub fn partition_parallel_traced(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
    trace_capacity: Option<usize>,
) -> (
    Partition,
    ParhipStats,
    pgp_obs::RunReport,
    pgp_obs::RunTrace,
) {
    let obs =
        pgp_obs::Obs::with_trace(p, trace_capacity.unwrap_or(pgp_obs::DEFAULT_TRACE_CAPACITY));
    let run_cfg = pgp_dmp::RunConfig {
        obs: Some(std::sync::Arc::clone(&obs)),
        ..run_config_for(cfg)
    };
    let results = pgp_dmp::run_config(p, run_cfg, |comm| {
        let dg = DistGraph::from_global(comm, graph);
        let (local, stats) = parhip_distributed(comm, &dg, cfg);
        let all = allgatherv(comm, local);
        (all, stats)
    });
    let (assignment, mut stats) = results
        .into_iter()
        .next()
        .expect("at least one PE")
        .expect("fault-free traced run cannot fail structurally");
    let partition = Partition::from_assignment(graph, cfg.k, assignment);
    stats.cut = partition.edge_cut(graph);
    let trace = obs.trace().expect("registry was built with tracing on");
    (partition, stats, obs.report(), trace)
}

/// As [`partition_parallel`], checkpointing every V-cycle boundary into
/// `store`. After a faulted run (see `pgp_dmp::run_config` and the
/// `pgp-chaos` crate), hand the same store to [`partition_parallel_resume`]
/// to replay the remaining cycles bit-identically.
pub fn partition_parallel_with_store(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
    store: &CheckpointStore,
) -> (Partition, ParhipStats) {
    let results = pgp_dmp::run_config(p, run_config_for(cfg), |comm| {
        let dg = DistGraph::from_global(comm, graph);
        let (local, stats) = parhip_distributed_checkpointed(comm, &dg, cfg, None, store);
        let all = allgatherv(comm, local);
        (all, stats)
    });
    let (assignment, mut stats) = results
        .into_iter()
        .next()
        .expect("at least one PE")
        .expect("fault-free run cannot fail structurally");
    let partition = Partition::from_assignment(graph, cfg.k, assignment);
    stats.cut = partition.edge_cut(graph);
    (partition, stats)
}

/// Resumes a run from the latest checkpoint in `store`, replaying the
/// remaining V-cycles (bit-identical to the uninterrupted run — see
/// [`parhip_distributed_resume`]).
///
/// # Panics
/// Panics if the store is empty or the checkpoint does not match `graph` /
/// `cfg` / `p` (fingerprint check).
pub fn partition_parallel_resume(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
    store: &CheckpointStore,
) -> (Partition, ParhipStats) {
    let checkpoint = store
        .latest()
        .expect("partition_parallel_resume: the checkpoint store is empty");
    let results = pgp_dmp::run_config(p, run_config_for(cfg), |comm| {
        let dg = DistGraph::from_global(comm, graph);
        let (local, stats) = parhip_distributed_resume(comm, &dg, cfg, &checkpoint, Some(store));
        let all = allgatherv(comm, local);
        (all, stats)
    });
    let (assignment, mut stats) = results
        .into_iter()
        .next()
        .expect("at least one PE")
        .expect("fault-free run cannot fail structurally");
    let partition = Partition::from_assignment(graph, cfg.k, assignment);
    stats.cut = partition.edge_cut(graph);
    (partition, stats)
}

/// Retry/recovery budgets for [`partition_parallel_supervised`] (the
/// backoff seed comes from `cfg.seed`, keeping the whole schedule
/// deterministic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryLimits {
    /// Transient retries (uncorroborated timeouts) per recovery window
    /// before a timeout escalates to full recovery.
    pub max_retries: u32,
    /// Full recoveries (respawn + resume after confirmed deaths) before
    /// the supervisor gives up and surfaces the fault.
    pub max_recoveries: u32,
    /// Base of the seeded exponential backoff between transient retries,
    /// in milliseconds.
    pub backoff_base_ms: u64,
}

impl Default for RecoveryLimits {
    fn default() -> Self {
        let d = pgp_dmp::SupervisorConfig::default();
        Self {
            max_retries: d.max_retries,
            max_recoveries: d.max_recoveries,
            backoff_base_ms: d.backoff_base_ms,
        }
    }
}

/// As [`partition_parallel`], but run under the automatic-recovery
/// supervisor (DESIGN.md §14): every V-cycle boundary is checkpointed at
/// the cadence in `cfg.checkpoint`, and when a PE dies mid-run the
/// survivors' failure consensus picks the dead ranks, the supervisor
/// respawns a fresh universe, and the run resumes from the latest
/// validated snapshot — bit-identical to the fault-free partition.
/// Uncorroborated timeouts are retried with seeded exponential backoff
/// before escalating to full recovery.
///
/// Fault injection and observation ride in through `run` (`pgp-chaos`
/// builds a `RunConfig` from a `FaultPlan`; attach an `Obs` to get the
/// recovery counters in the `RunReport`). A zero `threads_per_pe` in `run`
/// is filled from `cfg.threads_per_pe`.
///
/// Returns the partition, stats, and the supervisor's
/// [`pgp_obs::RecoveryReport`] (attempts, retries, recoveries, dead ranks,
/// lost V-cycles). Errors only when the recovery budget is exhausted.
pub fn partition_parallel_supervised(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParhipConfig,
    run: pgp_dmp::RunConfig,
    limits: RecoveryLimits,
) -> Result<(Partition, ParhipStats, pgp_obs::RecoveryReport), pgp_dmp::CommError> {
    let mut run = run;
    if run.threads_per_pe == 0 {
        run.threads_per_pe = cfg.threads_per_pe;
    }
    let obs = run.obs.clone();
    let store = CheckpointStore::new();
    let sup = pgp_dmp::SupervisorConfig {
        base: run,
        max_retries: limits.max_retries,
        max_recoveries: limits.max_recoveries,
        backoff_base_ms: limits.backoff_base_ms,
        seed: cfg.seed,
    };
    let (values, mut recovery) = pgp_dmp::run_config_supervised(p, sup, |comm, info| {
        let dg = DistGraph::from_global(comm, graph);
        let (local, stats) = parhip_distributed_supervised(comm, &dg, cfg, info, &store);
        let all = allgatherv(comm, local);
        (all, stats)
    })?;
    let (assignment, mut stats) = values.into_iter().next().expect("at least one PE");
    let partition = Partition::from_assignment(graph, cfg.k, assignment);
    stats.cut = partition.edge_cut(graph);
    // Work destroyed by faults: cycle starts beyond the fault-free count.
    recovery.lost_cycles = store
        .cycles_started()
        .saturating_sub(cfg.vcycles.max(1) as u64); // lint:cast-ok: small cycle count
    if let Some(obs) = &obs {
        let lost = recovery.lost_cycles;
        obs.record_recovery(|r| r.lost_cycles = lost);
    }
    Ok((partition, stats, recovery))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphClass;

    fn small_cfg(k: usize, class: GraphClass, seed: u64) -> ParhipConfig {
        let mut cfg = ParhipConfig::fast(k, class, seed);
        cfg.coarsest_nodes_per_block = 50;
        cfg.deterministic = true;
        cfg
    }

    #[test]
    fn partitions_social_standin_validly() {
        let (g, _) = pgp_gen::sbm::sbm(1200, pgp_gen::sbm::SbmParams::default(), 4);
        let (p, stats) = partition_parallel(&g, 4, &small_cfg(4, GraphClass::Social, 1));
        p.validate(&g, 0.03).unwrap();
        assert!(stats.levels >= 2);
        assert!(stats.cut > 0);
        // Much better than a random balanced partition.
        let rand_cut =
            Partition::from_assignment(&g, 4, (0..g.n() as u32).map(|i| i % 4).collect())
                .edge_cut(&g);
        assert!(
            stats.cut < rand_cut / 2,
            "cut {} vs random {rand_cut}",
            stats.cut
        );
    }

    #[test]
    fn partitions_mesh_validly() {
        let g = pgp_gen::mesh::grid2d(30, 30);
        let (p, _) = partition_parallel(&g, 3, &small_cfg(3, GraphClass::Mesh, 7));
        p.validate(&g, 0.03).unwrap();
        // 3-way cut of a 30x30 grid: decent quality sanity bound.
        assert!(p.edge_cut(&g) <= 120, "cut {}", p.edge_cut(&g));
    }

    #[test]
    fn single_pe_works() {
        let (g, _) = pgp_gen::sbm::sbm(400, pgp_gen::sbm::SbmParams::default(), 9);
        let (p, _) = partition_parallel(&g, 1, &small_cfg(2, GraphClass::Social, 3));
        p.validate(&g, 0.03).unwrap();
    }

    #[test]
    fn deterministic_given_seed_and_p() {
        let (g, _) = pgp_gen::sbm::sbm(500, pgp_gen::sbm::SbmParams::default(), 11);
        let cfg = small_cfg(2, GraphClass::Social, 21);
        let (a, _) = partition_parallel(&g, 3, &cfg);
        let (b, _) = partition_parallel(&g, 3, &cfg);
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn more_vcycles_do_not_hurt() {
        let (g, _) = pgp_gen::sbm::sbm(700, pgp_gen::sbm::SbmParams::default(), 13);
        let mut one = small_cfg(4, GraphClass::Social, 5);
        one.vcycles = 1;
        let mut three = small_cfg(4, GraphClass::Social, 5);
        three.vcycles = 3;
        let (p1, _) = partition_parallel(&g, 2, &one);
        let (p3, _) = partition_parallel(&g, 2, &three);
        assert!(
            p3.edge_cut(&g) <= p1.edge_cut(&g),
            "3 cycles {} vs 1 cycle {}",
            p3.edge_cut(&g),
            p1.edge_cut(&g)
        );
    }

    #[test]
    fn prepartition_is_improved_never_worsened() {
        let (g, _) = pgp_gen::sbm::sbm(800, pgp_gen::sbm::SbmParams::default(), 23);
        let cfg = small_cfg(4, GraphClass::Social, 5);
        // A hash prepartition (balanced, terrible cut) fed into the first
        // V-cycle, as §VI suggests for cloud toolkits.
        let hash: Vec<Node> = (0..g.n() as Node)
            .map(|v| (pgp_dmp::mix_seed(7, v as u64) % 4) as Node)
            .collect();
        let hash_cut = Partition::from_assignment(&g, 4, hash.clone()).edge_cut(&g);
        let results = pgp_dmp::run(2, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let input: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                .map(|l| hash[dg.local_to_global(l) as usize])
                .collect();
            let (local, _) = super::parhip_distributed_with_input(comm, &dg, &cfg, Some(&input));
            allgatherv(comm, local)
        });
        let p = Partition::from_assignment(&g, 4, results.into_iter().next().unwrap());
        assert!(
            p.edge_cut(&g) < hash_cut / 2,
            "prepartition {hash_cut} should be drastically improved, got {}",
            p.edge_cut(&g)
        );
        p.validate(&g, 0.03).unwrap();
    }

    /// End-to-end with the invariant wall up: every contraction, the input
    /// graph, and every cycle's final partition are validated collectively.
    #[test]
    #[cfg(feature = "validate")]
    fn validated_rmat_partition_end_to_end() {
        let g = pgp_gen::rmat::rmat_web(10, 8, 5);
        let (p, stats) = partition_parallel(&g, 4, &small_cfg(4, GraphClass::Social, 9));
        p.validate(&g, 0.03).unwrap();
        assert!(stats.cut > 0);
    }

    #[test]
    fn stats_are_populated() {
        let (g, _) = pgp_gen::sbm::sbm(600, pgp_gen::sbm::SbmParams::default(), 2);
        let (_, stats) = partition_parallel(&g, 2, &small_cfg(2, GraphClass::Social, 17));
        assert!(stats.coarsening_s >= 0.0);
        assert!(stats.coarsest_n > 0);
        assert!(stats.levels >= 1);
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_fills_store() {
        let (g, _) = pgp_gen::sbm::sbm(600, pgp_gen::sbm::SbmParams::default(), 31);
        let mut cfg = small_cfg(2, GraphClass::Social, 41);
        cfg.vcycles = 3;
        let (plain, _) = partition_parallel(&g, 2, &cfg);
        let store = CheckpointStore::new();
        let (stored, _) = partition_parallel_with_store(&g, 2, &cfg, &store);
        assert_eq!(plain.assignment(), stored.assignment());
        let cp = store.latest().expect("store must hold a snapshot");
        assert_eq!(cp.cycle, cfg.vcycles - 1, "last V-cycle wins");
        assert_eq!(cp.assignment, stored.assignment());
        assert_eq!(cp.assignment.len(), g.n());
        assert!(cp.coarsest.n() > 0);
        assert_eq!(cp.fine_to_coarsest.len(), g.n());
        assert!(!cp.levels.is_empty());
        assert_eq!(cp.config_fingerprint, cfg.fingerprint());
    }

    /// Resume from the cycle-`c` snapshot must replay cycles `c+1..` to a
    /// bit-identical final assignment: the only inter-cycle state is the
    /// block assignment, and every seed derives from the absolute cycle
    /// index (see the module docs). The "crashed after cycle 0" snapshot is
    /// forged from a 1-cycle run of the same config: `vcycles` is only the
    /// loop bound, so cycle 0 computes identical state either way; only the
    /// config fingerprint differs, which the forgery patches.
    #[test]
    fn resume_replays_bit_identically() {
        let (g, _) = pgp_gen::sbm::sbm(600, pgp_gen::sbm::SbmParams::default(), 31);
        let mut cfg = small_cfg(2, GraphClass::Social, 43);
        cfg.vcycles = 3;
        let full_store = CheckpointStore::new();
        let (full, _) = partition_parallel_with_store(&g, 2, &cfg, &full_store);
        // The run a fault would have truncated after its first V-cycle.
        let mut one = cfg.clone();
        one.vcycles = 1;
        let early_store = CheckpointStore::new();
        let _ = partition_parallel_with_store(&g, 2, &one, &early_store);
        let mut cycle0 = early_store.latest().expect("cycle-0 snapshot");
        assert_eq!(cycle0.cycle, 0);
        cycle0.config_fingerprint = cfg.fingerprint();
        let store = CheckpointStore::new();
        store.save(cycle0);
        // Replays cycles 1 and 2 from the snapshot.
        let (resumed, _) = partition_parallel_resume(&g, 2, &cfg, &store);
        assert_eq!(full.assignment(), resumed.assignment());
        // Resume also keeps checkpointing: the store's latest snapshot must
        // now be the final cycle's.
        assert_eq!(store.latest_cycle(), Some(cfg.vcycles - 1));
    }

    /// Resume from the *final* snapshot replays zero cycles and returns the
    /// checkpointed assignment unchanged.
    #[test]
    fn resume_from_final_snapshot_is_a_no_op() {
        let (g, _) = pgp_gen::sbm::sbm(500, pgp_gen::sbm::SbmParams::default(), 31);
        let cfg = small_cfg(2, GraphClass::Social, 59);
        let store = CheckpointStore::new();
        let (full, _) = partition_parallel_with_store(&g, 2, &cfg, &store);
        let (resumed, _) = partition_parallel_resume(&g, 2, &cfg, &store);
        assert_eq!(full.assignment(), resumed.assignment());
    }

    #[test]
    #[should_panic(expected = "different configuration")]
    fn resume_rejects_config_mismatch() {
        let (g, _) = pgp_gen::sbm::sbm(400, pgp_gen::sbm::SbmParams::default(), 31);
        let cfg = small_cfg(2, GraphClass::Social, 47);
        let store = CheckpointStore::new();
        let _ = partition_parallel_with_store(&g, 2, &cfg, &store);
        let mut other = cfg;
        other.seed = 48;
        let _ = partition_parallel_resume(&g, 2, &other, &store);
    }

    #[test]
    #[should_panic(expected = "different graph or PE count")]
    fn resume_rejects_graph_mismatch() {
        let (g, _) = pgp_gen::sbm::sbm(400, pgp_gen::sbm::SbmParams::default(), 31);
        let cfg = small_cfg(2, GraphClass::Social, 53);
        let store = CheckpointStore::new();
        let _ = partition_parallel_with_store(&g, 2, &cfg, &store);
        let (h, _) = pgp_gen::sbm::sbm(400, pgp_gen::sbm::SbmParams::default(), 32);
        let _ = partition_parallel_resume(&h, 2, &cfg, &store);
    }
}
