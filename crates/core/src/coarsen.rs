//! The parallel coarsening loop (Section IV-E, first half): repeat
//! { parallel SCLP clustering → parallel contraction } until the global
//! graph is small enough.

use crate::config::ParhipConfig;
use crate::contract::{parallel_contract, query_owner_values};
use pgp_dmp::collectives::allreduce;
use pgp_dmp::{Comm, DistGraph};
use pgp_graph::ids;
use pgp_graph::Node;
use pgp_lp::par::{parallel_sclp_cluster_with_scratch, singleton_labels, SclpScratch};
use pgp_obs::LevelMetrics;

/// One level of the distributed hierarchy.
pub struct ParLevel {
    /// The graph at this level (this PE's part).
    pub graph: DistGraph,
    /// Fine→coarse mapping for this level's owned + ghost nodes (global
    /// coarse IDs); empty for the coarsest level.
    pub mapping: Vec<Node>,
}

/// A distributed multilevel hierarchy (finest first). The coarsest level's
/// `mapping` is empty.
pub struct ParHierarchy {
    /// The levels, finest first.
    pub levels: Vec<ParLevel>,
}

impl ParHierarchy {
    /// The coarsest level's graph.
    pub fn coarsest(&self) -> &DistGraph {
        &self.levels.last().expect("non-empty").graph
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

/// Runs the coarsening loop for V-cycle `cycle`. `constraint`, when given,
/// holds the current partition's block for every owned + ghost node of the
/// finest graph (V-cycles; §IV-D) and is projected down level by level.
pub fn parallel_coarsen(
    comm: &Comm,
    finest: DistGraph,
    cfg: &ParhipConfig,
    cycle: usize,
    constraint: Option<&[Node]>,
) -> ParHierarchy {
    let mut scratch = SclpScratch::new();
    parallel_coarsen_with_scratch(comm, finest, cfg, cycle, constraint, &mut scratch)
}

/// As [`parallel_coarsen`], drawing SCLP working memory from `scratch`.
/// Threading one scratch through all V-cycles lets the finest level (the
/// same graph every cycle) reuse its cached degree order.
pub fn parallel_coarsen_with_scratch(
    comm: &Comm,
    finest: DistGraph,
    cfg: &ParhipConfig,
    cycle: usize,
    constraint: Option<&[Node]>,
    scratch: &mut SclpScratch,
) -> ParHierarchy {
    let stop = cfg.stop_size();
    let mut levels: Vec<ParLevel> = Vec::new();
    let mut current = finest;
    let mut cur_constraint: Option<Vec<Node>> = constraint.map(|c| c.to_vec());

    loop {
        if current.n_global() <= stop {
            break;
        }
        // Per-level soft bound: U = max(max node weight, Lmax / f).
        let local_max_w = (0..ids::node_of_index(current.n_local()))
            .map(|v| current.node_weight(v))
            .max()
            .unwrap_or(1);
        let max_w = allreduce(comm, local_max_w, |a, b| a.max(b));
        let u = cfg.u_bound(current.total_node_weight(), max_w, cycle);

        let mut labels = singleton_labels(&current);
        {
            let _span = comm.recorder().span("cluster");
            parallel_sclp_cluster_with_scratch(
                comm,
                &current,
                u,
                cfg.coarsen_iterations,
                cfg.seed.wrapping_add(
                    ids::count_global(levels.len()) * 0x51CE + ids::count_global(cycle),
                ),
                &mut labels,
                cur_constraint.as_deref(),
                scratch,
            );
        }
        let c = parallel_contract(comm, &current, &labels);

        // Stall detection (the paper stops when contraction is no longer
        // effective; with cluster contraction this is rare but possible on
        // e.g. expanders at tiny sizes).
        if c.coarse.n_global() * 20 > current.n_global() * 19 {
            break;
        }

        // Shape of the level this contraction produced (no collectives:
        // the global counts are already group-agreed in the DistGraph).
        comm.recorder().record_level(LevelMetrics::at(
            cycle,
            levels.len(),
            c.coarse.n_global(),
            c.coarse.m_global(),
            ids::count_global(c.coarse.n_local()),
            ids::count_global(c.coarse.n_ghost()),
        ));

        // Project the constraint: the coarse node inherits its members'
        // shared block. Resolve for owned + ghost coarse nodes via owners.
        cur_constraint = match &cur_constraint {
            None => None,
            Some(cons) => {
                // Every owned coarse node's block is known from any member;
                // collect local members' votes, then query owners for the
                // blocks of all coarse nodes we can see.
                let coarse_dist = c.coarse.dist();
                let first = coarse_dist.first(comm.rank());
                let n_owned = coarse_dist.count(comm.rank());
                let mut owned_block = vec![Node::MAX; n_owned];
                // Send (coarse id, block) votes from fine members to owners.
                let mut votes: Vec<Vec<(Node, Node)>> = vec![Vec::new(); comm.size()];
                #[allow(clippy::needless_range_loop)] // local id indexes two arrays
                for v in 0..current.n_local() {
                    let cid = c.mapping[v];
                    votes[coarse_dist.owner(cid)].push((cid, cons[v]));
                }
                for (cid, b) in pgp_dmp::collectives::alltoallv(comm, votes)
                    .into_iter()
                    .flatten()
                {
                    owned_block[ids::global_index(ids::node_global(cid) - first)] = b;
                }
                // Now fetch blocks for every coarse node visible here
                // (owned + ghost), aligned with local IDs.
                let all_ids: Vec<Node> =
                    (0..ids::node_of_index(c.coarse.n_local() + c.coarse.n_ghost()))
                        .map(|l| c.coarse.local_to_global(l))
                        .collect();
                let blocks =
                    query_owner_values(comm, coarse_dist, &all_ids, |idx| owned_block[idx]);
                debug_assert!(blocks.iter().all(|&b| b != Node::MAX));
                Some(blocks)
            }
        };

        levels.push(ParLevel {
            graph: current,
            mapping: c.mapping,
        });
        current = c.coarse;
    }
    levels.push(ParLevel {
        graph: current,
        mapping: Vec::new(),
    });
    ParHierarchy { levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphClass;
    use pgp_dmp::run;

    #[test]
    fn coarsens_sbm_below_stop_size() {
        let (g, _) = pgp_gen::sbm::sbm(1500, pgp_gen::sbm::SbmParams::default(), 1);
        let mut cfg = ParhipConfig::fast(2, GraphClass::Social, 3);
        cfg.coarsest_nodes_per_block = 60;
        let depths = run(4, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let h = parallel_coarsen(comm, dg, &cfg, 0, None);
            (h.depth(), h.coarsest().n_global())
        });
        for &(depth, coarsest_n) in &depths {
            assert!(depth >= 2, "no coarsening happened");
            assert!(coarsest_n <= 400, "coarsest still has {coarsest_n} nodes");
        }
        // All PEs agree on the shape.
        assert!(depths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn node_weight_is_conserved_across_levels() {
        let g = pgp_gen::mesh::grid2d(20, 20);
        let mut cfg = ParhipConfig::fast(2, GraphClass::Social, 5);
        cfg.coarsest_nodes_per_block = 30;
        run(3, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let total = dg.total_node_weight();
            let h = parallel_coarsen(comm, dg, &cfg, 0, None);
            for level in &h.levels {
                assert_eq!(level.graph.total_node_weight(), total);
            }
        });
    }

    #[test]
    fn paper_mesh_factor_freezes_tiny_inputs() {
        // With the paper's literal f = 20000 at laptop scale, U collapses
        // to the max node weight (1) and no node can join another cluster:
        // stall detection stops coarsening immediately. This is exactly why
        // the default mesh bound is an absolute cluster weight instead
        // (see ParhipConfig::mesh_first_cluster_weight).
        let g = pgp_gen::mesh::grid2d(12, 12);
        let mut cfg = ParhipConfig::fast(2, GraphClass::Mesh, 1);
        cfg.mesh_first_cluster_weight = 1;
        cfg.coarsest_nodes_per_block = 10;
        run(2, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let h = parallel_coarsen(comm, dg, &cfg, 0, None);
            assert_eq!(
                h.depth(),
                1,
                "unit-weight mesh must not coarsen at f = 20000"
            );
        });
    }

    #[test]
    fn scaled_mesh_factor_coarsens_with_small_clusters() {
        let g = pgp_gen::mesh::grid2d(24, 24);
        let mut cfg = ParhipConfig::fast(2, GraphClass::Mesh, 1);
        cfg.coarsest_nodes_per_block = 40;
        run(2, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let total = dg.total_node_weight();
            let u = cfg.u_bound(total, 1, 0);
            assert!(u >= 2, "scaled factor must allow clustering, U = {u}");
            let h = parallel_coarsen(comm, dg, &cfg, 0, None);
            assert!(h.depth() >= 2, "mesh should coarsen with the scaled factor");
        });
    }

    #[test]
    fn constraint_survives_projection() {
        let (g, _) = pgp_gen::sbm::sbm(600, pgp_gen::sbm::SbmParams::default(), 2);
        let mut cfg = ParhipConfig::fast(2, GraphClass::Social, 9);
        cfg.coarsest_nodes_per_block = 40;
        run(3, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            // Parity constraint by global ID.
            let cons: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                .map(|l| dg.local_to_global(l) % 2)
                .collect();
            let h = parallel_coarsen(comm, dg, &cfg, 1, Some(&cons));
            // With a parity constraint no cluster mixes classes; detailed
            // purity is asserted by the sequential constraint tests — here
            // we check the parallel path still coarsens under it.
            assert!(h.depth() >= 2);
        });
    }
}
