//! Parallel contraction and uncoarsening (Section IV-C).
//!
//! Cluster IDs after label propagation are arbitrarily distributed in
//! `0..n`. The contraction algorithm:
//!
//! 1. Every PE sends the distinct cluster IDs of its local nodes to the
//!    PE *responsible* for that ID range (`Ip` intervals).
//! 2. Responsible PEs count their distinct IDs; a prefix sum (`exscan`)
//!    over those counts yields the renumbering `q` onto a contiguous
//!    interval, and a reduction yields the coarse node count `n'`.
//! 3. PEs query `q` for every cluster ID they hold (their own nodes' and
//!    their ghosts'), which gives the fine→coarse mapping `C`.
//! 4. Each PE builds its local weighted quotient arcs by hashing and sends
//!    each arc `(cu, cv, w)` — and each node-weight contribution — to the
//!    PE owning `cu` in the coarse block distribution.
//! 5. Owners aggregate and assemble their coarse subgraph.
//!
//! Uncoarsening answers "which block is my coarse representative in" with
//! one query/answer `alltoallv` round-trip, also per the paper.

use pgp_dmp::collectives::{allreduce_sum, alltoallv, exscan_sum};
use pgp_dmp::dgraph::BlockDist;
use pgp_dmp::{Comm, DistGraph};
use pgp_graph::ids;
use pgp_graph::{Node, Weight};
use rustc_hash::FxHashMap;

/// Result of one parallel contraction step, from one PE's perspective.
pub struct ParContraction {
    /// The coarse distributed graph (this PE's part).
    pub coarse: DistGraph,
    /// `mapping[l] = global coarse node of fine local node l` — covers
    /// owned *and* ghost fine nodes (the paper propagates the mapping of
    /// ghosts from their owners; here it follows from ghost labels).
    pub mapping: Vec<Node>,
}

/// Generic owner lookup: resolves `value_of(local_index)` on the owner of
/// each queried global ID. `queries` may contain duplicates; the result is
/// aligned with `queries`.
pub fn query_owner_values<T: Clone + pgp_dmp::Wire>(
    comm: &Comm,
    dist: BlockDist,
    queries: &[Node],
    value_of: impl Fn(usize) -> T,
) -> Vec<T> {
    let p = comm.size();
    let mut buckets: Vec<Vec<Node>> = vec![Vec::new(); p];
    let mut origin: Vec<(usize, usize)> = Vec::with_capacity(queries.len());
    for &g in queries {
        let owner = dist.owner(g);
        origin.push((owner, buckets[owner].len()));
        buckets[owner].push(g);
    }
    let incoming = alltoallv(comm, buckets);
    let answers: Vec<Vec<T>> = incoming
        .into_iter()
        .map(|qs| {
            qs.into_iter()
                .map(|g| {
                    let first = dist.first(comm.rank());
                    value_of(ids::global_index(ids::node_global(g) - first))
                })
                .collect()
        })
        .collect();
    let replies = alltoallv(comm, answers);
    origin
        .into_iter()
        .map(|(owner, idx)| replies[owner][idx].clone())
        .collect()
}

/// Contracts `graph` according to `labels` (global cluster IDs for owned +
/// ghost nodes, as produced by the parallel SCLP).
pub fn parallel_contract(comm: &Comm, graph: &DistGraph, labels: &[Node]) -> ParContraction {
    let _span = comm.recorder().span("contract");
    let n_local = graph.n_local();
    let n_all = n_local + graph.n_ghost();
    assert_eq!(labels.len(), n_all, "labels must cover owned + ghost nodes");
    let p = comm.size();
    let fine_dist = graph.dist();

    // -- Step 1: distinct local cluster IDs to their responsible PEs. -----
    let mut local_ids: Vec<Node> = labels[..n_local].to_vec();
    local_ids.sort_unstable();
    local_ids.dedup();
    let mut to_resp: Vec<Vec<Node>> = vec![Vec::new(); p];
    for &c in &local_ids {
        to_resp[fine_dist.owner(c)].push(c);
    }
    let received = alltoallv(comm, to_resp);

    // -- Step 2: count distinct IDs in my responsibility interval; build q.
    let mut my_ids: Vec<Node> = received.into_iter().flatten().collect();
    my_ids.sort_unstable();
    my_ids.dedup();
    let my_count = ids::count_global(my_ids.len());
    let offset = exscan_sum(comm, my_count);
    let n_coarse = allreduce_sum(comm, my_count);
    let q: FxHashMap<Node, Node> = my_ids
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, ids::global_node(offset + ids::count_global(i))))
        .collect();

    // -- Step 3: resolve C(v) = q(label(v)) for every local + ghost node.
    // (Not `query_owner_values`: q is keyed by cluster ID on the
    // *responsible* PE, not by owned-node index.)
    let mut want: Vec<Node> = labels.to_vec();
    want.sort_unstable();
    want.dedup();
    let q_of: Vec<Node> = {
        // Send the wanted IDs to responsible PEs; they answer from `q`.
        let mut buckets: Vec<Vec<Node>> = vec![Vec::new(); p];
        let mut origin: Vec<(usize, usize)> = Vec::with_capacity(want.len());
        for &c in &want {
            let owner = fine_dist.owner(c);
            origin.push((owner, buckets[owner].len()));
            buckets[owner].push(c);
        }
        let incoming = alltoallv(comm, buckets);
        let answers: Vec<Vec<Node>> = incoming
            .into_iter()
            .map(|qs| qs.into_iter().map(|c| q[&c]).collect())
            .collect();
        let replies = alltoallv(comm, answers);
        origin
            .into_iter()
            .map(|(owner, idx)| replies[owner][idx])
            .collect()
    };
    let q_map: FxHashMap<Node, Node> = want.iter().copied().zip(q_of).collect();
    let mapping: Vec<Node> = labels.iter().map(|c| q_map[c]).collect();

    // -- Step 4: local quotient arcs + weight contributions, redistributed
    //    to the coarse owners.
    let coarse_dist = BlockDist::new(n_coarse, p);
    let mut arc_agg: FxHashMap<(Node, Node), Weight> = FxHashMap::default();
    for u in 0..ids::node_of_index(n_local) {
        let cu = mapping[ids::node_index(u)];
        for (v, w) in graph.neighbors(u) {
            let cv = mapping[ids::node_index(v)];
            if cu != cv {
                *arc_agg.entry((cu, cv)).or_insert(0) += w;
            }
        }
    }
    let mut weight_agg: FxHashMap<Node, Weight> = FxHashMap::default();
    for u in 0..ids::node_of_index(n_local) {
        *weight_agg.entry(mapping[ids::node_index(u)]).or_insert(0) += graph.node_weight(u);
    }
    let mut arc_sends: Vec<Vec<(Node, Node, Weight)>> = vec![Vec::new(); p];
    for (&(cu, cv), &w) in &arc_agg {
        arc_sends[coarse_dist.owner(cu)].push((cu, cv, w));
    }
    let mut weight_sends: Vec<Vec<(Node, Weight)>> = vec![Vec::new(); p];
    for (&c, &w) in &weight_agg {
        weight_sends[coarse_dist.owner(c)].push((c, w));
    }
    let arc_recv = alltoallv(comm, arc_sends);
    let weight_recv = alltoallv(comm, weight_sends);

    // -- Step 5: aggregate owned arcs/weights and assemble the subgraph.
    let mut arcs: Vec<(Node, Node, Weight)> = arc_recv.into_iter().flatten().collect();
    arcs.sort_unstable();
    let mut merged: Vec<(Node, Node, Weight)> = Vec::with_capacity(arcs.len());
    for (cu, cv, w) in arcs {
        match merged.last_mut() {
            Some((lu, lv, lw)) if *lu == cu && *lv == cv => *lw += w,
            _ => merged.push((cu, cv, w)),
        }
    }
    let first = coarse_dist.first(comm.rank());
    let n_owned = coarse_dist.count(comm.rank());
    let mut owned_weights: Vec<Weight> = vec![0; n_owned];
    for (c, w) in weight_recv.into_iter().flatten() {
        owned_weights[ids::global_index(ids::node_global(c) - first)] += w;
    }
    let coarse = DistGraph::from_arcs(comm, n_coarse, owned_weights, merged);
    #[cfg(feature = "validate")]
    {
        crate::validate::assert_graph_valid(comm, &coarse, "parallel_contract coarse graph");
        crate::validate::assert_contraction_valid(comm, graph, &coarse, &mapping);
    }
    ParContraction { coarse, mapping }
}

/// Parallel uncoarsening: every fine PE asks the owners of its coarse
/// representatives for their block IDs. `coarse_blocks` covers the coarse
/// graph's owned nodes on this PE; `mapping` is the fine→coarse mapping
/// from [`parallel_contract`]. Returns fine block IDs covering owned +
/// ghost fine nodes.
pub fn parallel_project_blocks(
    comm: &Comm,
    coarse: &DistGraph,
    mapping: &[Node],
    coarse_blocks: &[Node],
) -> Vec<Node> {
    assert_eq!(
        coarse_blocks.len(),
        coarse.n_local(),
        "one block per owned coarse node"
    );
    let mut want: Vec<Node> = mapping.to_vec();
    want.sort_unstable();
    want.dedup();
    let answers = query_owner_values(comm, coarse.dist(), &want, |idx| coarse_blocks[idx]);
    let block_of: FxHashMap<Node, Node> = want.into_iter().zip(answers).collect();
    mapping.iter().map(|c| block_of[c]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgp_dmp::run;
    use pgp_graph::{contract_clustering, CsrGraph};

    /// Sequential/parallel contraction equivalence on a fixed clustering.
    fn check_equivalence(g: &CsrGraph, clustering: &[Node], p: usize) {
        let seq = contract_clustering(g, clustering);
        let gathered = run(p, |comm| {
            let dg = DistGraph::from_global(comm, g);
            let labels: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                .map(|l| clustering[dg.local_to_global(l) as usize])
                .collect();
            let c = parallel_contract(comm, &dg, &labels);
            (c.coarse.gather_global(comm), c.mapping)
        });
        for (coarse_global, _) in &gathered {
            assert_eq!(coarse_global.n(), seq.coarse.n(), "coarse node count");
            assert_eq!(coarse_global.m(), seq.coarse.m(), "coarse edge count");
            assert_eq!(
                coarse_global.total_edge_weight(),
                seq.coarse.total_edge_weight(),
                "coarse edge weight"
            );
            assert_eq!(
                coarse_global.total_node_weight(),
                seq.coarse.total_node_weight(),
                "coarse node weight"
            );
            // The renumbering is identical (both are label-order dense).
            assert_eq!(coarse_global, &seq.coarse);
        }
    }

    #[test]
    fn matches_sequential_contraction_on_sbm() {
        let (g, _) = pgp_gen::sbm::sbm(300, pgp_gen::sbm::SbmParams::default(), 3);
        let clustering = pgp_lp::sclp_cluster(&g, 40, 5, 1);
        for p in [1, 2, 3, 5] {
            check_equivalence(&g, &clustering, p);
        }
    }

    #[test]
    fn matches_sequential_contraction_on_grid() {
        let g = pgp_gen::mesh::grid2d(12, 12);
        let clustering = pgp_lp::sclp_cluster(&g, 12, 4, 7);
        check_equivalence(&g, &clustering, 4);
    }

    #[test]
    fn identity_clustering_keeps_graph() {
        let g = pgp_gen::mesh::grid2d(6, 6);
        let clustering: Vec<Node> = g.nodes().collect();
        check_equivalence(&g, &clustering, 3);
    }

    #[test]
    fn mapping_is_consistent_across_pes() {
        let g = pgp_gen::mesh::grid2d(8, 8);
        let clustering = pgp_lp::sclp_cluster(&g, 8, 4, 2);
        let results = run(4, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let labels: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                .map(|l| clustering[dg.local_to_global(l) as usize])
                .collect();
            let c = parallel_contract(comm, &dg, &labels);
            // Report (fine global id, coarse id) pairs for owned nodes.
            (0..dg.n_local())
                .map(|l| (dg.local_to_global(l as Node), c.mapping[l]))
                .collect::<Vec<_>>()
        });
        // Two fine nodes in the same cluster must map to the same coarse id,
        // regardless of which PE owned them.
        let mut by_cluster: std::collections::HashMap<Node, Node> =
            std::collections::HashMap::new();
        for pairs in results {
            for (fine, coarse) in pairs {
                let cl = clustering[fine as usize];
                if let Some(&prev) = by_cluster.get(&cl) {
                    assert_eq!(prev, coarse, "cluster {cl} split across coarse ids");
                } else {
                    by_cluster.insert(cl, coarse);
                }
            }
        }
    }

    #[test]
    fn project_blocks_roundtrip() {
        let g = pgp_gen::mesh::grid2d(10, 10);
        let clustering = pgp_lp::sclp_cluster(&g, 10, 4, 5);
        let fine_blocks = run(4, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let labels: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                .map(|l| clustering[dg.local_to_global(l) as usize])
                .collect();
            let c = parallel_contract(comm, &dg, &labels);
            // Color coarse nodes by parity of their global coarse ID.
            let coarse_blocks: Vec<Node> = (0..c.coarse.n_local() as Node)
                .map(|l| c.coarse.local_to_global(l) % 2)
                .collect();
            let fine = parallel_project_blocks(comm, &c.coarse, &c.mapping, &coarse_blocks);
            (0..dg.n_local())
                .map(|l| (dg.local_to_global(l as Node), fine[l], c.mapping[l]))
                .collect::<Vec<_>>()
        });
        for pes in fine_blocks {
            for (_fine, block, coarse) in pes {
                assert_eq!(block, coarse % 2);
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pgp_dmp::run;
    use pgp_graph::{contract_clustering, GraphBuilder};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Parallel contraction equals sequential contraction for arbitrary
        /// graphs, clusterings, and PE counts.
        #[test]
        fn parallel_equals_sequential(
            n in 4usize..36,
            edges in proptest::collection::vec((0u32..36, 0u32..36, 1u64..4), 2..120),
            labels in proptest::collection::vec(0u32..36, 36),
            p in 1usize..6,
        ) {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                b.push_edge(u % n as u32, v % n as u32, w);
            }
            let g = b.build();
            let clustering: Vec<Node> = (0..n).map(|v| labels[v] % n as u32).collect();
            let seq = contract_clustering(&g, &clustering);
            let gathered = run(p, |comm| {
                let dg = DistGraph::from_global(comm, &g);
                let l: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                    .map(|x| clustering[dg.local_to_global(x) as usize])
                    .collect();
                parallel_contract(comm, &dg, &l).coarse.gather_global(comm)
            });
            for cg in gathered {
                prop_assert_eq!(&cg, &seq.coarse);
            }
        }
    }
}
