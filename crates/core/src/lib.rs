//! **ParHIP reproduction** — the overall parallel system of *Parallel
//! Graph Partitioning for Complex Networks* (Meyerhenke, Sanders, Schulz;
//! IPDPS 2015).
//!
//! The system partitions a graph into `k` blocks of near-equal weight
//! minimizing the edge cut, on `p` message-passing PEs:
//!
//! 1. **Parallel coarsening** ([`coarsen`]): size-constrained label
//!    propagation clusters the distributed graph; [`contract`] implements
//!    the parallel contraction of Section IV-C (distinct-ID counting,
//!    prefix-sum renumbering, quotient-edge redistribution). Repeated
//!    until `~10 000·k`-scaled nodes remain.
//! 2. **Initial partitioning**: the coarsest graph is replicated and
//!    handed to the distributed evolutionary algorithm KaFFPaE
//!    (`pgp-evo`).
//! 3. **Parallel uncoarsening** ([`partitioner`]): block lookups from
//!    coarse owners project the solution up; `r` rounds of parallel SCLP
//!    refinement (`pgp-lp`) improve it per level.
//! 4. **Iterated V-cycles** re-enter the pipeline with the current
//!    partition as a clustering constraint (cut edges survive coarsening)
//!    and as a seed individual for the evolutionary algorithm.
//!
//! Entry point: [`partition_parallel`] (shared-input convenience) or
//! [`parhip_distributed`] (SPMD style, inside a `pgp_dmp::run` closure).
//!
//! ```
//! use parhip::{partition_parallel, GraphClass, ParhipConfig};
//! let (g, _) = pgp_gen::sbm::sbm(600, Default::default(), 7);
//! let mut cfg = ParhipConfig::fast(4, GraphClass::Social, 42);
//! cfg.coarsest_nodes_per_block = 50;
//! let (partition, stats) = partition_parallel(&g, 2, &cfg);
//! assert!(partition.validate(&g, 0.03).is_ok());
//! assert!(stats.levels >= 1);
//! ```

pub mod coarsen;
pub mod config;
pub mod contract;
pub mod partitioner;
#[cfg(feature = "validate")]
pub mod validate;

pub use coarsen::{parallel_coarsen, ParHierarchy, ParLevel};
pub use config::{CheckpointPolicy, GraphClass, ParhipConfig, Preset};
pub use contract::{parallel_contract, parallel_project_blocks, ParContraction};
pub use partitioner::{
    parhip_distributed, parhip_distributed_checkpointed, parhip_distributed_resume,
    parhip_distributed_supervised, parhip_distributed_with_input, partition_parallel,
    partition_parallel_observed, partition_parallel_resume, partition_parallel_supervised,
    partition_parallel_traced, partition_parallel_with_input, partition_parallel_with_obs,
    partition_parallel_with_store, CheckpointStore, LevelSummary, ParhipStats, RecoveryLimits,
    VCycleCheckpoint,
};
