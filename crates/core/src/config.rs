//! Configuration of the overall parallel system, with the paper's
//! *fast* / *eco* / *minimal* presets (Section V-A).

use pgp_graph::Weight;

/// Instance class — decides the first V-cycle's size-constraint factor
/// `f` (14 on social networks and web graphs, 20000 on meshes; §V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphClass {
    /// Social networks / web graphs.
    Social,
    /// Mesh-type networks.
    Mesh,
}

/// Named configuration presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// 3 LP iterations coarsening, 6 refinement; EA builds only the initial
    /// population; 2 V-cycles.
    Fast,
    /// Same iterations; EA gets an explicit budget (`t_p = t_1/p` in the
    /// paper, an operation budget here); 5 V-cycles.
    Eco,
    /// Fast with a single V-cycle — the variant used for the 16-second
    /// uk-2007 run.
    Minimal,
}

/// When the partitioner snapshots a [`crate::VCycleCheckpoint`]
/// (DESIGN.md §14). The default takes one at every V-cycle boundary —
/// the PR 3 behaviour; larger cadences trade checkpoint cost against
/// the work a recovery loses. Cadence affects *only* when snapshots are
/// taken, never the partition, so it is deliberately excluded from
/// [`ParhipConfig::fingerprint`]: a checkpoint written under one policy
/// may resume under another.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot after every `every_cycles`-th V-cycle (1 = every cycle).
    /// The final cycle is always snapshotted regardless, so a finished
    /// store holds the complete result. `0` is normalized to 1.
    pub every_cycles: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        Self { every_cycles: 1 }
    }
}

impl CheckpointPolicy {
    /// A policy snapshotting every `every_cycles`-th cycle boundary.
    pub fn every(every_cycles: usize) -> Self {
        Self { every_cycles }
    }

    /// Whether the boundary after 0-based `cycle` (of a run whose last
    /// cycle is `last_cycle`) takes a snapshot.
    pub fn take_at(&self, cycle: usize, last_cycle: usize) -> bool {
        cycle == last_cycle || (cycle + 1).is_multiple_of(self.every_cycles.max(1))
    }
}

/// Full configuration of [`crate::partition_parallel`].
#[derive(Clone, Debug)]
pub struct ParhipConfig {
    /// Number of blocks `k`.
    pub k: usize,
    /// Imbalance `ε` (paper default 3 %).
    pub eps: f64,
    /// Instance class (sets the first-cycle `f`).
    pub class: GraphClass,
    /// LP iterations per coarsening level (`ℓ`, paper: 3).
    pub coarsen_iterations: usize,
    /// LP iterations per refinement level (`r`, paper: 6).
    pub refine_iterations: usize,
    /// Number of V-cycles (fast 2, eco 5, minimal 1).
    pub vcycles: usize,
    /// Coarsening stops at `coarsest_nodes_per_block · k` global nodes.
    /// The paper uses 10 000; the laptop-scale default is 100 (same role,
    /// scaled with the inputs — see DESIGN.md).
    pub coarsest_nodes_per_block: usize,
    /// Evolutionary operations per PE after the initial population
    /// (0 = fast behaviour: initial population only).
    pub evo_operations: usize,
    /// Per-PE population size for KaFFPaE.
    pub population_size: usize,
    /// RNG seed; fixed seed + fixed `p` ⇒ deterministic result (rumor
    /// spreading is disabled when determinism matters — see
    /// `deterministic`).
    pub seed: u64,
    /// Disables wall-clock/rumor nondeterminism (rumor fanout 0).
    pub deterministic: bool,
    /// First-cycle size-constraint factor on social/web inputs (paper: 14).
    pub social_first_factor: f64,
    /// First-cycle cluster bound on mesh inputs, as an absolute weight.
    /// The paper's `f = 20 000` on inputs with up to 2^31 nodes yields
    /// clusters of a few hundred nodes; at laptop scale the same `Lmax/f`
    /// falls below one node and freezes coarsening, so we keep the paper's
    /// *cluster size* rather than its constant (see DESIGN.md §2).
    pub mesh_first_cluster_weight: Weight,
    /// Intra-PE worker threads for the hybrid SCLP (DESIGN.md §13).
    /// `1` (the default; `0` is treated the same) runs every PE
    /// single-threaded — bit-identical to the classic path. Any value
    /// ≥ 2 enables the chunked superstep path, whose result is fixed by
    /// `(seed, p)` and identical across all thread counts ≥ 2.
    pub threads_per_pe: usize,
    /// Checkpoint cadence for runs with a [`crate::CheckpointStore`]
    /// (DESIGN.md §14). Not part of the fingerprint: it never affects
    /// the partition.
    pub checkpoint: CheckpointPolicy,
    /// Comm transport carrying the run (DESIGN.md §15). Not part of the
    /// fingerprint: the cross-backend golden tests prove the partition is
    /// identical under either backend, and a checkpoint taken on threads
    /// must be resumable over sockets.
    pub backend: pgp_dmp::BackendKind,
}

impl ParhipConfig {
    /// Builds a preset configuration.
    pub fn preset(preset: Preset, k: usize, class: GraphClass, seed: u64) -> Self {
        let base = Self {
            k,
            eps: 0.03,
            class,
            coarsen_iterations: 3,
            refine_iterations: 6,
            vcycles: 2,
            coarsest_nodes_per_block: 100,
            evo_operations: 0,
            population_size: 3,
            seed,
            deterministic: false,
            social_first_factor: 14.0,
            mesh_first_cluster_weight: 32,
            threads_per_pe: 1,
            checkpoint: CheckpointPolicy::default(),
            backend: pgp_dmp::BackendKind::Threads,
        };
        match preset {
            Preset::Fast => base,
            Preset::Eco => Self {
                vcycles: 5,
                evo_operations: 4,
                population_size: 5,
                ..base
            },
            Preset::Minimal => Self { vcycles: 1, ..base },
        }
    }

    /// The paper's fast preset.
    pub fn fast(k: usize, class: GraphClass, seed: u64) -> Self {
        Self::preset(Preset::Fast, k, class, seed)
    }

    /// The paper's eco preset.
    pub fn eco(k: usize, class: GraphClass, seed: u64) -> Self {
        Self::preset(Preset::Eco, k, class, seed)
    }

    /// The paper's minimal preset.
    pub fn minimal(k: usize, class: GraphClass, seed: u64) -> Self {
        Self::preset(Preset::Minimal, k, class, seed)
    }

    /// The size-constraint factor `f` for V-cycle `cycle` (0-based): the
    /// class constant in the first cycle, `rnd ∈ [10, 25]` afterwards —
    /// derived from the seed + cycle so all PEs agree without
    /// communication.
    pub fn cluster_factor(&self, cycle: usize) -> f64 {
        if cycle == 0 {
            self.social_first_factor
        } else {
            let h = pgp_dmp::mix_seed(self.seed, 0xC0FFEE ^ cycle as u64);
            10.0 + (h % 1_000_000) as f64 / 1_000_000.0 * 15.0
        }
    }

    /// The soft cluster bound `U = max(max node weight, W)` for a given
    /// cycle, where `W = Lmax/f` — except in the first cycle on mesh
    /// inputs, where `W` is the absolute `mesh_first_cluster_weight` (the
    /// scaled stand-in for the paper's `f = 20 000`; see the field docs).
    pub fn u_bound(&self, total_weight: Weight, max_node_weight: Weight, cycle: usize) -> Weight {
        let w = if cycle == 0 && self.class == GraphClass::Mesh {
            self.mesh_first_cluster_weight
        } else {
            let l = pgp_graph::lmax(total_weight, self.k, self.eps);
            (l as f64 / self.cluster_factor(cycle)) as Weight
        };
        w.max(max_node_weight).max(1)
    }

    /// Global node count at which coarsening stops.
    pub fn stop_size(&self) -> u64 {
        (self.coarsest_nodes_per_block * self.k) as u64
    }

    /// 64-bit fingerprint of every result-affecting field. Checkpoint/
    /// restart refuses to resume a snapshot under a different configuration
    /// (a changed seed or iteration count would silently break the
    /// bit-identical replay guarantee — see DESIGN.md §9).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut mix = |x: u64| h = pgp_dmp::mix_seed(h, x);
        mix(self.k as u64);
        mix(self.eps.to_bits());
        mix(match self.class {
            GraphClass::Social => 1,
            GraphClass::Mesh => 2,
        });
        mix(self.coarsen_iterations as u64);
        mix(self.refine_iterations as u64);
        mix(self.vcycles as u64);
        mix(self.coarsest_nodes_per_block as u64);
        mix(self.evo_operations as u64);
        mix(self.population_size as u64);
        mix(self.seed);
        mix(u64::from(self.deterministic));
        mix(self.social_first_factor.to_bits());
        mix(self.mesh_first_cluster_weight);
        // Only the single-threaded vs. chunked distinction affects the
        // result; all worker counts ≥ 2 produce identical output, so a
        // checkpoint taken at threads_per_pe = 2 may resume at 4.
        mix(if self.threads_per_pe <= 1 { 1 } else { 2 });
        // `checkpoint` is deliberately NOT mixed: cadence decides when
        // snapshots happen, never what the partition is, and recovery
        // must be free to resume a checkpoint under a different cadence.
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_parameters() {
        let f = ParhipConfig::fast(2, GraphClass::Social, 1);
        assert_eq!(f.coarsen_iterations, 3);
        assert_eq!(f.refine_iterations, 6);
        assert_eq!(f.vcycles, 2);
        assert_eq!(f.evo_operations, 0);
        let e = ParhipConfig::eco(2, GraphClass::Social, 1);
        assert_eq!(e.vcycles, 5);
        assert!(e.evo_operations > 0);
        let m = ParhipConfig::minimal(2, GraphClass::Social, 1);
        assert_eq!(m.vcycles, 1);
    }

    #[test]
    fn first_cycle_bound_depends_on_class() {
        let s = ParhipConfig::fast(2, GraphClass::Social, 1);
        let m = ParhipConfig::fast(2, GraphClass::Mesh, 1);
        assert_eq!(s.cluster_factor(0), 14.0);
        // On a 100k-node unit-weight input: social clusters are large
        // (Lmax/14), mesh clusters are the small fixed size.
        assert!(s.u_bound(100_000, 1, 0) > 20 * m.u_bound(100_000, 1, 0));
        assert_eq!(m.u_bound(100_000, 1, 0), 32);
    }

    #[test]
    fn later_cycles_randomize_f_in_range() {
        let c = ParhipConfig::fast(2, GraphClass::Social, 77);
        for cycle in 1..6 {
            let f = c.cluster_factor(cycle);
            assert!((10.0..25.0).contains(&f), "f = {f}");
        }
        // Deterministic per (seed, cycle).
        assert_eq!(c.cluster_factor(3), c.cluster_factor(3));
    }

    #[test]
    fn fingerprint_normalizes_worker_counts() {
        let base = ParhipConfig::fast(4, GraphClass::Social, 9);
        let with_threads = |t: usize| ParhipConfig {
            threads_per_pe: t,
            ..base.clone()
        };
        // 0 and 1 are the same single-threaded path; every N ≥ 2 is the
        // same chunked path (checkpoints transfer between 2 and 4)...
        assert_eq!(with_threads(0).fingerprint(), with_threads(1).fingerprint());
        assert_eq!(with_threads(2).fingerprint(), with_threads(4).fingerprint());
        // ...but the two paths produce different results, so they must
        // not share a fingerprint.
        assert_ne!(with_threads(1).fingerprint(), with_threads(2).fingerprint());
    }

    #[test]
    fn checkpoint_cadence_is_excluded_from_fingerprint() {
        let base = ParhipConfig::fast(4, GraphClass::Social, 9);
        let every3 = ParhipConfig {
            checkpoint: CheckpointPolicy::every(3),
            ..base.clone()
        };
        // A snapshot written at cadence 1 must resume at cadence 3.
        assert_eq!(base.fingerprint(), every3.fingerprint());
    }

    #[test]
    fn checkpoint_policy_takes_cadence_and_last_cycle() {
        let every2 = CheckpointPolicy::every(2);
        // 5 cycles (last = 4): boundaries after cycles 1, 3, and — always
        // — the final cycle.
        let taken: Vec<usize> = (0..5).filter(|&c| every2.take_at(c, 4)).collect();
        assert_eq!(taken, vec![1, 3, 4]);
        // Default = every cycle (the PR 3 behaviour), 0 normalizes to 1.
        assert!((0..5).all(|c| CheckpointPolicy::default().take_at(c, 4)));
        assert!((0..5).all(|c| CheckpointPolicy::every(0).take_at(c, 4)));
    }

    #[test]
    fn u_bound_respects_max_node_weight() {
        let mut c = ParhipConfig::fast(4, GraphClass::Mesh, 1);
        c.mesh_first_cluster_weight = 1; // emulate the paper's literal
                                         // f = 20000 at tiny scale
                                         // The max node weight dominates a collapsed W.
        assert_eq!(c.u_bound(10_000, 17, 0), 17);
        // Social f = 14 with big total: the ratio dominates.
        let s = ParhipConfig::fast(4, GraphClass::Social, 1);
        assert!(s.u_bound(1_000_000, 1, 0) > 17_000);
    }
}
