//! Minimal JSON reader/writer helpers.
//!
//! The offline vendor set has no serde, so the report serializes by hand
//! (precedent: `crates/bench`'s hotpath JSON) and parses through this
//! small recursive-descent parser. Numbers keep their raw token so that
//! `u64` tags (up to 2^48 + collective blocks) survive a round trip
//! without going through `f64`.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (lossless for u64 tags).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral number token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number token.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'n') if self.eat_lit("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_lit("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(JsonValue::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u codepoint".to_string())?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (content bytes pass through).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits")
            .to_string();
        if raw.is_empty() || raw == "-" {
            return Err(format!("bad number at byte {start}"));
        }
        Ok(JsonValue::Num(raw))
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\"y", "d": null}, "e": true}"#;
        let v = JsonValue::parse(doc).expect("parse");
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(<[_]>::len), Some(3));
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_str),
            Some("x\"y")
        );
        assert_eq!(v.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn numbers_keep_u64_precision() {
        let tag = (1u64 << 48) + 65_536;
        let doc = format!("{{\"tag\": {tag}}}");
        let v = JsonValue::parse(&doc).expect("parse");
        assert_eq!(v.get("tag").and_then(JsonValue::as_u64), Some(tag));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{\"a\": }").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} x").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        let v = JsonValue::parse(&out).expect("parse");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}"));
    }
}
