//! Per-PE resource profiling: RSS, thread-CPU time, allocation counters.
//!
//! The semi-external roadmap item (ROADMAP.md item 3, grounded in
//! *(Semi-)External Algorithms for Graph Partitioning and Clustering*)
//! needs runs to *prove* a memory budget — peak RSS per PE in the run
//! artifacts, not an eyeballed `top`. This module supplies the sample
//! type the live telemetry plane publishes and the report embeds:
//!
//! - current/peak RSS from `/proc/self/status` (`VmRSS`/`VmHWM`) —
//!   process-wide on the threads backend (PEs share one address space;
//!   the per-PE value is an upper bound), per-process on the
//!   one-OS-process-per-PE backend where it is exact;
//! - thread-CPU seconds from `/proc/thread-self/stat` (utime+stime),
//!   moved here from `pgp-dmp::runner` so resource observation lives
//!   with the rest of the observability layer (`pgp-dmp` re-exports it
//!   for compatibility);
//! - allocation counters from the feature-gated counting global
//!   allocator (`count-alloc`): a zero-dependency wrapper over
//!   [`std::alloc::System`] that counts calls and bytes. Off by
//!   default — the counters read 0 and no allocator hook exists, so
//!   the hot path is untouched.
//!
//! Everything here degrades to zeros on platforms without `/proc`;
//! nothing panics.

use std::sync::atomic::{AtomicU64, Ordering};

/// One point-in-time resource measurement for one PE.
///
/// All fields are wall-clock/racy observations: the report serializer
/// zeroes them under `to_json(true)` exactly like span timings, so the
/// golden determinism tests are unaffected.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResourceSample {
    /// Current resident set size in KiB (`VmRSS`), 0 if unavailable.
    pub rss_current_kb: u64,
    /// Peak resident set size in KiB (`VmHWM`), 0 if unavailable.
    /// Monotone non-decreasing over a process lifetime.
    pub rss_peak_kb: u64,
    /// CPU seconds consumed by the sampling thread (utime + stime).
    pub thread_cpu_s: f64,
    /// Global allocation calls since process start (0 unless the
    /// `count-alloc` feature installed the counting allocator).
    pub allocs: u64,
    /// Bytes requested by those allocations (0 unless `count-alloc`).
    pub alloc_bytes: u64,
}

impl ResourceSample {
    /// Captures a sample for the calling thread. Cheap (two small
    /// `/proc` reads); intended for phase-boundary cadence, not inner
    /// loops.
    pub fn capture() -> Self {
        let (rss_current_kb, rss_peak_kb) = read_rss_kb();
        let (allocs, alloc_bytes) = alloc_counters();
        ResourceSample {
            rss_current_kb,
            rss_peak_kb,
            thread_cpu_s: thread_cpu_seconds(),
            allocs,
            alloc_bytes,
        }
    }
}

/// Reads `(VmRSS, VmHWM)` in KiB from `/proc/self/status`; `(0, 0)`
/// when unavailable (non-Linux, restricted /proc).
pub fn read_rss_kb() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let mut current = 0;
    let mut peak = 0;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            current = parse_kb(rest);
        } else if let Some(rest) = line.strip_prefix("VmHWM:") {
            peak = parse_kb(rest);
        }
    }
    (current, peak)
}

/// Parses the numeric part of a `/proc/self/status` "<n> kB" field.
fn parse_kb(rest: &str) -> u64 {
    rest.split_whitespace()
        .next()
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

/// CPU time consumed by the calling thread, in seconds. Linux-only
/// (`/proc/thread-self/stat`); returns 0.0 when unavailable.
pub fn thread_cpu_seconds() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/thread-self/stat") else {
        return 0.0;
    };
    // Fields 14 (utime) and 15 (stime) in clock ticks, counted after the
    // parenthesized comm field (which may contain spaces).
    let Some(rest) = stat.rsplit(')').next() else {
        return 0.0;
    };
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // rest begins at field 3 ("state"), so utime/stime are at 11/12.
    let (Some(ut), Some(st)) = (fields.get(11), fields.get(12)) else {
        return 0.0;
    };
    let ticks: f64 = ut.parse::<u64>().unwrap_or(0) as f64 + st.parse::<u64>().unwrap_or(0) as f64;
    ticks / clock_ticks_per_second()
}

/// `sysconf(_SC_CLK_TCK)`: the kernel's tick rate for `/proc` CPU-time
/// fields. Read once via `getconf CLK_TCK` (the workspace is `#![forbid
/// (unsafe_code)]`-adjacent in its algorithm crates and vendors no libc,
/// so the POSIX query goes through the standard utility instead of an
/// FFI call); falls back to 100, which is `USER_HZ` on every mainstream
/// Linux configuration — the kernel fixes the userspace-visible rate at
/// 100 regardless of the scheduler's internal `CONFIG_HZ`, so the
/// fallback is almost always exact rather than approximate.
fn clock_ticks_per_second() -> f64 {
    static CLK_TCK: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *CLK_TCK.get_or_init(|| {
        std::process::Command::new("getconf")
            .arg("CLK_TCK")
            .output()
            .ok()
            .and_then(|out| {
                if !out.status.success() {
                    return None;
                }
                String::from_utf8(out.stdout)
                    .ok()?
                    .trim()
                    .parse::<f64>()
                    .ok()
            })
            .filter(|&hz| hz > 0.0)
            .unwrap_or(100.0)
    })
}

/// Process-wide allocation call count (see [`CountingAlloc`]).
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
/// Process-wide allocated-byte count (see [`CountingAlloc`]).
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// `(calls, bytes)` allocated process-wide since start. Always readable;
/// stays `(0, 0)` unless the `count-alloc` feature installed
/// [`CountingAlloc`] as the global allocator.
pub fn alloc_counters() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// Counting global allocator: [`std::alloc::System`] plus two relaxed
/// atomic counters. Installed for the whole workspace when `pgp-obs` is
/// built with the `count-alloc` feature; costs two uncontended atomic
/// adds per allocation, which is why it is opt-in rather than default
/// (the hotpath A/B bench gates the default build's zero-overhead
/// claim).
#[cfg(feature = "count-alloc")]
pub struct CountingAlloc;

// SAFETY: a pure pass-through to `System` with counter side effects; it
// upholds `GlobalAlloc`'s contract because `System` does. The workspace
// denies `unsafe_code`; this feature-gated impl is the one sanctioned
// escape (an allocator cannot be implemented without it).
#[cfg(feature = "count-alloc")]
#[allow(unsafe_code)]
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed); // lint:relaxed-ok: monotone telemetry counter
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed); // lint:relaxed-ok: monotone telemetry counter
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed); // lint:relaxed-ok: monotone telemetry counter
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed); // lint:relaxed-ok: monotone telemetry counter
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(feature = "count-alloc")]
#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_nonzero_and_peak_dominates_current() {
        let (current, peak) = read_rss_kb();
        // On Linux (the only supported platform for /proc sampling) a
        // running test process has resident memory.
        assert!(current > 0, "VmRSS should be nonzero on Linux");
        assert!(peak >= current, "VmHWM must dominate VmRSS");
    }

    #[test]
    fn peak_rss_is_monotone_across_allocation() {
        let (_, peak_before) = read_rss_kb();
        // Touch ~8 MiB so the high-water mark cannot shrink and very
        // likely grows past any earlier peak.
        let block: Vec<u8> = (0..8 * 1024 * 1024).map(|i| (i % 251) as u8).collect();
        std::hint::black_box(&block);
        let (current, peak_after) = read_rss_kb();
        assert!(peak_after >= peak_before, "VmHWM went backwards");
        assert!(peak_after >= current);
        drop(block);
        // VmHWM is max(hiwater_rss, current-approximate-rss) and the
        // kernel's per-task rss counters are synced lazily, so the
        // reported peak can sag by a few pages after a free. Allow that
        // jitter; the live publisher clamps per-PE peaks monotone.
        let (_, peak_final) = read_rss_kb();
        assert!(
            peak_final + 4096 >= peak_after,
            "peak shrank past counter jitter: {peak_after} -> {peak_final}"
        );
    }

    #[test]
    fn capture_is_coherent() {
        let s = ResourceSample::capture();
        assert!(s.rss_peak_kb >= s.rss_current_kb);
        assert!(s.thread_cpu_s >= 0.0);
        // Allocation counters are 0 without `count-alloc`, and positive
        // with it; either way they never exceed the current globals.
        let (calls_now, bytes_now) = alloc_counters();
        assert!(s.allocs <= calls_now && s.alloc_bytes <= bytes_now);
    }

    #[test]
    fn thread_cpu_seconds_is_present_and_sane() {
        let t = thread_cpu_seconds();
        assert!((0.0..3600.0).contains(&t), "implausible cpu time {t}");
    }
}
