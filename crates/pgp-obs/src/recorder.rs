//! The per-PE recorder and the run-wide observation registry.
//!
//! ## Clock model
//!
//! All trace timestamps are nanoseconds since one *run epoch*: a
//! monotonic [`Instant`] owned by the [`Obs`] registry, rebased by the
//! universe right before the PE threads spawn ([`Obs::rebase_epoch`]),
//! so every PE of a run shares a single clock and cross-PE deltas
//! (collective skew, send→recv latency) are directly comparable. Each
//! [`Recorder`] caches the epoch origin at creation — reading a
//! timestamp is `Instant::now()` plus an atomic offset load, no lock.
//! On checkpoint resume the saved elapsed time is restored as the
//! epoch *offset* ([`Obs::set_epoch_offset_ns`]), so a resumed run's
//! timeline continues where the original left off instead of starting
//! over at zero.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::handoff::FlushSlot;
use crate::live::{AlertEvent, MetricSnapshot};
use crate::metrics::{LevelMetrics, PhaseStat, RefineMetrics, TagCounter, WaitHistogram};
use crate::report::{Aggregate, PeReport, RecoveryReport, RunReport, TagEntry, SCHEMA_VERSION};
use crate::resources::ResourceSample;
use crate::trace::{FaultKind, PeTrace, RunTrace, TraceEventKind, TraceRing};

/// Default per-PE trace ring capacity (events). Generous enough that
/// the tiny-to-small benchmark tiers never drop (dropping is counted,
/// not silent), small enough to bound memory at ~100 MB/PE worst case.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// Run-wide observation registry: one cell per PE.
///
/// Created once per observed run ([`Obs::new`], or [`Obs::with_trace`]
/// to also record event timelines); each PE thread gets a [`Recorder`]
/// handle onto its own cell via [`Obs::recorder`]. Cells are
/// single-writer — only the owning PE thread records — so the mutexes
/// are uncontended; [`Obs::report`] locks them after the PEs have
/// joined.
pub struct Obs {
    cells: Vec<Mutex<PeState>>,
    /// Seqlock progress slots, published at phase barriers and readable
    /// by external observers while the run is in flight.
    progress: Vec<FlushSlot>,
    /// Origin of the run's monotonic epoch (see the module docs).
    epoch_origin: Mutex<Instant>,
    /// Nanoseconds to add on top of the origin — nonzero after a
    /// checkpoint resume restored the original run's elapsed time.
    epoch_offset_ns: AtomicU64,
    /// Whether per-PE trace rings exist (uniform across PEs, so trace
    /// bookkeeping like sequence numbers cannot desync between peers).
    traced: bool,
    /// Recovery-supervisor counters, written by the supervisor between
    /// universe launches (no PE threads alive) and between the final
    /// join and [`Obs::report`]. All-zero for unsupervised runs.
    recovery: Mutex<RecoveryReport>,
    /// Comm-backend name ("threads" unless a group build overrides it),
    /// surfaced in the report so run artifacts record which transport ran.
    backend: Mutex<&'static str>,
    /// Latest live metric snapshot per PE, replaced wholesale at each
    /// publish. A mutex (not the progress seqlock) because publishes
    /// happen at phase boundaries — cold — and the monitor polls at
    /// human cadence; contention is negligible and a snapshot is too
    /// big for a word-pair seqlock anyway.
    live: Vec<Mutex<Option<MetricSnapshot>>>,
    /// Whether PEs publish live snapshots. Enabled before the group
    /// builds ([`Obs::enable_live`]); the disabled-observability path
    /// never reaches the check (the recorder `Option` gates first).
    live_enabled: AtomicBool,
    /// When set, each live publish also appends a length-prefixed frame
    /// to `frames-<rank>.bin` under this directory — the side channel
    /// the one-OS-process-per-PE backend uses, since its workers share
    /// no memory with the supervisor reading the slots.
    live_sink_dir: Mutex<Option<PathBuf>>,
    /// Alert events fired by the live monitor, in firing order;
    /// embedded in the report's `alerts` block.
    alerts: Mutex<Vec<AlertEvent>>,
}

/// All observations of one PE. Single-writer by the owning thread.
pub(crate) struct PeState {
    /// Open spans, innermost last.
    stack: Vec<OpenSpan>,
    /// Closed-span aggregates keyed by full path (`a/b/c`).
    pub(crate) phases: BTreeMap<String, PhaseStat>,
    /// Span exits whose name did not match the innermost open span;
    /// dropped rather than applied, counted here for the report.
    pub(crate) orphan_exits: u64,
    /// Messages/bytes sent, per tag.
    pub(crate) sent: BTreeMap<u64, TagCounter>,
    /// Messages/bytes received, per tag.
    pub(crate) recvd: BTreeMap<u64, TagCounter>,
    /// Messages/bytes dropped by fault injection, per tag.
    pub(crate) dropped: BTreeMap<u64, TagCounter>,
    /// Collective invocation counts by name.
    pub(crate) collectives: BTreeMap<&'static str, u64>,
    /// Receive-wait latency distribution (√2 log buckets + exact sum).
    pub(crate) recv_wait_hist: WaitHistogram,
    /// Receive-wait nanoseconds blamed on each awaited source PE
    /// (wildcard receives are not attributable and land only in the
    /// histogram).
    pub(crate) recv_wait_by_peer: BTreeMap<usize, u64>,
    /// Sends held in a limbo queue by fault injection.
    pub(crate) delayed: u64,
    /// Sends stalled (slept) by fault injection.
    pub(crate) stalled: u64,
    /// Per-level structural snapshots, in recording order.
    pub(crate) levels: Vec<LevelMetrics>,
    /// Per-refinement-pass quality snapshots, in recording order.
    pub(crate) refinements: Vec<RefineMetrics>,
    /// Running totals mirrored into the progress seqlock.
    msgs_sent_total: u64,
    bytes_sent_total: u64,
    /// V-cycle / level / round progress markers for live snapshots,
    /// set by the partitioner at phase boundaries
    /// ([`Recorder::set_progress`]).
    cycle: u32,
    level: u32,
    round: u32,
    /// Live snapshots published so far; becomes the snapshot `seq`.
    live_seq: u64,
    /// Lazily opened frame file (see [`Obs`] `live_sink_dir`).
    frame_file: Option<std::fs::File>,
    /// Most recent resource sample ([`Recorder::sample_resources`] or
    /// a live publish); embedded in the report's per-PE block.
    pub(crate) resources: ResourceSample,
    /// Event timeline, present when the registry was built with
    /// [`Obs::with_trace`].
    trace: Option<TraceRing>,
}

impl PeState {
    fn new(trace_capacity: Option<usize>) -> Self {
        Self {
            stack: Vec::new(),
            phases: BTreeMap::new(),
            orphan_exits: 0,
            sent: BTreeMap::new(),
            recvd: BTreeMap::new(),
            dropped: BTreeMap::new(),
            collectives: BTreeMap::new(),
            recv_wait_hist: WaitHistogram::default(),
            recv_wait_by_peer: BTreeMap::new(),
            delayed: 0,
            stalled: 0,
            levels: Vec::new(),
            refinements: Vec::new(),
            msgs_sent_total: 0,
            bytes_sent_total: 0,
            cycle: 0,
            level: 0,
            round: 0,
            live_seq: 0,
            frame_file: None,
            resources: ResourceSample::default(),
            trace: trace_capacity.map(TraceRing::new),
        }
    }
}

struct OpenSpan {
    /// Full path of this span (`parent_path/name`).
    path: String,
    /// Last path segment, for exit matching.
    name: &'static str,
    start: Instant,
}

impl Obs {
    /// A registry for a `p`-PE run (aggregate report only, no event
    /// timelines — the pre-trace behavior and cost).
    pub fn new(p: usize) -> Arc<Self> {
        Self::build(p, None)
    }

    /// A registry that additionally records per-PE event timelines,
    /// bounded at `capacity` events per PE (excess events are counted
    /// as dropped, newest first). Use [`DEFAULT_TRACE_CAPACITY`] unless
    /// you have a reason not to.
    pub fn with_trace(p: usize, capacity: usize) -> Arc<Self> {
        Self::build(p, Some(capacity))
    }

    fn build(p: usize, trace_capacity: Option<usize>) -> Arc<Self> {
        Arc::new(Self {
            cells: (0..p)
                .map(|_| Mutex::new(PeState::new(trace_capacity)))
                .collect(),
            progress: (0..p).map(|_| FlushSlot::new()).collect(),
            epoch_origin: Mutex::new(Instant::now()), // lint:instant-ok: trace epoch origin
            epoch_offset_ns: AtomicU64::new(0),
            traced: trace_capacity.is_some(),
            recovery: Mutex::new(RecoveryReport::default()),
            backend: Mutex::new("threads"),
            live: (0..p).map(|_| Mutex::new(None)).collect(),
            live_enabled: AtomicBool::new(false),
            live_sink_dir: Mutex::new(None),
            alerts: Mutex::new(Vec::new()),
        })
    }

    /// Records which comm backend drives this run ("threads", "sockets").
    /// The group build calls this once before any PE spawns.
    pub fn set_backend(&self, name: &'static str) {
        *self.backend.lock() = name;
    }

    /// Number of PEs this registry observes.
    pub fn p(&self) -> usize {
        self.cells.len()
    }

    /// Whether event timelines are being recorded.
    pub fn is_traced(&self) -> bool {
        self.traced
    }

    /// Turns on live snapshot publication ([`Recorder::publish_live`]).
    /// Call before the group builds; enabledness is uniform across the
    /// run's PEs like tracing.
    pub fn enable_live(&self) {
        self.live_enabled.store(true, Ordering::Release);
    }

    /// Whether PEs publish live snapshots.
    pub fn is_live(&self) -> bool {
        self.live_enabled.load(Ordering::Acquire)
    }

    /// Routes live publishes into per-rank telemetry frame files under
    /// `dir` (created on first publish) in addition to the shared
    /// slots — the side channel for one-OS-process-per-PE workers.
    pub fn set_live_sink_dir(&self, dir: PathBuf) {
        *self.live_sink_dir.lock() = Some(dir);
    }

    /// The latest live snapshot `rank` published, if any. Safe to call
    /// while the run is in flight (brief uncontended lock).
    pub fn live_snapshot(&self, rank: usize) -> Option<MetricSnapshot> {
        self.live[rank].lock().clone()
    }

    /// Name of the comm backend recorded for this run.
    pub fn backend_name(&self) -> &'static str {
        *self.backend.lock()
    }

    /// Records a fired alert: stored for the report's `alerts` block
    /// and, when tracing, pushed onto the blamed PE's trace ring as an
    /// `Alert` event (the one sanctioned cross-thread ring write — the
    /// monitor fires while the owner computes; the cell mutex makes it
    /// safe, and alert cadence is far too low to contend).
    pub fn record_alert(&self, alert: &AlertEvent) {
        self.alerts.lock().push(alert.clone());
        if self.traced && alert.pe < self.cells.len() {
            let mut cell = self.cells[alert.pe].lock();
            if let Some(ring) = &mut cell.trace {
                ring.push(
                    alert.epoch_ns,
                    TraceEventKind::Alert {
                        rule: alert.rule.clone(),
                        value_milli: (alert.value * 1000.0) as u64,
                    },
                );
            }
        }
    }

    /// Re-anchors the run epoch at "now". The universe calls this once
    /// at setup, before the PE threads spawn — recorders created after
    /// the rebase (all of them) share the new origin.
    pub fn rebase_epoch(&self) {
        *self.epoch_origin.lock() = Instant::now(); // lint:instant-ok: trace epoch rebase
    }

    /// Sets the epoch offset, giving resumed runs timeline continuity:
    /// pass the elapsed nanoseconds saved in the checkpoint and the
    /// resumed run's timestamps continue from there.
    pub fn set_epoch_offset_ns(&self, offset_ns: u64) {
        self.epoch_offset_ns.store(offset_ns, Ordering::Relaxed);
    }

    /// Nanoseconds elapsed on the run epoch (offset included). This is
    /// what checkpoints save for resume continuity.
    pub fn epoch_elapsed_ns(&self) -> u64 {
        let origin = *self.epoch_origin.lock();
        let since = Instant::now().saturating_duration_since(origin); // lint:instant-ok: trace epoch read
        self.epoch_offset_ns
            .load(Ordering::Relaxed)
            .saturating_add(u64::try_from(since.as_nanos()).unwrap_or(u64::MAX))
    }

    /// The recorder handle for `rank`'s cell.
    pub fn recorder(self: &Arc<Self>, rank: usize) -> Recorder {
        assert!(rank < self.cells.len(), "obs recorder rank out of range");
        Recorder {
            inner: Some(Inner {
                origin: *self.epoch_origin.lock(),
                traced: self.traced,
                obs: Arc::clone(self),
                rank,
            }),
        }
    }

    /// Sums the progress seqlocks: `(messages, bytes)` sent so far across
    /// all PEs, as of each PE's last phase barrier. Safe to call while the
    /// run is in flight (lock-free).
    pub fn progress(&self) -> (u64, u64) {
        let mut msgs = 0;
        let mut bytes = 0;
        for slot in &self.progress {
            let (m, b) = slot.snapshot();
            msgs += m;
            bytes += b;
        }
        (msgs, bytes)
    }

    /// Assembles the run report. Call after the PE threads have joined
    /// (open spans are not counted).
    pub fn report(&self) -> RunReport {
        let per_pe: Vec<PeReport> = self
            .cells
            .iter()
            .enumerate()
            .map(|(rank, cell)| PeReport::from_state(rank, &cell.lock()))
            .collect();
        let aggregate = Aggregate::from_per_pe(&per_pe);
        RunReport {
            schema_version: SCHEMA_VERSION,
            p: self.cells.len(),
            backend: (*self.backend.lock()).to_string(),
            per_pe,
            aggregate,
            recovery: self.recovery.lock().clone(),
            alerts: self.alerts.lock().clone(),
        }
    }

    /// Mutates the recovery counters in place. Called by the recovery
    /// supervisor between universe launches and by the partitioner's
    /// supervised wrapper to fill in `lost_cycles` after the run.
    pub fn record_recovery(&self, f: impl FnOnce(&mut RecoveryReport)) {
        f(&mut self.recovery.lock());
    }

    /// Assembles the event timelines, or `None` when the registry was
    /// built without tracing. Call after the PE threads have joined.
    pub fn trace(&self) -> Option<RunTrace> {
        if !self.traced {
            return None;
        }
        let per_pe: Vec<PeTrace> = self
            .cells
            .iter()
            .enumerate()
            .map(|(rank, cell)| {
                cell.lock()
                    .trace
                    .as_ref()
                    .expect("traced registry has rings")
                    .snapshot(rank)
            })
            .collect();
        Some(RunTrace {
            p: self.cells.len(),
            per_pe,
        })
    }
}

/// Handle through which one PE thread records observations.
///
/// A disabled recorder ([`Recorder::disabled`]) turns every hook into a
/// single `Option` branch — the hot path stays within noise. Enabledness
/// is uniform across a run (all PEs of a universe share it), so code may
/// gate extra *collective* work on [`Recorder::is_enabled`] without
/// risking an SPMD mismatch.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Inner>,
}

#[derive(Clone)]
struct Inner {
    /// Epoch origin cached at recorder creation (after the universe's
    /// rebase), so timestamps need no lock.
    origin: Instant,
    /// Cached [`Obs::is_traced`]; gates the extra `Instant::now()` per
    /// comm hook so report-only runs keep their pre-trace cost.
    traced: bool,
    obs: Arc<Obs>,
    rank: usize,
}

impl Inner {
    fn with<R>(&self, f: impl FnOnce(&mut PeState) -> R) -> R {
        f(&mut self.obs.cells[self.rank].lock())
    }

    /// Nanoseconds of `at` on the run epoch.
    fn ns_at(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.origin);
        self.obs
            .epoch_offset_ns
            .load(Ordering::Relaxed)
            .saturating_add(u64::try_from(since.as_nanos()).unwrap_or(u64::MAX))
    }

    /// Epoch-nanoseconds of "now" when tracing, else 0 (the value is
    /// only consumed by ring pushes, which are themselves trace-gated).
    fn trace_ts(&self) -> u64 {
        if self.traced {
            self.ns_at(Instant::now()) // lint:instant-ok: trace event timestamp
        } else {
            0
        }
    }
}

impl Recorder {
    /// The no-op recorder (observability off).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether observations are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether event timelines are being recorded (implies
    /// [`Recorder::is_enabled`]; uniform across a run's PEs).
    #[inline]
    pub fn is_traced(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.traced)
    }

    /// Nanoseconds elapsed on the run epoch; 0 when disabled. Cheap
    /// (no lock) — used for checkpoint epoch continuity.
    #[inline]
    pub fn epoch_elapsed_ns(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.ns_at(Instant::now()), // lint:instant-ok: trace epoch read
        }
    }

    /// Restores the run epoch offset from a checkpoint's saved elapsed
    /// time, so the resumed timeline continues rather than restarting
    /// at zero. Idempotent; every PE may call it with the same value.
    #[inline]
    pub fn resume_epoch(&self, elapsed_ns: u64) {
        if let Some(inner) = &self.inner {
            inner.obs.set_epoch_offset_ns(elapsed_ns);
        }
    }

    /// Opens a span; close it with the returned guard (or a matching
    /// [`Recorder::exit`]). Span names must not contain `/` — paths are
    /// `/`-joined.
    #[inline]
    pub fn span<'a>(&'a self, name: &'static str) -> SpanGuard<'a> {
        self.enter(name);
        SpanGuard { rec: self, name }
    }

    /// Opens a span without a guard. Prefer [`Recorder::span`]; this form
    /// exists for callers whose enter/exit points cannot share a scope
    /// (and for the nesting proptest, which drives arbitrary sequences).
    #[inline]
    pub fn enter(&self, name: &'static str) {
        if let Some(inner) = &self.inner {
            debug_assert!(!name.contains('/'), "span names must not contain '/'");
            let start = Instant::now(); // lint:instant-ok: span timing
            inner.with(|st| {
                let path = match st.stack.last() {
                    Some(top) => format!("{}/{name}", top.path),
                    None => name.to_string(),
                };
                if let Some(ring) = &mut st.trace {
                    ring.push(
                        inner.ns_at(start),
                        TraceEventKind::SpanOpen { path: path.clone() },
                    );
                }
                st.stack.push(OpenSpan { path, name, start });
            });
        }
    }

    /// Closes the innermost span if its name matches; a mismatch (orphan
    /// exit) is dropped and counted, never unwinds other spans.
    #[inline]
    pub fn exit(&self, name: &'static str) {
        if let Some(inner) = &self.inner {
            let now = Instant::now(); // lint:instant-ok: span timing
            inner.with(|st| match st.stack.last() {
                Some(top) if top.name == name => {
                    let span = st.stack.pop().expect("non-empty: just matched");
                    let elapsed = now.duration_since(span.start);
                    if let Some(ring) = &mut st.trace {
                        ring.push(
                            inner.ns_at(now),
                            TraceEventKind::SpanClose {
                                path: span.path.clone(),
                            },
                        );
                    }
                    let stat = st.phases.entry(span.path).or_default();
                    stat.count += 1;
                    // lint note: u128 -> u64 saturation; a span would need
                    // to stay open ~584 years to overflow.
                    stat.total_ns += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
                }
                _ => st.orphan_exits += 1,
            });
        }
    }

    /// Folds an **externally measured** duration into the phase
    /// aggregates as one closed span named `name`, nested under the
    /// currently open span path. Used for work done off the PE thread —
    /// e.g. the chunked SCLP's per-chunk compute spans, measured by the
    /// worker and recorded by the PE thread at the merge barrier (a
    /// worker cannot open a real span: concurrent chunks would interleave
    /// open/close events and break trace nesting). Phase stats only; no
    /// trace events are emitted.
    #[inline]
    pub fn record_phase_ns(&self, name: &'static str, elapsed_ns: u64) {
        if let Some(inner) = &self.inner {
            debug_assert!(!name.contains('/'), "span names must not contain '/'");
            inner.with(|st| {
                let path = match st.stack.last() {
                    Some(top) => format!("{}/{name}", top.path),
                    None => name.to_string(),
                };
                let stat = st.phases.entry(path).or_default();
                stat.count += 1;
                stat.total_ns += elapsed_ns;
            });
        }
    }

    /// Total recorded seconds of all closed spans whose final path
    /// segment equals `name` (e.g. `coarsen` matches `vcycle/coarsen`).
    pub fn phase_seconds(&self, name: &str) -> f64 {
        match &self.inner {
            None => 0.0,
            Some(inner) => inner.with(|st| {
                st.phases
                    .iter()
                    .filter(|(path, _)| path.rsplit('/').next() == Some(name))
                    .map(|(_, stat)| stat.total_ns as f64 / 1e9)
                    .sum()
            }),
        }
    }

    /// Counts one invocation of the named collective.
    #[inline]
    pub fn count_collective(&self, name: &'static str) {
        if let Some(inner) = &self.inner {
            inner.with(|st| *st.collectives.entry(name).or_insert(0) += 1);
        }
    }

    /// Counts a collective invocation *and* brackets it on the event
    /// timeline: a `CollectiveEnter` now, the matching `CollectiveExit`
    /// when the guard drops. Cross-PE deltas between the enter events
    /// of one invocation are the collective's arrival skew (see
    /// `RunTrace::collective_skews`).
    #[inline]
    pub fn collective_span<'a>(&'a self, name: &'static str) -> CollectiveGuard<'a> {
        if let Some(inner) = &self.inner {
            let ts = inner.trace_ts();
            inner.with(|st| {
                *st.collectives.entry(name).or_insert(0) += 1;
                if let Some(ring) = &mut st.trace {
                    ring.push(ts, TraceEventKind::CollectiveEnter { name });
                }
            });
        }
        CollectiveGuard { rec: self, name }
    }

    /// Records one sent message of `bytes` payload bytes to `dst` on
    /// `tag`.
    #[inline]
    pub fn on_send(&self, dst: usize, tag: u64, bytes: u64) {
        if let Some(inner) = &self.inner {
            let ts = inner.trace_ts();
            inner.with(|st| {
                st.sent.entry(tag).or_default().add(bytes);
                st.msgs_sent_total += 1;
                st.bytes_sent_total += bytes;
                if let Some(ring) = &mut st.trace {
                    let seq = ring.next_send_seq(dst, tag);
                    ring.push(
                        ts,
                        TraceEventKind::Send {
                            dst,
                            tag,
                            seq,
                            bytes,
                        },
                    );
                }
            });
        }
    }

    /// Records one received message of `bytes` payload bytes from
    /// `src` on `tag`.
    #[inline]
    pub fn on_recv(&self, src: usize, tag: u64, bytes: u64) {
        if let Some(inner) = &self.inner {
            let ts = inner.trace_ts();
            inner.with(|st| {
                st.recvd.entry(tag).or_default().add(bytes);
                if let Some(ring) = &mut st.trace {
                    let seq = ring.next_recv_seq(src, tag);
                    ring.push(
                        ts,
                        TraceEventKind::Recv {
                            src,
                            tag,
                            seq,
                            bytes,
                        },
                    );
                }
            });
        }
    }

    /// Records one message toward `dst` dropped by fault injection.
    #[inline]
    pub fn on_fault_drop(&self, dst: usize, tag: u64, bytes: u64) {
        if let Some(inner) = &self.inner {
            let ts = inner.trace_ts();
            inner.with(|st| {
                st.dropped.entry(tag).or_default().add(bytes);
                if let Some(ring) = &mut st.trace {
                    ring.push(
                        ts,
                        TraceEventKind::Fault {
                            kind: FaultKind::Drop,
                            peer: dst,
                            tag,
                            dur_ns: 0,
                        },
                    );
                }
            });
        }
    }

    /// Records one send toward `dst` held in a limbo queue by fault
    /// injection.
    #[inline]
    pub fn on_fault_delay(&self, dst: usize, tag: u64) {
        if let Some(inner) = &self.inner {
            let ts = inner.trace_ts();
            inner.with(|st| {
                st.delayed += 1;
                if let Some(ring) = &mut st.trace {
                    ring.push(
                        ts,
                        TraceEventKind::Fault {
                            kind: FaultKind::Delay,
                            peer: dst,
                            tag,
                            dur_ns: 0,
                        },
                    );
                }
            });
        }
    }

    /// Records one send toward `dst` stalled (slept `stall_ns`) by
    /// fault injection. The injected time gets its own `fault` event
    /// kind so chaos-run timelines show it on the *injecting* PE rather
    /// than blaming an innocent peer.
    #[inline]
    pub fn on_fault_stall(&self, dst: usize, tag: u64, stall_ns: u64) {
        if let Some(inner) = &self.inner {
            let ts = inner.trace_ts();
            inner.with(|st| {
                st.stalled += 1;
                if let Some(ring) = &mut st.trace {
                    ring.push(
                        ts,
                        TraceEventKind::Fault {
                            kind: FaultKind::Stall,
                            peer: dst,
                            tag,
                            dur_ns: stall_ns,
                        },
                    );
                }
            });
        }
    }

    /// Starts timing a receive wait for `tag` from `src` (`None` for
    /// wildcard receives). Returns `None` when disabled; pass the token
    /// to [`Recorder::end_wait`] once the message arrived.
    #[inline]
    pub fn start_wait(&self, src: Option<usize>, tag: u64) -> Option<WaitToken> {
        self.inner.as_ref().map(|_| WaitToken {
            start: Instant::now(), // lint:instant-ok: recv wait timing
            src,
            tag,
        })
    }

    /// Ends a receive wait started by [`Recorder::start_wait`]: the
    /// duration lands in the latency histogram, is blamed on the
    /// awaited peer, and (when tracing) becomes a `RecvWait` event
    /// stamped at the wait's end.
    #[inline]
    pub fn end_wait(&self, token: Option<WaitToken>) {
        if let (Some(inner), Some(token)) = (&self.inner, token) {
            let end = Instant::now(); // lint:instant-ok: recv wait timing
            let ns = u64::try_from(end.duration_since(token.start).as_nanos()).unwrap_or(u64::MAX);
            inner.with(|st| {
                st.recv_wait_hist.record(ns);
                if let Some(peer) = token.src {
                    *st.recv_wait_by_peer.entry(peer).or_insert(0) += ns;
                }
                if let Some(ring) = &mut st.trace {
                    ring.push(
                        inner.ns_at(end),
                        TraceEventKind::RecvWait {
                            src: token.src,
                            tag: token.tag,
                            wait_ns: ns,
                        },
                    );
                }
            });
        }
    }

    /// Records a per-level structural snapshot.
    #[inline]
    pub fn record_level(&self, level: LevelMetrics) {
        if let Some(inner) = &self.inner {
            inner.with(|st| st.levels.push(level));
        }
    }

    /// Records a per-refinement-pass quality snapshot.
    #[inline]
    pub fn record_refine(&self, refine: RefineMetrics) {
        if let Some(inner) = &self.inner {
            inner.with(|st| st.refinements.push(refine));
        }
    }

    /// Publishes this PE's running send totals into its progress seqlock.
    /// Called at phase barriers (`fresh_tag_block`); see [`FlushSlot`].
    #[inline]
    pub fn publish_progress(&self) {
        if let Some(inner) = &self.inner {
            let (msgs, bytes) = inner.with(|st| (st.msgs_sent_total, st.bytes_sent_total));
            inner.obs.progress[inner.rank].publish(msgs, bytes);
        }
    }

    /// Records V-cycle / level / round progress markers, carried by live
    /// snapshots so a monitor can say *where* in the algorithm each PE
    /// is. Called by the partitioner at phase boundaries (SPMD-uniform:
    /// every PE passes the same values at the same boundary).
    #[inline]
    pub fn set_progress(&self, cycle: u32, level: u32, round: u32) {
        if let Some(inner) = &self.inner {
            inner.with(|st| {
                st.cycle = cycle;
                st.level = level;
                st.round = round;
            });
        }
    }

    /// Updates only the round marker (see [`Recorder::set_progress`]).
    /// Called by the label-propagation round loop, which knows its round
    /// index but not the enclosing V-cycle/level coordinates.
    #[inline]
    pub fn set_round(&self, round: u32) {
        if let Some(inner) = &self.inner {
            inner.with(|st| st.round = round);
        }
    }

    /// Captures a resource sample on the calling thread and stores it as
    /// this PE's report-embedded sample. The runner calls this once when
    /// the PE's closure returns (live publishes also refresh it).
    pub fn sample_resources(&self) {
        if let Some(inner) = &self.inner {
            let mut sample = ResourceSample::capture();
            inner.with(|st| {
                // Same monotone clamp as publish_live: the kernel's VmHWM
                // can sag a few pages between reads, and a sagged sample
                // stored here would lower the clamp floor for the next
                // publish, letting published peaks go backwards.
                sample.rss_peak_kb = sample.rss_peak_kb.max(st.resources.rss_peak_kb);
                st.resources = sample;
            });
        }
    }

    /// Publishes a full live [`MetricSnapshot`] into this PE's shared
    /// slot (and, when a sink dir is set, its telemetry frame file).
    /// Called at phase barriers next to [`Recorder::publish_progress`]
    /// and once more when the PE's closure returns — which is why the
    /// final streamed snapshot equals the RunReport's counters exactly.
    /// No-op unless [`Obs::enable_live`] was called; the fully disabled
    /// path is still the recorder's single `Option` branch.
    pub fn publish_live(&self) {
        let Some(inner) = &self.inner else { return };
        if !inner.obs.is_live() {
            return;
        }
        let mut resources = ResourceSample::capture();
        let epoch_ns = inner.ns_at(Instant::now()); // lint:instant-ok: live snapshot timestamp
        let recovery = inner.obs.recovery.lock().clone();
        let snap = inner.with(|st| {
            st.live_seq += 1;
            // The kernel's VmHWM can sag a few pages between reads (the
            // per-task rss counters sync lazily); clamp so published
            // peaks are monotone per PE, as the stream validator checks.
            resources.rss_peak_kb = resources.rss_peak_kb.max(st.resources.rss_peak_kb);
            st.resources = resources;
            MetricSnapshot {
                rank: inner.rank,
                seq: st.live_seq,
                epoch_ns,
                phase_path: st.stack.last().map(|s| s.path.clone()).unwrap_or_default(),
                cycle: st.cycle,
                level: st.level,
                round: st.round,
                msgs_sent: st.msgs_sent_total,
                bytes_sent: st.bytes_sent_total,
                msgs_recvd: st.recvd.values().map(|c| c.msgs).sum(),
                bytes_recvd: st.recvd.values().map(|c| c.bytes).sum(),
                sent_by_tag: tag_entries(&st.sent),
                recvd_by_tag: tag_entries(&st.recvd),
                recv_wait_count: st.recv_wait_hist.count,
                recv_wait_p50_ns: st.recv_wait_hist.quantile_ns(0.50),
                recv_wait_p95_ns: st.recv_wait_hist.quantile_ns(0.95),
                last_cut: st.refinements.last().map(|r| r.cut).unwrap_or(0),
                last_imbalance: st.refinements.last().map(|r| r.imbalance).unwrap_or(0.0),
                recovery_attempts: recovery.attempts,
                recovery_retries: recovery.retries,
                recovery_recoveries: recovery.recoveries,
                resources,
            }
        });
        let sink_dir = inner.obs.live_sink_dir.lock().clone();
        if let Some(dir) = sink_dir {
            let line = snap.to_json_line();
            inner.with(|st| {
                if st.frame_file.is_none() {
                    let _ = std::fs::create_dir_all(&dir);
                    st.frame_file = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(crate::live::telemetry_frame_path(&dir, inner.rank))
                        .ok();
                }
                if let Some(f) = &mut st.frame_file {
                    // Telemetry is best-effort: a full disk must not
                    // fail the partitioning run.
                    let _ = crate::live::write_telemetry_frame(f, &line);
                }
            });
        }
        *inner.obs.live[inner.rank].lock() = Some(snap);
    }
}

/// Per-tag counter map in report/snapshot entry form (tag ascending —
/// BTreeMap order).
pub(crate) fn tag_entries(map: &BTreeMap<u64, TagCounter>) -> Vec<TagEntry> {
    map.iter()
        .map(|(&tag, c)| TagEntry {
            tag,
            msgs: c.msgs,
            bytes: c.bytes,
        })
        .collect()
}

/// Times a receive wait; created by [`Recorder::start_wait`].
pub struct WaitToken {
    start: Instant,
    /// The awaited source PE, when the receive named one.
    src: Option<usize>,
    /// The awaited tag.
    tag: u64,
}

/// RAII guard closing a span opened by [`Recorder::span`].
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard<'a> {
    rec: &'a Recorder,
    name: &'static str,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.rec.exit(self.name);
    }
}

/// RAII guard emitting the `CollectiveExit` event for a
/// [`Recorder::collective_span`].
#[must_use = "dropping the guard immediately ends the collective on the timeline"]
pub struct CollectiveGuard<'a> {
    rec: &'a Recorder,
    name: &'static str,
}

impl Drop for CollectiveGuard<'_> {
    fn drop(&mut self) {
        if let Some(inner) = &self.rec.inner {
            let ts = inner.trace_ts();
            let name = self.name;
            inner.with(|st| {
                if let Some(ring) = &mut st.trace {
                    ring.push(ts, TraceEventKind::CollectiveExit { name });
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEventKind;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        assert!(!rec.is_traced());
        let g = rec.span("a");
        rec.on_send(0, 1, 10);
        rec.count_collective("barrier");
        let tok = rec.start_wait(Some(0), 1);
        assert!(tok.is_none());
        rec.end_wait(tok);
        assert_eq!(rec.epoch_elapsed_ns(), 0);
        drop(g);
        assert_eq!(rec.phase_seconds("a"), 0.0);
    }

    #[test]
    fn spans_nest_by_path() {
        let obs = Obs::new(1);
        let rec = obs.recorder(0);
        {
            let _cycle = rec.span("vcycle");
            {
                let _c = rec.span("coarsen");
                let _k = rec.span("contract");
            }
            let _u = rec.span("uncoarsen");
        }
        let report = obs.report();
        let paths: Vec<&str> = report.per_pe[0]
            .phases
            .iter()
            .map(|p| p.path.as_str())
            .collect();
        assert_eq!(
            paths,
            [
                "vcycle",
                "vcycle/coarsen",
                "vcycle/coarsen/contract",
                "vcycle/uncoarsen"
            ]
        );
        assert!(rec.phase_seconds("coarsen") >= rec.phase_seconds("contract"));
        assert_eq!(report.per_pe[0].orphan_exits, 0);
    }

    #[test]
    fn orphan_exit_is_dropped_not_applied() {
        let obs = Obs::new(1);
        let rec = obs.recorder(0);
        rec.enter("a");
        rec.exit("b"); // orphan: innermost is "a"
        rec.exit("a");
        rec.exit("a"); // orphan: stack empty
        let report = obs.report();
        assert_eq!(report.per_pe[0].orphan_exits, 2);
        assert_eq!(report.per_pe[0].phases.len(), 1);
        assert_eq!(report.per_pe[0].phases[0].path, "a");
        assert_eq!(report.per_pe[0].phases[0].count, 1);
    }

    #[test]
    fn counters_accumulate_per_tag() {
        let obs = Obs::new(2);
        let r0 = obs.recorder(0);
        let r1 = obs.recorder(1);
        r0.on_send(1, 7, 16);
        r0.on_send(1, 7, 8);
        r1.on_recv(0, 7, 16);
        r1.on_recv(0, 7, 8);
        r0.count_collective("barrier");
        r0.on_fault_delay(1, 7);
        let report = obs.report();
        let sent = &report.per_pe[0].comm.sent;
        assert_eq!(sent.len(), 1);
        assert_eq!((sent[0].tag, sent[0].msgs, sent[0].bytes), (7, 2, 24));
        let recvd = &report.per_pe[1].comm.recvd;
        assert_eq!((recvd[0].msgs, recvd[0].bytes), (2, 24));
        assert_eq!(report.per_pe[0].comm.delayed, 1);
        assert_eq!(report.aggregate.messages, 2);
        assert_eq!(report.aggregate.bytes, 24);
    }

    #[test]
    fn progress_tracks_publishes() {
        let obs = Obs::new(2);
        let r0 = obs.recorder(0);
        r0.on_send(1, 1, 100);
        assert_eq!(obs.progress(), (0, 0), "not yet published");
        r0.publish_progress();
        assert_eq!(obs.progress(), (1, 100));
    }

    #[test]
    fn wait_tokens_accumulate_and_blame_peers() {
        let obs = Obs::new(1);
        let rec = obs.recorder(0);
        let tok = rec.start_wait(Some(3), 7);
        assert!(tok.is_some());
        rec.end_wait(tok);
        rec.end_wait(rec.start_wait(None, 9));
        let report = obs.report();
        let comm = &report.per_pe[0].comm;
        assert!(comm.recv_wait_s >= 0.0);
        assert_eq!(comm.recv_wait_count, 2);
        assert_eq!(comm.recv_wait_by_peer.len(), 1, "wildcard is unattributed");
        assert_eq!(comm.recv_wait_by_peer[0].peer, 3);
    }

    #[test]
    fn untraced_registry_has_no_trace() {
        let obs = Obs::new(1);
        assert!(!obs.is_traced());
        assert!(obs.trace().is_none());
    }

    #[test]
    fn trace_records_events_in_program_order() {
        let obs = Obs::with_trace(2, 64);
        let r0 = obs.recorder(0);
        let r1 = obs.recorder(1);
        assert!(r0.is_traced());
        {
            let _s = r0.span("vcycle");
            r0.on_send(1, 7, 8);
            r0.on_send(1, 7, 8);
            let _c = r0.collective_span("barrier");
        }
        r1.on_recv(0, 7, 8);
        r1.end_wait(r1.start_wait(Some(0), 7));
        let trace = obs.trace().expect("traced");
        assert_eq!(trace.p, 2);
        let kinds: Vec<&TraceEventKind> = trace.per_pe[0].events.iter().map(|e| &e.kind).collect();
        assert!(matches!(kinds[0], TraceEventKind::SpanOpen { path } if path == "vcycle"));
        assert!(
            matches!(
                kinds[1],
                TraceEventKind::Send {
                    dst: 1,
                    tag: 7,
                    seq: 0,
                    bytes: 8
                }
            ),
            "first send has seq 0"
        );
        assert!(
            matches!(kinds[2], TraceEventKind::Send { seq: 1, .. }),
            "second send has seq 1"
        );
        assert!(matches!(
            kinds[3],
            TraceEventKind::CollectiveEnter { name: "barrier" }
        ));
        assert!(matches!(
            kinds[4],
            TraceEventKind::CollectiveExit { name: "barrier" }
        ));
        assert!(matches!(kinds[5], TraceEventKind::SpanClose { .. }));
        assert!(matches!(
            trace.per_pe[1].events[0].kind,
            TraceEventKind::Recv { src: 0, seq: 0, .. }
        ));
        assert!(matches!(
            trace.per_pe[1].events[1].kind,
            TraceEventKind::RecvWait { src: Some(0), .. }
        ));
        // Timestamps are monotone per PE (shared epoch, single thread).
        let ts: Vec<u64> = trace.per_pe[0].events.iter().map(|e| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn live_publish_exposes_snapshot_with_running_totals() {
        let obs = Obs::new(1);
        obs.enable_live();
        assert!(obs.is_live());
        let rec = obs.recorder(0);
        assert!(obs.live_snapshot(0).is_none(), "nothing published yet");
        rec.enter("vcycle");
        rec.set_progress(1, 2, 3);
        rec.on_send(0, 7, 64);
        rec.on_recv(0, 7, 64);
        rec.publish_live();
        let snap = obs.live_snapshot(0).expect("published");
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.phase_path, "vcycle");
        assert_eq!((snap.cycle, snap.level, snap.round), (1, 2, 3));
        assert_eq!((snap.msgs_sent, snap.bytes_sent), (1, 64));
        assert_eq!((snap.msgs_recvd, snap.bytes_recvd), (1, 64));
        assert_eq!(snap.sent_by_tag.len(), 1);
        assert!(snap.resources.rss_peak_kb > 0, "resource sample captured");
        rec.on_send(0, 7, 36);
        rec.publish_live();
        let snap2 = obs.live_snapshot(0).expect("republished");
        assert_eq!(snap2.seq, 2);
        assert_eq!(snap2.bytes_sent, 100);
        assert!(snap2.resources.rss_peak_kb >= snap.resources.rss_peak_kb);
        // The report's per-PE resources were refreshed by the publish.
        assert!(obs.report().per_pe[0].resources.rss_peak_kb > 0);
    }

    #[test]
    fn live_publish_is_inert_unless_enabled() {
        let obs = Obs::new(1);
        let rec = obs.recorder(0);
        rec.on_send(0, 7, 8);
        rec.publish_live();
        assert!(obs.live_snapshot(0).is_none());
        assert!(!obs.is_live());
    }

    #[test]
    fn record_alert_lands_in_report_and_trace_ring() {
        let obs = Obs::with_trace(2, 16);
        let alert = crate::live::AlertEvent {
            rule: "straggler-skew".to_string(),
            pe: 1,
            value: 6.25,
            threshold: 4.0,
            epoch_ns: 42,
        };
        obs.record_alert(&alert);
        let report = obs.report();
        assert_eq!(report.alerts.len(), 1);
        assert_eq!(report.alerts[0].pe, 1);
        let trace = obs.trace().expect("traced");
        assert!(
            matches!(
                &trace.per_pe[1].events[0].kind,
                TraceEventKind::Alert { rule, value_milli: 6250 } if rule == "straggler-skew"
            ),
            "alert must land on the blamed PE's ring"
        );
        assert!(trace.per_pe[0].events.is_empty());
    }

    #[test]
    fn epoch_offset_shifts_timestamps() {
        let obs = Obs::with_trace(1, 8);
        obs.rebase_epoch();
        let rec = obs.recorder(0);
        rec.resume_epoch(1_000_000_000_000); // pretend 1000 s elapsed before resume
        rec.on_send(0, 1, 8);
        let trace = obs.trace().expect("traced");
        assert!(trace.per_pe[0].events[0].ts_ns >= 1_000_000_000_000);
        assert!(rec.epoch_elapsed_ns() >= 1_000_000_000_000);
    }
}
