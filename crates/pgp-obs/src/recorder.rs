//! The per-PE recorder and the run-wide observation registry.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::handoff::FlushSlot;
use crate::metrics::{LevelMetrics, PhaseStat, RefineMetrics, TagCounter};
use crate::report::{Aggregate, PeReport, RunReport, SCHEMA_VERSION};

/// Run-wide observation registry: one cell per PE.
///
/// Created once per observed run ([`Obs::new`]); each PE thread gets a
/// [`Recorder`] handle onto its own cell via [`Obs::recorder`]. Cells are
/// single-writer — only the owning PE thread records — so the mutexes are
/// uncontended; [`Obs::report`] locks them after the PEs have joined.
pub struct Obs {
    cells: Vec<Mutex<PeState>>,
    /// Seqlock progress slots, published at phase barriers and readable
    /// by external observers while the run is in flight.
    progress: Vec<FlushSlot>,
}

/// All observations of one PE. Single-writer by the owning thread.
#[derive(Default)]
pub(crate) struct PeState {
    /// Open spans, innermost last.
    stack: Vec<OpenSpan>,
    /// Closed-span aggregates keyed by full path (`a/b/c`).
    pub(crate) phases: BTreeMap<String, PhaseStat>,
    /// Span exits whose name did not match the innermost open span;
    /// dropped rather than applied, counted here for the report.
    pub(crate) orphan_exits: u64,
    /// Messages/bytes sent, per tag.
    pub(crate) sent: BTreeMap<u64, TagCounter>,
    /// Messages/bytes received, per tag.
    pub(crate) recvd: BTreeMap<u64, TagCounter>,
    /// Messages/bytes dropped by fault injection, per tag.
    pub(crate) dropped: BTreeMap<u64, TagCounter>,
    /// Collective invocation counts by name.
    pub(crate) collectives: BTreeMap<&'static str, u64>,
    /// Nanoseconds spent blocked in receive waits.
    pub(crate) recv_wait_ns: u64,
    /// Sends held in a limbo queue by fault injection.
    pub(crate) delayed: u64,
    /// Sends stalled (slept) by fault injection.
    pub(crate) stalled: u64,
    /// Per-level structural snapshots, in recording order.
    pub(crate) levels: Vec<LevelMetrics>,
    /// Per-refinement-pass quality snapshots, in recording order.
    pub(crate) refinements: Vec<RefineMetrics>,
    /// Running totals mirrored into the progress seqlock.
    msgs_sent_total: u64,
    bytes_sent_total: u64,
}

struct OpenSpan {
    /// Full path of this span (`parent_path/name`).
    path: String,
    /// Last path segment, for exit matching.
    name: &'static str,
    start: Instant,
}

impl Obs {
    /// A registry for a `p`-PE run.
    pub fn new(p: usize) -> Arc<Self> {
        Arc::new(Self {
            cells: (0..p).map(|_| Mutex::new(PeState::default())).collect(),
            progress: (0..p).map(|_| FlushSlot::new()).collect(),
        })
    }

    /// Number of PEs this registry observes.
    pub fn p(&self) -> usize {
        self.cells.len()
    }

    /// The recorder handle for `rank`'s cell.
    pub fn recorder(self: &Arc<Self>, rank: usize) -> Recorder {
        assert!(rank < self.cells.len(), "obs recorder rank out of range");
        Recorder {
            inner: Some(Inner {
                obs: Arc::clone(self),
                rank,
            }),
        }
    }

    /// Sums the progress seqlocks: `(messages, bytes)` sent so far across
    /// all PEs, as of each PE's last phase barrier. Safe to call while the
    /// run is in flight (lock-free).
    pub fn progress(&self) -> (u64, u64) {
        let mut msgs = 0;
        let mut bytes = 0;
        for slot in &self.progress {
            let (m, b) = slot.snapshot();
            msgs += m;
            bytes += b;
        }
        (msgs, bytes)
    }

    /// Assembles the run report. Call after the PE threads have joined
    /// (open spans are not counted).
    pub fn report(&self) -> RunReport {
        let per_pe: Vec<PeReport> = self
            .cells
            .iter()
            .enumerate()
            .map(|(rank, cell)| PeReport::from_state(rank, &cell.lock()))
            .collect();
        let aggregate = Aggregate::from_per_pe(&per_pe);
        RunReport {
            schema_version: SCHEMA_VERSION,
            p: self.cells.len(),
            per_pe,
            aggregate,
        }
    }
}

/// Handle through which one PE thread records observations.
///
/// A disabled recorder ([`Recorder::disabled`]) turns every hook into a
/// single `Option` branch — the hot path stays within noise. Enabledness
/// is uniform across a run (all PEs of a universe share it), so code may
/// gate extra *collective* work on [`Recorder::is_enabled`] without
/// risking an SPMD mismatch.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Inner>,
}

#[derive(Clone)]
struct Inner {
    obs: Arc<Obs>,
    rank: usize,
}

impl Inner {
    fn with<R>(&self, f: impl FnOnce(&mut PeState) -> R) -> R {
        f(&mut self.obs.cells[self.rank].lock())
    }
}

impl Recorder {
    /// The no-op recorder (observability off).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether observations are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; close it with the returned guard (or a matching
    /// [`Recorder::exit`]). Span names must not contain `/` — paths are
    /// `/`-joined.
    #[inline]
    pub fn span<'a>(&'a self, name: &'static str) -> SpanGuard<'a> {
        self.enter(name);
        SpanGuard { rec: self, name }
    }

    /// Opens a span without a guard. Prefer [`Recorder::span`]; this form
    /// exists for callers whose enter/exit points cannot share a scope
    /// (and for the nesting proptest, which drives arbitrary sequences).
    #[inline]
    pub fn enter(&self, name: &'static str) {
        if let Some(inner) = &self.inner {
            debug_assert!(!name.contains('/'), "span names must not contain '/'");
            let start = Instant::now();
            inner.with(|st| {
                let path = match st.stack.last() {
                    Some(top) => format!("{}/{name}", top.path),
                    None => name.to_string(),
                };
                st.stack.push(OpenSpan { path, name, start });
            });
        }
    }

    /// Closes the innermost span if its name matches; a mismatch (orphan
    /// exit) is dropped and counted, never unwinds other spans.
    #[inline]
    pub fn exit(&self, name: &'static str) {
        if let Some(inner) = &self.inner {
            let now = Instant::now();
            inner.with(|st| match st.stack.last() {
                Some(top) if top.name == name => {
                    let span = st.stack.pop().expect("non-empty: just matched");
                    let elapsed = now.duration_since(span.start);
                    let stat = st.phases.entry(span.path).or_default();
                    stat.count += 1;
                    // lint note: u128 -> u64 saturation; a span would need
                    // to stay open ~584 years to overflow.
                    stat.total_ns += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
                }
                _ => st.orphan_exits += 1,
            });
        }
    }

    /// Total recorded seconds of all closed spans whose final path
    /// segment equals `name` (e.g. `coarsen` matches `vcycle/coarsen`).
    pub fn phase_seconds(&self, name: &str) -> f64 {
        match &self.inner {
            None => 0.0,
            Some(inner) => inner.with(|st| {
                st.phases
                    .iter()
                    .filter(|(path, _)| path.rsplit('/').next() == Some(name))
                    .map(|(_, stat)| stat.total_ns as f64 / 1e9)
                    .sum()
            }),
        }
    }

    /// Counts one invocation of the named collective.
    #[inline]
    pub fn count_collective(&self, name: &'static str) {
        if let Some(inner) = &self.inner {
            inner.with(|st| *st.collectives.entry(name).or_insert(0) += 1);
        }
    }

    /// Records one sent message of `bytes` payload bytes on `tag`.
    #[inline]
    pub fn on_send(&self, tag: u64, bytes: u64) {
        if let Some(inner) = &self.inner {
            inner.with(|st| {
                st.sent.entry(tag).or_default().add(bytes);
                st.msgs_sent_total += 1;
                st.bytes_sent_total += bytes;
            });
        }
    }

    /// Records one received message of `bytes` payload bytes on `tag`.
    #[inline]
    pub fn on_recv(&self, tag: u64, bytes: u64) {
        if let Some(inner) = &self.inner {
            inner.with(|st| st.recvd.entry(tag).or_default().add(bytes));
        }
    }

    /// Records one message dropped by fault injection.
    #[inline]
    pub fn on_fault_drop(&self, tag: u64, bytes: u64) {
        if let Some(inner) = &self.inner {
            inner.with(|st| st.dropped.entry(tag).or_default().add(bytes));
        }
    }

    /// Records one send held in a limbo queue by fault injection.
    #[inline]
    pub fn on_fault_delay(&self) {
        if let Some(inner) = &self.inner {
            inner.with(|st| st.delayed += 1);
        }
    }

    /// Records one send stalled (slept) by fault injection.
    #[inline]
    pub fn on_fault_stall(&self) {
        if let Some(inner) = &self.inner {
            inner.with(|st| st.stalled += 1);
        }
    }

    /// Starts timing a receive wait. Returns `None` when disabled; pass
    /// the token to [`Recorder::end_wait`] once the message arrived.
    #[inline]
    pub fn start_wait(&self) -> Option<WaitToken> {
        self.inner.as_ref().map(|_| WaitToken {
            start: Instant::now(),
        })
    }

    /// Ends a receive wait started by [`Recorder::start_wait`].
    #[inline]
    pub fn end_wait(&self, token: Option<WaitToken>) {
        if let (Some(inner), Some(token)) = (&self.inner, token) {
            let ns = u64::try_from(token.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            inner.with(|st| st.recv_wait_ns += ns);
        }
    }

    /// Records a per-level structural snapshot.
    #[inline]
    pub fn record_level(&self, level: LevelMetrics) {
        if let Some(inner) = &self.inner {
            inner.with(|st| st.levels.push(level));
        }
    }

    /// Records a per-refinement-pass quality snapshot.
    #[inline]
    pub fn record_refine(&self, refine: RefineMetrics) {
        if let Some(inner) = &self.inner {
            inner.with(|st| st.refinements.push(refine));
        }
    }

    /// Publishes this PE's running send totals into its progress seqlock.
    /// Called at phase barriers (`fresh_tag_block`); see [`FlushSlot`].
    #[inline]
    pub fn publish_progress(&self) {
        if let Some(inner) = &self.inner {
            let (msgs, bytes) = inner.with(|st| (st.msgs_sent_total, st.bytes_sent_total));
            inner.obs.progress[inner.rank].publish(msgs, bytes);
        }
    }
}

/// Times a receive wait; created by [`Recorder::start_wait`].
pub struct WaitToken {
    start: Instant,
}

/// RAII guard closing a span opened by [`Recorder::span`].
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard<'a> {
    rec: &'a Recorder,
    name: &'static str,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.rec.exit(self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let g = rec.span("a");
        rec.on_send(1, 10);
        rec.count_collective("barrier");
        let tok = rec.start_wait();
        assert!(tok.is_none());
        rec.end_wait(tok);
        drop(g);
        assert_eq!(rec.phase_seconds("a"), 0.0);
    }

    #[test]
    fn spans_nest_by_path() {
        let obs = Obs::new(1);
        let rec = obs.recorder(0);
        {
            let _cycle = rec.span("vcycle");
            {
                let _c = rec.span("coarsen");
                let _k = rec.span("contract");
            }
            let _u = rec.span("uncoarsen");
        }
        let report = obs.report();
        let paths: Vec<&str> = report.per_pe[0]
            .phases
            .iter()
            .map(|p| p.path.as_str())
            .collect();
        assert_eq!(
            paths,
            [
                "vcycle",
                "vcycle/coarsen",
                "vcycle/coarsen/contract",
                "vcycle/uncoarsen"
            ]
        );
        assert!(rec.phase_seconds("coarsen") >= rec.phase_seconds("contract"));
        assert_eq!(report.per_pe[0].orphan_exits, 0);
    }

    #[test]
    fn orphan_exit_is_dropped_not_applied() {
        let obs = Obs::new(1);
        let rec = obs.recorder(0);
        rec.enter("a");
        rec.exit("b"); // orphan: innermost is "a"
        rec.exit("a");
        rec.exit("a"); // orphan: stack empty
        let report = obs.report();
        assert_eq!(report.per_pe[0].orphan_exits, 2);
        assert_eq!(report.per_pe[0].phases.len(), 1);
        assert_eq!(report.per_pe[0].phases[0].path, "a");
        assert_eq!(report.per_pe[0].phases[0].count, 1);
    }

    #[test]
    fn counters_accumulate_per_tag() {
        let obs = Obs::new(2);
        let r0 = obs.recorder(0);
        let r1 = obs.recorder(1);
        r0.on_send(7, 16);
        r0.on_send(7, 8);
        r1.on_recv(7, 16);
        r1.on_recv(7, 8);
        r0.count_collective("barrier");
        r0.on_fault_delay();
        let report = obs.report();
        let sent = &report.per_pe[0].comm.sent;
        assert_eq!(sent.len(), 1);
        assert_eq!((sent[0].tag, sent[0].msgs, sent[0].bytes), (7, 2, 24));
        let recvd = &report.per_pe[1].comm.recvd;
        assert_eq!((recvd[0].msgs, recvd[0].bytes), (2, 24));
        assert_eq!(report.per_pe[0].comm.delayed, 1);
        assert_eq!(report.aggregate.messages, 2);
        assert_eq!(report.aggregate.bytes, 24);
    }

    #[test]
    fn progress_tracks_publishes() {
        let obs = Obs::new(2);
        let r0 = obs.recorder(0);
        r0.on_send(1, 100);
        assert_eq!(obs.progress(), (0, 0), "not yet published");
        r0.publish_progress();
        assert_eq!(obs.progress(), (1, 100));
    }

    #[test]
    fn wait_tokens_accumulate() {
        let obs = Obs::new(1);
        let rec = obs.recorder(0);
        let tok = rec.start_wait();
        assert!(tok.is_some());
        rec.end_wait(tok);
        let report = obs.report();
        assert!(report.per_pe[0].comm.recv_wait_s >= 0.0);
    }
}
