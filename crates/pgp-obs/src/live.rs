//! Live telemetry plane: in-flight per-PE metric snapshots, the NDJSON
//! stream format, alert rules, and the aggregating monitor.
//!
//! Until this module existed, all observability was post-mortem: the
//! RunReport and trace appear only after the PEs join. Here each PE
//! publishes a compact [`MetricSnapshot`] at every phase boundary
//! (`Comm::fresh_tag_block`, plus one final publish when the PE's
//! closure returns) into a per-PE shared slot on the [`Obs`] registry —
//! out-of-band from the compute path, so the hot path is untouched and
//! the disabled path stays single-branch (the hotpath A/B bench gates
//! this). A [`LiveMonitor`] thread polls the slots, renders a live
//! per-PE straggler table, appends machine-readable NDJSON, and
//! evaluates [`AlertRule`]s whose events land in the stream, the run
//! report's `alerts` block, and (when tracing) the per-PE trace ring.
//!
//! ## Stream format (NDJSON, one JSON object per line)
//!
//! - `{"type": "meta", "live_schema_version": 1, "p": …, "backend": …}`
//!   — always first.
//! - `{"type": "snapshot", …}` — one per new [`MetricSnapshot`]; per-PE
//!   `seq` is strictly increasing and counters are monotone.
//! - `{"type": "alert", "rule": …, "pe": …, "value": …, …}`.
//! - `{"type": "summary", …}` — always last; totals equal the final
//!   snapshot of every rank, and [`validate_live_stream`] checks that
//!   plus every monotonicity invariant.
//!
//! ## Determinism contract
//!
//! Snapshot *timing* is wall-clock and racy; snapshot *content* at the
//! final publish is not — it equals the PE's finished counters, which is
//! why the conservation test can require the stream's final aggregates
//! to match the RunReport exactly. Nothing here writes into golden-
//! compared report fields except the `alerts` block, which
//! `to_json(true)` empties (alerts fire on wall-clock skew).
//!
//! ## Side channel for the multi-process backend
//!
//! One-OS-process-per-PE workers share no memory with the supervisor,
//! so slots cannot carry their snapshots. Instead each worker appends
//! length-prefixed telemetry frames ([`write_telemetry_frame`]) to
//! `frames-<rank>.bin` under `$PGP_TELEMETRY_DIR`; the parent reads a
//! SIGKILL'd rank's last frame ([`read_last_telemetry_snapshot`]) to
//! name the phase it died in. The frame reader tolerates a truncated
//! tail — a kill can land mid-write.

use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::json::{push_json_str, JsonValue};
use crate::recorder::Obs;
use crate::report::{RunReport, TagEntry};
use crate::resources::ResourceSample;

/// Version of the live snapshot / NDJSON stream schema. Independent of
/// the report's `SCHEMA_VERSION`: the stream is an interchange format
/// for monitors, the report an artifact format.
pub const LIVE_SCHEMA_VERSION: u32 = 1;

/// One PE's in-flight state, published at phase boundaries.
///
/// All counters are cumulative since run start (monotone per rank), so
/// a monitor that misses intermediate snapshots still aggregates
/// correctly, and the final snapshot equals the PE's finished totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricSnapshot {
    /// Publishing PE.
    pub rank: usize,
    /// Per-PE publish ordinal, starting at 1. Strictly increasing.
    pub seq: u64,
    /// Run-epoch nanoseconds at publication.
    pub epoch_ns: u64,
    /// Innermost open span path (`vcycle/coarsen/…`), empty at root.
    pub phase_path: String,
    /// V-cycle progress (see `Recorder::set_progress`).
    pub cycle: u32,
    /// Hierarchy-level progress.
    pub level: u32,
    /// Local-search round progress.
    pub round: u32,
    /// Messages sent so far.
    pub msgs_sent: u64,
    /// Payload bytes sent so far.
    pub bytes_sent: u64,
    /// Messages received so far.
    pub msgs_recvd: u64,
    /// Payload bytes received so far.
    pub bytes_recvd: u64,
    /// Per-tag send counters, tag ascending.
    pub sent_by_tag: Vec<TagEntry>,
    /// Per-tag receive counters, tag ascending.
    pub recvd_by_tag: Vec<TagEntry>,
    /// Receive waits that actually blocked, so far.
    pub recv_wait_count: u64,
    /// Median receive-wait latency so far (bucket resolution).
    pub recv_wait_p50_ns: u64,
    /// 95th-percentile receive-wait latency so far.
    pub recv_wait_p95_ns: u64,
    /// Cut after the most recent refinement pass (0 before any).
    pub last_cut: u64,
    /// Imbalance after the most recent refinement pass.
    pub last_imbalance: f64,
    /// Recovery-supervisor attempts so far (1 = first launch).
    pub recovery_attempts: u64,
    /// Transient retries so far.
    pub recovery_retries: u64,
    /// Full recoveries so far.
    pub recovery_recoveries: u64,
    /// Resource sample taken at publication.
    pub resources: ResourceSample,
}

impl MetricSnapshot {
    /// Serializes as one NDJSON `snapshot` line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut o = String::with_capacity(512);
        o.push_str(&format!(
            "{{\"type\": \"snapshot\", \"v\": {LIVE_SCHEMA_VERSION}, \"rank\": {}, \"seq\": {}, \
             \"epoch_ns\": {}, \"phase_path\": ",
            self.rank, self.seq, self.epoch_ns
        ));
        push_json_str(&mut o, &self.phase_path);
        o.push_str(&format!(
            ", \"cycle\": {}, \"level\": {}, \"round\": {}, \"msgs_sent\": {}, \
             \"bytes_sent\": {}, \"msgs_recvd\": {}, \"bytes_recvd\": {}",
            self.cycle,
            self.level,
            self.round,
            self.msgs_sent,
            self.bytes_sent,
            self.msgs_recvd,
            self.bytes_recvd
        ));
        for (key, entries) in [
            ("sent_by_tag", &self.sent_by_tag),
            ("recvd_by_tag", &self.recvd_by_tag),
        ] {
            o.push_str(&format!(", \"{key}\": ["));
            for (i, e) in entries.iter().enumerate() {
                if i > 0 {
                    o.push_str(", ");
                }
                o.push_str(&format!(
                    "{{\"tag\": {}, \"msgs\": {}, \"bytes\": {}}}",
                    e.tag, e.msgs, e.bytes
                ));
            }
            o.push(']');
        }
        o.push_str(&format!(
            ", \"recv_wait_count\": {}, \"recv_wait_p50_ns\": {}, \"recv_wait_p95_ns\": {}, \
             \"last_cut\": {}, \"last_imbalance\": {}, \"recovery_attempts\": {}, \
             \"recovery_retries\": {}, \"recovery_recoveries\": {}",
            self.recv_wait_count,
            self.recv_wait_p50_ns,
            self.recv_wait_p95_ns,
            self.last_cut,
            self.last_imbalance,
            self.recovery_attempts,
            self.recovery_retries,
            self.recovery_recoveries
        ));
        let r = &self.resources;
        o.push_str(&format!(
            ", \"resources\": {{\"rss_current_kb\": {}, \"rss_peak_kb\": {}, \
             \"thread_cpu_s\": {}, \"allocs\": {}, \"alloc_bytes\": {}}}}}",
            r.rss_current_kb, r.rss_peak_kb, r.thread_cpu_s, r.allocs, r.alloc_bytes
        ));
        o
    }

    /// Parses a `snapshot` line previously produced by
    /// [`MetricSnapshot::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<MetricSnapshot, String> {
        let v = JsonValue::parse(line)?;
        Self::from_json(&v)
    }

    fn from_json(v: &JsonValue) -> Result<MetricSnapshot, String> {
        if v.get("type").and_then(JsonValue::as_str) != Some("snapshot") {
            return Err("not a snapshot line".to_string());
        }
        let version = v
            .get("v")
            .and_then(JsonValue::as_u64)
            .ok_or("snapshot missing v")?;
        if version != u64::from(LIVE_SCHEMA_VERSION) {
            return Err(format!(
                "unsupported live schema version {version} (this build reads {LIVE_SCHEMA_VERSION})"
            ));
        }
        let u = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("snapshot missing {k}"))
        };
        let u32_of = |k: &str| {
            u(k).and_then(|x| u32::try_from(x).map_err(|_| format!("snapshot {k} out of range")))
        };
        let f = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("snapshot missing {k}"))
        };
        let tags = |k: &str| -> Result<Vec<TagEntry>, String> {
            v.get(k)
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| format!("snapshot missing {k}"))?
                .iter()
                .map(|e| {
                    let g = |k: &str| e.get(k).and_then(JsonValue::as_u64).ok_or("bad tag entry");
                    Ok(TagEntry {
                        tag: g("tag")?,
                        msgs: g("msgs")?,
                        bytes: g("bytes")?,
                    })
                })
                .collect()
        };
        let res = v.get("resources").ok_or("snapshot missing resources")?;
        let ru = |k: &str| {
            res.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("resources missing {k}"))
        };
        Ok(MetricSnapshot {
            rank: usize::try_from(u("rank")?).map_err(|_| "rank out of range")?,
            seq: u("seq")?,
            epoch_ns: u("epoch_ns")?,
            phase_path: v
                .get("phase_path")
                .and_then(JsonValue::as_str)
                .ok_or("snapshot missing phase_path")?
                .to_string(),
            cycle: u32_of("cycle")?,
            level: u32_of("level")?,
            round: u32_of("round")?,
            msgs_sent: u("msgs_sent")?,
            bytes_sent: u("bytes_sent")?,
            msgs_recvd: u("msgs_recvd")?,
            bytes_recvd: u("bytes_recvd")?,
            sent_by_tag: tags("sent_by_tag")?,
            recvd_by_tag: tags("recvd_by_tag")?,
            recv_wait_count: u("recv_wait_count")?,
            recv_wait_p50_ns: u("recv_wait_p50_ns")?,
            recv_wait_p95_ns: u("recv_wait_p95_ns")?,
            last_cut: u("last_cut")?,
            last_imbalance: f("last_imbalance")?,
            recovery_attempts: u("recovery_attempts")?,
            recovery_retries: u("recovery_retries")?,
            recovery_recoveries: u("recovery_recoveries")?,
            resources: ResourceSample {
                rss_current_kb: ru("rss_current_kb")?,
                rss_peak_kb: ru("rss_peak_kb")?,
                thread_cpu_s: res
                    .get("thread_cpu_s")
                    .and_then(JsonValue::as_f64)
                    .ok_or("resources missing thread_cpu_s")?,
                allocs: ru("allocs")?,
                alloc_bytes: ru("alloc_bytes")?,
            },
        })
    }
}

/// One fired alert: a rule crossed its threshold on a PE.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertEvent {
    /// Rule identifier (`straggler-skew`, `imbalance-drift`,
    /// `recovery-escalation`).
    pub rule: String,
    /// The PE the alert blames (the straggler, the escalating rank).
    pub pe: usize,
    /// Observed value that crossed the threshold.
    pub value: f64,
    /// The threshold it crossed.
    pub threshold: f64,
    /// Run-epoch nanoseconds when the monitor fired the alert.
    pub epoch_ns: u64,
}

impl AlertEvent {
    /// Serializes as one NDJSON `alert` line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut o = String::with_capacity(128);
        o.push_str("{\"type\": \"alert\", \"rule\": ");
        push_json_str(&mut o, &self.rule);
        o.push_str(&format!(
            ", \"pe\": {}, \"value\": {}, \"threshold\": {}, \"epoch_ns\": {}}}",
            self.pe, self.value, self.threshold, self.epoch_ns
        ));
        o
    }
}

/// One live alert rule: an identifier plus the threshold the monitor
/// compares its observed value against. See [`AlertRule::defaults`] for
/// the semantics of each built-in rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlertRule {
    /// Built-in rule identifier.
    pub id: &'static str,
    /// Firing threshold (semantics per rule).
    pub threshold: f64,
}

impl AlertRule {
    /// The built-in rule set:
    ///
    /// - `straggler-skew` (threshold 4.0): fires when the fastest PE has
    ///   sent more than `threshold ×` the bytes of the slowest (with a
    ///   small absolute floor so startup noise cannot trip it), blaming
    ///   the slowest PE.
    /// - `imbalance-drift` (threshold 0.10): fires when the most recent
    ///   refinement pass on rank 0 reports imbalance above threshold.
    /// - `recovery-escalation` (threshold 1.0): fires when the recovery
    ///   supervisor has relaunched the group more than `threshold`
    ///   times (attempts − 1 > threshold), blaming the last dead rank's
    ///   replacement (rank 0 when none is known).
    pub fn defaults() -> Vec<AlertRule> {
        vec![
            AlertRule {
                id: "straggler-skew",
                threshold: 4.0,
            },
            AlertRule {
                id: "imbalance-drift",
                threshold: 0.10,
            },
            AlertRule {
                id: "recovery-escalation",
                threshold: 1.0,
            },
        ]
    }
}

/// Bytes a PE must have sent before `straggler-skew` may consider it:
/// below this every PE is still starting up and ratios are noise.
const SKEW_FLOOR_BYTES: u64 = 1 << 12;

/// Evaluates the alert rules against the latest snapshot of every PE.
/// Pure and deterministic given the snapshots; the monitor debounces
/// (fires each rule at most once per run) around this.
pub fn evaluate_alerts(
    rules: &[AlertRule],
    latest: &[Option<MetricSnapshot>],
    epoch_ns: u64,
) -> Vec<AlertEvent> {
    let mut fired = Vec::new();
    let have: Vec<&MetricSnapshot> = latest.iter().flatten().collect();
    if have.is_empty() {
        return fired;
    }
    for rule in rules {
        match rule.id {
            "straggler-skew" => {
                if have.len() < latest.len() || latest.len() < 2 {
                    continue; // need every PE's view to call one a straggler
                }
                let max = have.iter().map(|s| s.bytes_sent).max().unwrap_or(0);
                let (min, min_pe) = have
                    .iter()
                    .map(|s| (s.bytes_sent, s.rank))
                    .min()
                    .unwrap_or((0, 0));
                if max >= SKEW_FLOOR_BYTES && (max as f64) > rule.threshold * (min.max(1) as f64) {
                    fired.push(AlertEvent {
                        rule: rule.id.to_string(),
                        pe: min_pe,
                        value: max as f64 / min.max(1) as f64,
                        threshold: rule.threshold,
                        epoch_ns,
                    });
                }
            }
            "imbalance-drift" => {
                if let Some(s) = have.iter().find(|s| s.rank == 0) {
                    if s.last_imbalance > rule.threshold {
                        fired.push(AlertEvent {
                            rule: rule.id.to_string(),
                            pe: 0,
                            value: s.last_imbalance,
                            threshold: rule.threshold,
                            epoch_ns,
                        });
                    }
                }
            }
            "recovery-escalation" => {
                if let Some(s) = have.first() {
                    let relaunches = s.recovery_attempts.saturating_sub(1);
                    if relaunches as f64 > rule.threshold {
                        fired.push(AlertEvent {
                            rule: rule.id.to_string(),
                            pe: s.rank,
                            value: relaunches as f64,
                            threshold: rule.threshold,
                            epoch_ns,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    fired
}

/// Renders the live per-PE straggler table from the latest snapshots.
/// The slowest PE (fewest bytes sent) is marked — the same blame story
/// the post-mortem straggler table tells, available mid-run.
pub fn render_live_table(latest: &[Option<MetricSnapshot>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4}  {:<28} {:>5} {:>5} {:>5} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "pe", "phase", "cyc", "lvl", "rnd", "msgs", "KiB", "p95 wait", "rss MiB", "cpu s"
    );
    let min_bytes = latest
        .iter()
        .flatten()
        .map(|s| s.bytes_sent)
        .min()
        .unwrap_or(0);
    let multiple = latest.iter().flatten().count() > 1;
    for (rank, slot) in latest.iter().enumerate() {
        match slot {
            None => {
                let _ = writeln!(out, "{rank:>4}  (no snapshot yet)");
            }
            Some(s) => {
                let phase = if s.phase_path.is_empty() {
                    "(root)"
                } else {
                    &s.phase_path
                };
                let straggler = if multiple && s.bytes_sent == min_bytes {
                    "  <- behind"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "{:>4}  {:<28} {:>5} {:>5} {:>5} {:>10} {:>10} {:>8.2}ms {:>9.1} {:>8.2}{}",
                    s.rank,
                    phase,
                    s.cycle,
                    s.level,
                    s.round,
                    s.msgs_sent,
                    s.bytes_sent / 1024,
                    s.recv_wait_p95_ns as f64 / 1e6,
                    s.resources.rss_current_kb as f64 / 1024.0,
                    s.resources.thread_cpu_s,
                    straggler
                );
            }
        }
    }
    out
}

/// Configuration for [`LiveMonitor::spawn`].
#[derive(Clone, Debug)]
pub struct LiveMonitorConfig {
    /// Slot-polling cadence. Snapshots are published at phase
    /// boundaries, so polling faster than the phase rate only re-reads
    /// unchanged slots (cheap: one mutex clone per PE).
    pub interval: Duration,
    /// Alert rules to evaluate each poll (each fires at most once).
    pub alerts: Vec<AlertRule>,
    /// Render the live straggler table to stderr each poll.
    pub render: bool,
}

impl Default for LiveMonitorConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(50),
            alerts: AlertRule::defaults(),
            render: false,
        }
    }
}

/// What the monitor saw, returned by [`LiveMonitor::finish`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MonitorStats {
    /// Snapshot lines written.
    pub snapshots: u64,
    /// Alert lines written.
    pub alerts: u64,
    /// Final `(msgs_sent, bytes_sent)` per rank, from each rank's last
    /// snapshot (zeros for ranks that never published).
    pub final_per_pe: Vec<(u64, u64)>,
}

/// Aggregating monitor thread: polls the registry's live slots, appends
/// NDJSON to a writer, optionally renders the straggler table, and
/// evaluates alert rules. Spawn before the run starts; call
/// [`LiveMonitor::finish`] after the run's PEs have joined — it does a
/// final slot sweep (so the last published state is always streamed)
/// and writes the `summary` line.
pub struct LiveMonitor {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<std::io::Result<MonitorStats>>,
}

impl LiveMonitor {
    /// Starts the monitor over `obs` (which must already have live
    /// publication enabled via `Obs::enable_live`), streaming NDJSON to
    /// `out`. The `meta` line is written before this returns.
    pub fn spawn(
        obs: Arc<Obs>,
        cfg: LiveMonitorConfig,
        mut out: Box<dyn std::io::Write + Send>,
    ) -> std::io::Result<LiveMonitor> {
        writeln!(
            out,
            "{{\"type\": \"meta\", \"live_schema_version\": {LIVE_SCHEMA_VERSION}, \"p\": {}, \
             \"backend\": \"{}\"}}",
            obs.p(),
            obs.backend_name()
        )?;
        out.flush()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pgp-live-monitor".to_string())
            .spawn(move || Self::run(&obs, &cfg, &mut out, &stop_flag))
            .expect("spawn live monitor thread");
        Ok(LiveMonitor { stop, handle })
    }

    fn run(
        obs: &Arc<Obs>,
        cfg: &LiveMonitorConfig,
        out: &mut Box<dyn std::io::Write + Send>,
        stop: &AtomicBool,
    ) -> std::io::Result<MonitorStats> {
        let p = obs.p();
        let mut stats = MonitorStats {
            final_per_pe: vec![(0, 0); p],
            ..MonitorStats::default()
        };
        let mut latest: Vec<Option<MetricSnapshot>> = vec![None; p];
        let mut fired_rules: Vec<String> = Vec::new();
        loop {
            let stopping = stop.load(Ordering::Acquire);
            let mut wrote = false;
            for (rank, slot) in latest.iter_mut().enumerate() {
                let snap = obs.live_snapshot(rank);
                if let Some(snap) = snap {
                    let is_new = slot.as_ref().is_none_or(|prev| snap.seq > prev.seq);
                    if is_new {
                        writeln!(out, "{}", snap.to_json_line())?;
                        stats.snapshots += 1;
                        stats.final_per_pe[rank] = (snap.msgs_sent, snap.bytes_sent);
                        *slot = Some(snap);
                        wrote = true;
                    }
                }
            }
            // Alerts: each rule fires at most once per run (the stream
            // is for operators, not for re-deriving the condition).
            for alert in evaluate_alerts(&cfg.alerts, &latest, obs.epoch_elapsed_ns()) {
                if fired_rules.iter().any(|r| r == &alert.rule) {
                    continue;
                }
                fired_rules.push(alert.rule.clone());
                writeln!(out, "{}", alert.to_json_line())?;
                stats.alerts += 1;
                obs.record_alert(&alert);
            }
            if wrote {
                out.flush()?;
                if cfg.render {
                    // Clear + home so the table repaints in place.
                    eprint!("\x1b[2J\x1b[H{}", render_live_table(&latest));
                }
            }
            if stopping {
                break;
            }
            std::thread::sleep(cfg.interval);
        }
        let mut o = String::with_capacity(128);
        o.push_str(&format!(
            "{{\"type\": \"summary\", \"snapshots\": {}, \"alerts\": {}, \"per_pe\": [",
            stats.snapshots, stats.alerts
        ));
        for (rank, (msgs, bytes)) in stats.final_per_pe.iter().enumerate() {
            if rank > 0 {
                o.push_str(", ");
            }
            o.push_str(&format!(
                "{{\"rank\": {rank}, \"msgs_sent\": {msgs}, \"bytes_sent\": {bytes}}}"
            ));
        }
        let (total_msgs, total_bytes) = stats
            .final_per_pe
            .iter()
            .fold((0u64, 0u64), |(m, b), &(pm, pb)| (m + pm, b + pb));
        o.push_str(&format!(
            "], \"msgs_sent_total\": {total_msgs}, \"bytes_sent_total\": {total_bytes}}}"
        ));
        writeln!(out, "{o}")?;
        out.flush()?;
        Ok(stats)
    }

    /// Stops the monitor after one final slot sweep and the `summary`
    /// line. Call after the run's PEs have joined so the sweep sees
    /// every rank's final publish.
    pub fn finish(self) -> std::io::Result<MonitorStats> {
        self.stop.store(true, Ordering::Release);
        match self.handle.join() {
            Ok(r) => r,
            Err(_) => Err(std::io::Error::other("live monitor thread panicked")),
        }
    }
}

/// Validated overview of one NDJSON telemetry stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LiveStreamSummary {
    /// PE count from the `meta` line.
    pub p: usize,
    /// Backend name from the `meta` line.
    pub backend: String,
    /// Snapshot lines seen.
    pub snapshots: u64,
    /// Alert lines seen.
    pub alerts: u64,
    /// Each rank's final snapshot (None if it never published).
    pub final_per_pe: Vec<Option<MetricSnapshot>>,
    /// Total messages sent per the summary line.
    pub msgs_sent_total: u64,
    /// Total bytes sent per the summary line.
    pub bytes_sent_total: u64,
}

/// Parses and validates a complete NDJSON telemetry stream: `meta`
/// first, per-rank `seq` strictly increasing, counters and peak RSS
/// monotone, schema versions supported, `summary` last and consistent
/// with the final snapshots.
pub fn validate_live_stream(text: &str) -> Result<LiveStreamSummary, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, first) = lines.next().ok_or("empty telemetry stream")?;
    let meta = JsonValue::parse(first).map_err(|e| format!("meta line: {e}"))?;
    if meta.get("type").and_then(JsonValue::as_str) != Some("meta") {
        return Err("first line must be a meta line".to_string());
    }
    let version = meta
        .get("live_schema_version")
        .and_then(JsonValue::as_u64)
        .ok_or("meta missing live_schema_version")?;
    if version != u64::from(LIVE_SCHEMA_VERSION) {
        return Err(format!("unsupported live schema version {version}"));
    }
    let p = meta
        .get("p")
        .and_then(JsonValue::as_u64)
        .and_then(|x| usize::try_from(x).ok())
        .ok_or("meta missing p")?;
    let mut summary = LiveStreamSummary {
        p,
        backend: meta
            .get("backend")
            .and_then(JsonValue::as_str)
            .ok_or("meta missing backend")?
            .to_string(),
        final_per_pe: vec![None; p],
        ..LiveStreamSummary::default()
    };
    let mut saw_summary = false;
    for (idx, line) in lines {
        if saw_summary {
            return Err(format!("line {}: content after summary", idx + 1));
        }
        let v = JsonValue::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        match v.get("type").and_then(JsonValue::as_str) {
            Some("snapshot") => {
                let snap =
                    MetricSnapshot::from_json(&v).map_err(|e| format!("line {}: {e}", idx + 1))?;
                if snap.rank >= p {
                    return Err(format!("line {}: rank {} out of range", idx + 1, snap.rank));
                }
                if let Some(prev) = &summary.final_per_pe[snap.rank] {
                    if snap.seq <= prev.seq {
                        return Err(format!(
                            "line {}: rank {} seq {} not increasing (prev {})",
                            idx + 1,
                            snap.rank,
                            snap.seq,
                            prev.seq
                        ));
                    }
                    let monotone = [
                        ("msgs_sent", prev.msgs_sent, snap.msgs_sent),
                        ("bytes_sent", prev.bytes_sent, snap.bytes_sent),
                        ("msgs_recvd", prev.msgs_recvd, snap.msgs_recvd),
                        ("bytes_recvd", prev.bytes_recvd, snap.bytes_recvd),
                        (
                            "recv_wait_count",
                            prev.recv_wait_count,
                            snap.recv_wait_count,
                        ),
                        (
                            "rss_peak_kb",
                            prev.resources.rss_peak_kb,
                            snap.resources.rss_peak_kb,
                        ),
                        ("epoch_ns", prev.epoch_ns, snap.epoch_ns),
                    ];
                    for (name, before, after) in monotone {
                        if after < before {
                            return Err(format!(
                                "line {}: rank {} {name} went backwards ({before} -> {after})",
                                idx + 1,
                                snap.rank
                            ));
                        }
                    }
                }
                summary.snapshots += 1;
                let rank = snap.rank;
                summary.final_per_pe[rank] = Some(snap);
            }
            Some("alert") => {
                v.get("rule")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("line {}: alert missing rule", idx + 1))?;
                summary.alerts += 1;
            }
            Some("summary") => {
                saw_summary = true;
                let s = |k: &str| {
                    v.get(k)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("summary missing {k}"))
                };
                summary.msgs_sent_total = s("msgs_sent_total")?;
                summary.bytes_sent_total = s("bytes_sent_total")?;
                if s("snapshots")? != summary.snapshots {
                    return Err("summary snapshot count does not match stream".to_string());
                }
                let (m, b) = summary
                    .final_per_pe
                    .iter()
                    .flatten()
                    .fold((0u64, 0u64), |(m, b), s| {
                        (m + s.msgs_sent, b + s.bytes_sent)
                    });
                if (m, b) != (summary.msgs_sent_total, summary.bytes_sent_total) {
                    return Err(format!(
                        "summary totals ({}, {}) do not match final snapshots ({m}, {b})",
                        summary.msgs_sent_total, summary.bytes_sent_total
                    ));
                }
            }
            Some("meta") => return Err(format!("line {}: duplicate meta line", idx + 1)),
            _ => return Err(format!("line {}: unknown line type", idx + 1)),
        }
    }
    if !saw_summary {
        return Err("stream has no summary line (monitor not finished?)".to_string());
    }
    Ok(summary)
}

/// Checks a validated stream against the run's report: every rank's
/// final streamed send counters must equal the report's per-PE totals
/// exactly — the conservation contract of the final publish.
pub fn check_stream_matches_report(
    stream: &LiveStreamSummary,
    report: &RunReport,
) -> Result<(), String> {
    if stream.p != report.p {
        return Err(format!("stream p={} but report p={}", stream.p, report.p));
    }
    for pe in &report.per_pe {
        let (msgs, bytes) = pe
            .comm
            .sent
            .iter()
            .fold((0u64, 0u64), |(m, b), e| (m + e.msgs, b + e.bytes));
        let snap = stream.final_per_pe[pe.rank]
            .as_ref()
            .ok_or_else(|| format!("rank {} never published a snapshot", pe.rank))?;
        if (snap.msgs_sent, snap.bytes_sent) != (msgs, bytes) {
            return Err(format!(
                "rank {}: stream final ({}, {}) != report ({msgs}, {bytes})",
                pe.rank, snap.msgs_sent, snap.bytes_sent
            ));
        }
        let (rmsgs, rbytes) = pe
            .comm
            .recvd
            .iter()
            .fold((0u64, 0u64), |(m, b), e| (m + e.msgs, b + e.bytes));
        if (snap.msgs_recvd, snap.bytes_recvd) != (rmsgs, rbytes) {
            return Err(format!(
                "rank {}: stream recv final ({}, {}) != report ({rmsgs}, {rbytes})",
                pe.rank, snap.msgs_recvd, snap.bytes_recvd
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Telemetry frame side channel (multi-process backend).
// ---------------------------------------------------------------------

/// Path of rank `rank`'s telemetry frame file under `dir`.
pub fn telemetry_frame_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("frames-{rank}.bin"))
}

/// Appends one length-prefixed telemetry frame (u32 LE length + UTF-8
/// JSON line) to `w`.
pub fn write_telemetry_frame(w: &mut impl std::io::Write, json_line: &str) -> std::io::Result<()> {
    let len = u32::try_from(json_line.len())
        .map_err(|_| std::io::Error::other("telemetry frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(json_line.as_bytes())?;
    w.flush()
}

/// Reads every complete frame from `bytes`; a truncated final frame
/// (the writer was SIGKILL'd mid-append) is silently discarded.
pub fn read_telemetry_frames(bytes: &[u8]) -> Vec<String> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos + 4 <= bytes.len() {
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(&bytes[pos..pos + 4]);
        let len = u32::from_le_bytes(len_buf) as usize;
        pos += 4;
        if pos + len > bytes.len() {
            break; // truncated tail
        }
        if let Ok(s) = std::str::from_utf8(&bytes[pos..pos + len]) {
            frames.push(s.to_string());
        }
        pos += len;
    }
    frames
}

/// Reads the last complete snapshot frame from a frame file, if any —
/// the blame record for a rank that died mid-run.
pub fn read_last_telemetry_snapshot(path: &Path) -> Option<MetricSnapshot> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .ok()?
        .read_to_end(&mut bytes)
        .ok()?;
    read_telemetry_frames(&bytes)
        .iter()
        .rev()
        .find_map(|line| MetricSnapshot::from_json_line(line).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(rank: usize, seq: u64, bytes_sent: u64) -> MetricSnapshot {
        MetricSnapshot {
            rank,
            seq,
            epoch_ns: seq * 100,
            phase_path: "vcycle/coarsen".to_string(),
            cycle: 1,
            level: 2,
            round: 3,
            msgs_sent: bytes_sent / 8,
            bytes_sent,
            msgs_recvd: bytes_sent / 8,
            bytes_recvd: bytes_sent,
            sent_by_tag: vec![TagEntry {
                tag: 7,
                msgs: bytes_sent / 8,
                bytes: bytes_sent,
            }],
            recvd_by_tag: vec![],
            recv_wait_count: 1,
            recv_wait_p50_ns: 128,
            recv_wait_p95_ns: 512,
            last_cut: 42,
            last_imbalance: 0.03,
            recovery_attempts: 1,
            recovery_retries: 0,
            recovery_recoveries: 0,
            resources: ResourceSample {
                rss_current_kb: 1000,
                rss_peak_kb: 2000,
                thread_cpu_s: 0.5,
                allocs: 0,
                alloc_bytes: 0,
            },
        }
    }

    #[test]
    fn snapshot_round_trips_through_json_line() {
        let s = snap(3, 9, 4096);
        let line = s.to_json_line();
        let parsed = MetricSnapshot::from_json_line(&line).expect("parse");
        assert_eq!(parsed, s);
    }

    #[test]
    fn snapshot_rejects_future_live_schema() {
        let line = snap(0, 1, 64)
            .to_json_line()
            .replace("\"v\": 1", "\"v\": 99");
        let err = MetricSnapshot::from_json_line(&line).expect_err("must reject");
        assert!(err.contains("live schema"), "{err}");
    }

    fn stream_of(lines: &[String]) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\": \"meta\", \"live_schema_version\": {LIVE_SCHEMA_VERSION}, \
             \"p\": 2, \"backend\": \"threads\"}}\n"
        ));
        for l in lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    fn summary_line(snaps: u64, per_pe: &[(u64, u64)]) -> String {
        let mut o = format!(
            "{{\"type\": \"summary\", \"snapshots\": {snaps}, \"alerts\": 0, \"per_pe\": ["
        );
        for (rank, (m, b)) in per_pe.iter().enumerate() {
            if rank > 0 {
                o.push_str(", ");
            }
            o.push_str(&format!(
                "{{\"rank\": {rank}, \"msgs_sent\": {m}, \"bytes_sent\": {b}}}"
            ));
        }
        let (tm, tb) = per_pe
            .iter()
            .fold((0u64, 0u64), |(m, b), &(pm, pb)| (m + pm, b + pb));
        o.push_str(&format!(
            "], \"msgs_sent_total\": {tm}, \"bytes_sent_total\": {tb}}}"
        ));
        o
    }

    #[test]
    fn validate_accepts_wellformed_stream() {
        let text = stream_of(&[
            snap(0, 1, 800).to_json_line(),
            snap(1, 1, 1600).to_json_line(),
            snap(0, 2, 2400).to_json_line(),
            summary_line(3, &[(300, 2400), (200, 1600)]),
        ]);
        let s = validate_live_stream(&text).expect("valid stream");
        assert_eq!(s.p, 2);
        assert_eq!(s.snapshots, 3);
        assert_eq!(s.msgs_sent_total, 500);
        assert_eq!(s.bytes_sent_total, 4000);
        assert_eq!(
            s.final_per_pe[0].as_ref().map(|x| x.seq),
            Some(2),
            "latest snapshot wins"
        );
    }

    #[test]
    fn validate_rejects_seq_regression_and_backwards_counters() {
        let text = stream_of(&[
            snap(0, 2, 800).to_json_line(),
            snap(0, 1, 1600).to_json_line(),
        ]);
        let err = validate_live_stream(&text).expect_err("seq regressed");
        assert!(err.contains("seq"), "{err}");

        let mut shrunk = snap(0, 2, 400);
        shrunk.resources.rss_peak_kb = 1; // below the seq-1 snapshot's peak
        let text = stream_of(&[snap(0, 1, 800).to_json_line(), shrunk.to_json_line()]);
        let err = validate_live_stream(&text).expect_err("counters shrank");
        assert!(err.contains("went backwards"), "{err}");
    }

    #[test]
    fn validate_requires_meta_and_summary() {
        let err = validate_live_stream("").expect_err("empty");
        assert!(err.contains("empty"), "{err}");
        let text = stream_of(&[snap(0, 1, 800).to_json_line()]);
        let err = validate_live_stream(&text).expect_err("no summary");
        assert!(err.contains("summary"), "{err}");
    }

    #[test]
    fn validate_rejects_inconsistent_summary_totals() {
        let text = stream_of(&[
            snap(0, 1, 800).to_json_line(),
            summary_line(1, &[(999, 999), (0, 0)]),
        ]);
        let err = validate_live_stream(&text).expect_err("bad totals");
        assert!(err.contains("do not match"), "{err}");
    }

    #[test]
    fn straggler_skew_blames_slowest_pe_above_floor() {
        let latest = vec![
            Some(snap(0, 5, 1 << 20)),
            Some(snap(1, 5, 1 << 10)), // far behind, above min floor scale
        ];
        let fired = evaluate_alerts(&AlertRule::defaults(), &latest, 1234);
        let skew = fired
            .iter()
            .find(|a| a.rule == "straggler-skew")
            .expect("skew alert");
        assert_eq!(skew.pe, 1);
        assert!(skew.value > 4.0);
        assert_eq!(skew.epoch_ns, 1234);
        // Below the floor nothing fires.
        let tiny = vec![Some(snap(0, 1, 64)), Some(snap(1, 1, 8))];
        assert!(evaluate_alerts(&AlertRule::defaults(), &tiny, 0)
            .iter()
            .all(|a| a.rule != "straggler-skew"));
        // Missing ranks: no verdict.
        let partial = vec![Some(snap(0, 5, 1 << 20)), None];
        assert!(evaluate_alerts(&AlertRule::defaults(), &partial, 0)
            .iter()
            .all(|a| a.rule != "straggler-skew"));
    }

    #[test]
    fn imbalance_and_recovery_rules_fire_on_thresholds() {
        let mut s0 = snap(0, 1, 1 << 20);
        s0.last_imbalance = 0.5;
        s0.recovery_attempts = 3;
        let latest = vec![Some(s0), Some(snap(1, 1, 1 << 20))];
        let fired = evaluate_alerts(&AlertRule::defaults(), &latest, 0);
        assert!(fired.iter().any(|a| a.rule == "imbalance-drift"));
        assert!(fired
            .iter()
            .any(|a| a.rule == "recovery-escalation" && a.value == 2.0));
    }

    #[test]
    fn alert_line_parses_as_json() {
        let a = AlertEvent {
            rule: "straggler-skew".to_string(),
            pe: 2,
            value: 5.5,
            threshold: 4.0,
            epoch_ns: 77,
        };
        let v = JsonValue::parse(&a.to_json_line()).expect("parse");
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("alert"));
        assert_eq!(v.get("pe").and_then(JsonValue::as_u64), Some(2));
    }

    #[test]
    fn frames_round_trip_and_tolerate_truncation() {
        let mut buf = Vec::new();
        let a = snap(0, 1, 100).to_json_line();
        let b = snap(0, 2, 200).to_json_line();
        write_telemetry_frame(&mut buf, &a).expect("write");
        write_telemetry_frame(&mut buf, &b).expect("write");
        assert_eq!(read_telemetry_frames(&buf), vec![a.clone(), b.clone()]);
        // Truncate mid-frame: the partial frame disappears, earlier ones
        // survive (the SIGKILL case).
        let cut = buf.len() - 5;
        assert_eq!(read_telemetry_frames(&buf[..cut]), vec![a]);
    }

    #[test]
    fn render_marks_the_straggler() {
        let latest = vec![Some(snap(0, 1, 1 << 20)), Some(snap(1, 1, 1 << 10)), None];
        let table = render_live_table(&latest);
        assert!(table.contains("<- behind"));
        assert!(table.contains("(no snapshot yet)"));
        assert!(table.contains("vcycle/coarsen"));
    }
}
