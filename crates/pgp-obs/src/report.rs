//! The schema-versioned structured run report.
//!
//! Serialization is hand-rolled (no serde offline) with **fully
//! deterministic ordering**: phases sorted by path (BTreeMap order),
//! per-tag counters sorted by tag ascending, collectives sorted by name.
//! `to_json(true)` zeroes every wall-clock field so reports from two runs
//! with the same seed and config compare byte-for-byte (the golden
//! determinism tests rely on this).

use std::collections::BTreeMap;

use crate::json::{push_json_str, JsonValue};
use crate::live::AlertEvent;
use crate::metrics::{LevelMetrics, RefineMetrics, TagCounter, WaitHistogram};
use crate::recorder::PeState;
use crate::resources::ResourceSample;

/// Report schema version. Bump whenever the JSON shape changes (fields
/// added/removed/renamed); the `schema_fingerprint` test guards this.
///
/// v2: receive waits gained a √2-log-bucket latency histogram, a wait
/// count and per-peer blame per PE, and the aggregate gained
/// `recv_wait_max_s` (+ owning PE) and parse-time-derived p50/p95/p99.
///
/// v3: top-level `recovery` block — supervisor counters (attempts,
/// transient retries, full recoveries, dead ranks, lost V-cycles) from
/// the automatic-recovery layer (DESIGN.md §14). All-zero for
/// unsupervised runs.
///
/// v4: top-level `backend` string naming the comm transport that carried
/// the run ("threads" or "sockets", DESIGN.md §15). Cross-backend golden
/// tests compare reports after normalizing this one field.
///
/// v5: per-PE `resources` block (current/peak RSS, thread-CPU seconds,
/// allocation counters — the live telemetry plane's resource sample,
/// DESIGN.md §16), aggregate `rss_peak_max_kb`/`thread_cpu_total_s`, and
/// a top-level `alerts` array of live-monitor alert events. All of these
/// are wall-clock observations: `to_json(true)` zeroes the resource
/// fields and empties `alerts`, so golden comparisons are unaffected.
pub const SCHEMA_VERSION: u32 = 5;

/// A complete observed run: per-PE detail plus cross-PE aggregates.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Schema version of this report ([`SCHEMA_VERSION`] at creation).
    pub schema_version: u32,
    /// Number of PEs in the run.
    pub p: usize,
    /// Name of the comm transport that carried the run ("threads",
    /// "sockets"). The only report field allowed to differ between the
    /// backends of a cross-backend golden comparison.
    pub backend: String,
    /// Per-PE reports, rank ascending.
    pub per_pe: Vec<PeReport>,
    /// Cross-PE aggregates.
    pub aggregate: Aggregate,
    /// Recovery-supervisor counters (all-zero when no supervisor ran).
    pub recovery: RecoveryReport,
    /// Alert events fired by the live monitor, firing order. Empty when
    /// no monitor ran; emptied by `to_json(true)` (alerts fire on
    /// wall-clock skew, which is racy by nature).
    pub alerts: Vec<AlertEvent>,
}

/// Counters from the recovery supervisor (`run_config_supervised`): how
/// many universe launches a run took and why. Deterministic for a fixed
/// fault plan — unlike wall-clock timings these survive `to_json(true)`
/// so the chaos soak tests can assert on them byte-for-byte.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Universe launches, including the first (a fault-free run is 1).
    pub attempts: u64,
    /// Transient-fault retries: attempts re-run in place because the
    /// failure was an uncorroborated `Timeout` (no rank self-reported
    /// dead), with seeded backoff and a widened watchdog deadline.
    pub retries: u64,
    /// Full recoveries: failure consensus declared ranks dead (or the
    /// transient retry budget escalated) and the group was respawned and
    /// resumed from the latest validated checkpoint.
    pub recoveries: u64,
    /// Every rank ever declared dead by failure consensus, ascending.
    pub dead_ranks: Vec<usize>,
    /// V-cycles started beyond the fault-free count — work that faults
    /// destroyed and the restored group re-did from a checkpoint.
    pub lost_cycles: u64,
}

impl RecoveryReport {
    fn push_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"attempts\": {}, \"retries\": {}, \"recoveries\": {}, \"dead_ranks\": [",
            self.attempts, self.retries, self.recoveries
        ));
        for (i, r) in self.dead_ranks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&r.to_string());
        }
        out.push_str(&format!("], \"lost_cycles\": {}}}", self.lost_cycles));
    }

    fn from_json(v: &JsonValue) -> Result<RecoveryReport, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or(format!("missing recovery.{name}"))
        };
        let dead_ranks = v
            .get("dead_ranks")
            .and_then(JsonValue::as_arr)
            .ok_or("missing recovery.dead_ranks")?
            .iter()
            .map(|r| {
                r.as_u64()
                    .and_then(|x| usize::try_from(x).ok())
                    .ok_or("bad recovery.dead_ranks entry")
            })
            .collect::<Result<_, _>>()?;
        Ok(RecoveryReport {
            attempts: field("attempts")?,
            retries: field("retries")?,
            recoveries: field("recoveries")?,
            dead_ranks,
            lost_cycles: field("lost_cycles")?,
        })
    }
}

/// Everything one PE observed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PeReport {
    /// The PE's rank.
    pub rank: usize,
    /// Closed-span aggregates, path ascending.
    pub phases: Vec<PhaseEntry>,
    /// Communication counters.
    pub comm: CommReport,
    /// Per-level structural snapshots, recording order.
    pub levels: Vec<LevelMetrics>,
    /// Per-refinement-pass quality snapshots, recording order.
    pub refinements: Vec<RefineMetrics>,
    /// Span exits dropped because their name did not match the innermost
    /// open span. Always 0 for RAII-guarded instrumentation.
    pub orphan_exits: u64,
    /// The PE's last resource sample (RSS, thread-CPU, allocation
    /// counters). Wall-clock observations — zeroed by `to_json(true)`.
    pub resources: ResourceSample,
}

/// One span path's aggregate timing.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseEntry {
    /// Full span path, e.g. `vcycle/coarsen/contract`.
    pub path: String,
    /// Number of closures.
    pub count: u64,
    /// Total seconds (wall clock); zeroed by `to_json(true)`.
    pub total_s: f64,
}

/// One PE's communication counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommReport {
    /// Sent messages/bytes, tag ascending.
    pub sent: Vec<TagEntry>,
    /// Received messages/bytes, tag ascending.
    pub recvd: Vec<TagEntry>,
    /// Fault-injection drops, tag ascending.
    pub dropped: Vec<TagEntry>,
    /// Collective invocation counts, name ascending.
    pub collectives: Vec<CollectiveEntry>,
    /// Seconds blocked in receive waits; zeroed by `to_json(true)`.
    pub recv_wait_s: f64,
    /// Number of receive waits that actually blocked. Whether a wait
    /// blocks is a race against the sender, so this (and the histogram
    /// and blame below) is emptied by `to_json(true)`.
    pub recv_wait_count: u64,
    /// Receive-wait latency distribution: sparse √2-log-bucket counts,
    /// bucket index ascending (see `WaitHistogram`). p50/p95/p99 are
    /// re-derived from these at parse time rather than stored.
    pub recv_wait_hist: Vec<HistBucketEntry>,
    /// Receive-wait seconds blamed on each awaited source PE, peer
    /// ascending. Wildcard receives are unattributable and appear only
    /// in the histogram.
    pub recv_wait_by_peer: Vec<PeerWaitEntry>,
    /// Sends held in limbo queues by fault injection.
    pub delayed: u64,
    /// Sends stalled (slept) by fault injection.
    pub stalled: u64,
}

/// One sparse histogram bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistBucketEntry {
    /// Bucket index (see `WaitHistogram::bucket_lower_bound`).
    pub bucket: u32,
    /// Values recorded in this bucket.
    pub count: u64,
}

/// Receive-wait blame for one awaited peer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeerWaitEntry {
    /// The awaited source PE.
    pub peer: usize,
    /// Seconds this PE spent blocked waiting on that peer.
    pub wait_s: f64,
}

/// Messages/bytes for one tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TagEntry {
    /// The message tag (collective tags are ≥ 2^48).
    pub tag: u64,
    /// Message count.
    pub msgs: u64,
    /// Payload wire bytes.
    pub bytes: u64,
}

/// Invocation count for one collective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectiveEntry {
    /// Collective name (`barrier`, `allreduce`, …).
    pub name: String,
    /// Invocation count.
    pub count: u64,
}

/// Cross-PE aggregates, derivable from `per_pe` (and re-derived on
/// parse, so they cannot drift from the detail).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Aggregate {
    /// Total messages sent across all PEs.
    pub messages: u64,
    /// Total payload bytes sent across all PEs.
    pub bytes: u64,
    /// Total collective invocations across all PEs.
    pub collective_calls: u64,
    /// Total seconds blocked in receive waits across all PEs; zeroed by
    /// `to_json(true)`. A plain sum — it hides skew, which is why the
    /// max (and its owner) and the quantiles below exist.
    pub recv_wait_s: f64,
    /// The largest single-PE receive-wait total; zeroed by
    /// `to_json(true)`.
    pub recv_wait_max_s: f64,
    /// Rank of the PE owning `recv_wait_max_s` (0 when no PE waited).
    pub recv_wait_max_pe: usize,
    /// Median single-wait latency across all PEs, re-derived from the
    /// merged per-PE histograms (bucket lower-bound resolution); zeroed
    /// by `to_json(true)`.
    pub recv_wait_p50_s: f64,
    /// 95th-percentile single-wait latency (as `recv_wait_p50_s`).
    pub recv_wait_p95_s: f64,
    /// 99th-percentile single-wait latency (as `recv_wait_p50_s`).
    pub recv_wait_p99_s: f64,
    /// Edge cut after the last recorded refinement pass (rank 0's view;
    /// the value is global). `None` when no refinement was recorded.
    pub final_cut: Option<u64>,
    /// Maximum imbalance over all recorded refinement passes (rank 0).
    pub max_imbalance: f64,
    /// Largest per-PE peak RSS (KiB) — the number a semi-external run's
    /// memory-budget proof cares about. On the threads backend all PEs
    /// share one address space, so this is the process peak; on the
    /// process backend it is a true per-PE maximum. Zeroed by
    /// `to_json(true)`.
    pub rss_peak_max_kb: u64,
    /// Total thread-CPU seconds across the PE threads; zeroed by
    /// `to_json(true)`.
    pub thread_cpu_total_s: f64,
    /// Span aggregates summed across PEs, path ascending.
    pub phases: Vec<PhaseEntry>,
}

impl PeReport {
    /// Converts a finished PE cell into its report form.
    pub(crate) fn from_state(rank: usize, st: &PeState) -> Self {
        let tag_entries = crate::recorder::tag_entries;
        PeReport {
            rank,
            phases: st
                .phases
                .iter()
                .map(|(path, stat)| PhaseEntry {
                    path: path.clone(),
                    count: stat.count,
                    total_s: stat.total_ns as f64 / 1e9,
                })
                .collect(),
            comm: CommReport {
                sent: tag_entries(&st.sent),
                recvd: tag_entries(&st.recvd),
                dropped: tag_entries(&st.dropped),
                collectives: st
                    .collectives
                    .iter()
                    .map(|(&name, &count)| CollectiveEntry {
                        name: name.to_string(),
                        count,
                    })
                    .collect(),
                recv_wait_s: st.recv_wait_hist.total_ns as f64 / 1e9,
                recv_wait_count: st.recv_wait_hist.count,
                recv_wait_hist: st
                    .recv_wait_hist
                    .buckets
                    .iter()
                    .map(|(&bucket, &count)| HistBucketEntry { bucket, count })
                    .collect(),
                recv_wait_by_peer: st
                    .recv_wait_by_peer
                    .iter()
                    .map(|(&peer, &ns)| PeerWaitEntry {
                        peer,
                        wait_s: ns as f64 / 1e9,
                    })
                    .collect(),
                delayed: st.delayed,
                stalled: st.stalled,
            },
            levels: st.levels.clone(),
            refinements: st.refinements.clone(),
            orphan_exits: st.orphan_exits,
            resources: st.resources,
        }
    }
}

impl Aggregate {
    /// Derives the aggregate block from the per-PE detail.
    pub fn from_per_pe(per_pe: &[PeReport]) -> Self {
        let mut agg = Aggregate::default();
        let mut phase_sums: BTreeMap<String, (u64, f64)> = BTreeMap::new();
        let mut merged_hist = WaitHistogram::default();
        for pe in per_pe {
            for e in &pe.comm.sent {
                agg.messages += e.msgs;
                agg.bytes += e.bytes;
            }
            for c in &pe.comm.collectives {
                agg.collective_calls += c.count;
            }
            agg.recv_wait_s += pe.comm.recv_wait_s;
            if pe.comm.recv_wait_s > agg.recv_wait_max_s {
                agg.recv_wait_max_s = pe.comm.recv_wait_s;
                agg.recv_wait_max_pe = pe.rank;
            }
            agg.rss_peak_max_kb = agg.rss_peak_max_kb.max(pe.resources.rss_peak_kb);
            agg.thread_cpu_total_s += pe.resources.thread_cpu_s;
            for e in &pe.comm.recv_wait_hist {
                *merged_hist.buckets.entry(e.bucket).or_insert(0) += e.count;
                merged_hist.count += e.count;
            }
            for ph in &pe.phases {
                let slot = phase_sums.entry(ph.path.clone()).or_insert((0, 0.0));
                slot.0 += ph.count;
                slot.1 += ph.total_s;
            }
        }
        agg.recv_wait_p50_s = merged_hist.quantile_ns(0.50) as f64 / 1e9;
        agg.recv_wait_p95_s = merged_hist.quantile_ns(0.95) as f64 / 1e9;
        agg.recv_wait_p99_s = merged_hist.quantile_ns(0.99) as f64 / 1e9;
        if let Some(pe0) = per_pe.first() {
            agg.final_cut = pe0.refinements.last().map(|r| r.cut);
            agg.max_imbalance = pe0
                .refinements
                .iter()
                .map(|r| r.imbalance)
                .fold(0.0, f64::max);
        }
        agg.phases = phase_sums
            .into_iter()
            .map(|(path, (count, total_s))| PhaseEntry {
                path,
                count,
                total_s,
            })
            .collect();
        agg
    }
}

/// Formats an `f64` deterministically (shortest round-trip repr).
fn push_f64(out: &mut String, x: f64, zero: bool) {
    if zero || x == 0.0 {
        out.push('0');
    } else {
        out.push_str(&format!("{x}"));
    }
}

impl RunReport {
    /// Serializes to JSON. With `zero_timings`, every wall-clock field
    /// (`total_s`, `recv_wait_s`) is written as `0`, making the output a
    /// pure function of the run's deterministic observations.
    pub fn to_json(&self, zero_timings: bool) -> String {
        let z = zero_timings;
        let mut o = String::with_capacity(4096);
        o.push_str("{\n");
        o.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        o.push_str(&format!("  \"p\": {},\n", self.p));
        o.push_str(&format!("  \"backend\": \"{}\",\n", self.backend));
        o.push_str("  \"per_pe\": [");
        for (i, pe) in self.per_pe.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            pe.push_json(&mut o, z);
        }
        o.push_str("\n  ],\n");
        o.push_str("  \"aggregate\": ");
        self.aggregate.push_json(&mut o, z);
        o.push_str(",\n  \"recovery\": ");
        self.recovery.push_json(&mut o);
        // Alerts fire on wall-clock skew — racy, so a zero-timings
        // report empties them wholesale like the wait histograms.
        o.push_str(",\n  \"alerts\": [");
        let alerts: &[AlertEvent] = if z { &[] } else { &self.alerts };
        for (i, a) in alerts.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"rule\": ");
            push_json_str(&mut o, &a.rule);
            o.push_str(&format!(", \"pe\": {}, \"value\": ", a.pe));
            push_f64(&mut o, a.value, false);
            o.push_str(", \"threshold\": ");
            push_f64(&mut o, a.threshold, false);
            o.push_str(&format!(", \"epoch_ns\": {}}}", a.epoch_ns));
        }
        o.push_str(if alerts.is_empty() { "]\n" } else { "\n  ]\n" });
        o.push('}');
        o.push('\n');
        o
    }

    /// Parses a report back from JSON. Rejects unknown schema versions.
    /// The aggregate block is re-derived from the per-PE detail (and
    /// checked against the serialized counts).
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let v = JsonValue::parse(text)?;
        let schema_version = v
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing schema_version")?;
        let sv32 = u32::try_from(schema_version).map_err(|_| "schema_version out of range")?;
        if sv32 != SCHEMA_VERSION {
            return Err(format!(
                "unsupported report schema version {sv32} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let p = v.get("p").and_then(JsonValue::as_u64).ok_or("missing p")?;
        let backend = v
            .get("backend")
            .and_then(JsonValue::as_str)
            .ok_or("missing backend")?
            .to_string();
        let per_pe_json = v
            .get("per_pe")
            .and_then(JsonValue::as_arr)
            .ok_or("missing per_pe")?;
        let per_pe: Vec<PeReport> = per_pe_json
            .iter()
            .map(PeReport::from_json)
            .collect::<Result<_, _>>()?;
        let aggregate = Aggregate::from_per_pe(&per_pe);
        let claimed_msgs = v
            .get("aggregate")
            .and_then(|a| a.get("messages"))
            .and_then(JsonValue::as_u64)
            .ok_or("missing aggregate.messages")?;
        if claimed_msgs != aggregate.messages {
            return Err(format!(
                "aggregate.messages {} does not match per-PE detail {}",
                claimed_msgs, aggregate.messages
            ));
        }
        let claimed_recv_wait = v
            .get("aggregate")
            .and_then(|a| a.get("recv_wait_s"))
            .and_then(JsonValue::as_f64)
            .ok_or("missing aggregate.recv_wait_s")?;
        // The skew fields are pure functions of the per-PE detail (the
        // per-PE wait totals are floats either way), so unlike the sum
        // they can be checked exactly against the re-derivation.
        let claimed_max = v
            .get("aggregate")
            .and_then(|a| a.get("recv_wait_max_s"))
            .and_then(JsonValue::as_f64)
            .ok_or("missing aggregate.recv_wait_max_s")?;
        let claimed_max_pe = v
            .get("aggregate")
            .and_then(|a| a.get("recv_wait_max_pe"))
            .and_then(JsonValue::as_u64)
            .ok_or("missing aggregate.recv_wait_max_pe")?;
        if claimed_max != aggregate.recv_wait_max_s
            || claimed_max_pe != aggregate.recv_wait_max_pe as u64
        {
            return Err(format!(
                "aggregate.recv_wait_max {claimed_max}s@pe{claimed_max_pe} does not match \
                 per-PE detail {}s@pe{}",
                aggregate.recv_wait_max_s, aggregate.recv_wait_max_pe
            ));
        }
        let mut aggregate = aggregate;
        // A zero-timings report legitimately disagrees with re-derived
        // (also zero) timings; keep whichever was serialized.
        aggregate.recv_wait_s = claimed_recv_wait;
        let recovery = RecoveryReport::from_json(v.get("recovery").ok_or("missing recovery")?)?;
        let alerts = v
            .get("alerts")
            .and_then(JsonValue::as_arr)
            .ok_or("missing alerts")?
            .iter()
            .map(|a| {
                Ok(AlertEvent {
                    rule: a
                        .get("rule")
                        .and_then(JsonValue::as_str)
                        .ok_or("alert missing rule")?
                        .to_string(),
                    pe: a
                        .get("pe")
                        .and_then(JsonValue::as_u64)
                        .and_then(|x| usize::try_from(x).ok())
                        .ok_or("alert missing pe")?,
                    value: a
                        .get("value")
                        .and_then(JsonValue::as_f64)
                        .ok_or("alert missing value")?,
                    threshold: a
                        .get("threshold")
                        .and_then(JsonValue::as_f64)
                        .ok_or("alert missing threshold")?,
                    epoch_ns: a
                        .get("epoch_ns")
                        .and_then(JsonValue::as_u64)
                        .ok_or("alert missing epoch_ns")?,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(RunReport {
            schema_version: sv32,
            p: usize::try_from(p).map_err(|_| "p out of range")?,
            backend,
            per_pe,
            aggregate,
            recovery,
            alerts,
        })
    }

    /// Sums `sent` counters per tag across all PEs.
    pub fn total_sent_per_tag(&self) -> BTreeMap<u64, TagCounter> {
        Self::sum_tags(self.per_pe.iter().flat_map(|pe| pe.comm.sent.iter()))
    }

    /// Sums `recvd` counters per tag across all PEs.
    pub fn total_recvd_per_tag(&self) -> BTreeMap<u64, TagCounter> {
        Self::sum_tags(self.per_pe.iter().flat_map(|pe| pe.comm.recvd.iter()))
    }

    /// Sums `dropped` counters per tag across all PEs.
    pub fn total_dropped_per_tag(&self) -> BTreeMap<u64, TagCounter> {
        Self::sum_tags(self.per_pe.iter().flat_map(|pe| pe.comm.dropped.iter()))
    }

    fn sum_tags<'a>(entries: impl Iterator<Item = &'a TagEntry>) -> BTreeMap<u64, TagCounter> {
        let mut out: BTreeMap<u64, TagCounter> = BTreeMap::new();
        for e in entries {
            let c = out.entry(e.tag).or_default();
            c.msgs += e.msgs;
            c.bytes += e.bytes;
        }
        out
    }

    /// The sorted set of JSON key paths this schema produces. The schema
    /// guard test pins this against a golden list: changing the shape
    /// without bumping [`SCHEMA_VERSION`] fails that test.
    pub fn schema_fingerprint() -> Vec<String> {
        let per_pe = vec![PeReport {
            rank: 0,
            phases: vec![PhaseEntry {
                path: "a".to_string(),
                count: 1,
                total_s: 1.0,
            }],
            comm: CommReport {
                sent: vec![TagEntry {
                    tag: 1,
                    msgs: 1,
                    bytes: 1,
                }],
                recvd: vec![TagEntry {
                    tag: 1,
                    msgs: 1,
                    bytes: 1,
                }],
                dropped: vec![TagEntry {
                    tag: 1,
                    msgs: 1,
                    bytes: 1,
                }],
                collectives: vec![CollectiveEntry {
                    name: "barrier".to_string(),
                    count: 1,
                }],
                recv_wait_s: 1.0,
                recv_wait_count: 1,
                recv_wait_hist: vec![HistBucketEntry {
                    bucket: 1,
                    count: 1,
                }],
                recv_wait_by_peer: vec![PeerWaitEntry {
                    peer: 1,
                    wait_s: 1.0,
                }],
                delayed: 0,
                stalled: 0,
            },
            levels: vec![LevelMetrics::default()],
            refinements: vec![RefineMetrics::default()],
            orphan_exits: 0,
            resources: ResourceSample {
                rss_current_kb: 1,
                rss_peak_kb: 1,
                thread_cpu_s: 1.0,
                allocs: 1,
                alloc_bytes: 1,
            },
        }];
        let sample = RunReport {
            schema_version: SCHEMA_VERSION,
            p: 1,
            backend: "threads".to_string(),
            aggregate: Aggregate::from_per_pe(&per_pe),
            per_pe,
            recovery: RecoveryReport {
                attempts: 1,
                retries: 1,
                recoveries: 1,
                dead_ranks: vec![1],
                lost_cycles: 1,
            },
            alerts: vec![AlertEvent {
                rule: "straggler-skew".to_string(),
                pe: 1,
                value: 1.0,
                threshold: 1.0,
                epoch_ns: 1,
            }],
        };
        let json = sample.to_json(false);
        let v = JsonValue::parse(&json).expect("schema sample must parse");
        let mut paths = Vec::new();
        collect_paths(&v, "", &mut paths);
        paths.sort();
        paths.dedup();
        paths
    }
}

fn collect_paths(v: &JsonValue, prefix: &str, out: &mut Vec<String>) {
    match v {
        JsonValue::Obj(fields) => {
            for (k, child) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                out.push(path.clone());
                collect_paths(child, &path, out);
            }
        }
        JsonValue::Arr(items) => {
            for item in items {
                collect_paths(item, &format!("{prefix}[]"), out);
            }
        }
        _ => {}
    }
}

impl PeReport {
    fn push_json(&self, o: &mut String, z: bool) {
        o.push_str("    {\n");
        o.push_str(&format!("      \"rank\": {},\n", self.rank));
        o.push_str("      \"phases\": [");
        for (i, ph) in self.phases.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("        {\"path\": ");
            push_json_str(o, &ph.path);
            o.push_str(&format!(", \"count\": {}, \"total_s\": ", ph.count));
            push_f64(o, ph.total_s, z);
            o.push('}');
        }
        o.push_str(if self.phases.is_empty() {
            "],\n"
        } else {
            "\n      ],\n"
        });
        o.push_str("      \"comm\": {\n");
        for (key, entries) in [
            ("sent", &self.comm.sent),
            ("recvd", &self.comm.recvd),
            ("dropped", &self.comm.dropped),
        ] {
            o.push_str(&format!("        \"{key}\": ["));
            for (i, e) in entries.iter().enumerate() {
                o.push_str(if i == 0 { "\n" } else { ",\n" });
                o.push_str(&format!(
                    "          {{\"tag\": {}, \"msgs\": {}, \"bytes\": {}}}",
                    e.tag, e.msgs, e.bytes
                ));
            }
            o.push_str(if entries.is_empty() {
                "],\n"
            } else {
                "\n        ],\n"
            });
        }
        o.push_str("        \"collectives\": [");
        for (i, c) in self.comm.collectives.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("          {\"name\": ");
            push_json_str(o, &c.name);
            o.push_str(&format!(", \"count\": {}}}", c.count));
        }
        o.push_str(if self.comm.collectives.is_empty() {
            "],\n"
        } else {
            "\n        ],\n"
        });
        o.push_str("        \"recv_wait_s\": ");
        push_f64(o, self.comm.recv_wait_s, z);
        // Wait counts, the latency histogram and per-peer blame record
        // *whether* receives blocked — a race against the sender — so a
        // zero-timings report empties them entirely.
        o.push_str(&format!(
            ",\n        \"recv_wait_count\": {},\n",
            if z { 0 } else { self.comm.recv_wait_count }
        ));
        o.push_str("        \"recv_wait_hist\": [");
        let hist: &[HistBucketEntry] = if z { &[] } else { &self.comm.recv_wait_hist };
        for (i, e) in hist.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str(&format!(
                "          {{\"bucket\": {}, \"count\": {}}}",
                e.bucket, e.count
            ));
        }
        o.push_str(if hist.is_empty() {
            "],\n"
        } else {
            "\n        ],\n"
        });
        o.push_str("        \"recv_wait_by_peer\": [");
        let by_peer: &[PeerWaitEntry] = if z { &[] } else { &self.comm.recv_wait_by_peer };
        for (i, e) in by_peer.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str(&format!("          {{\"peer\": {}, \"wait_s\": ", e.peer));
            push_f64(o, e.wait_s, false);
            o.push('}');
        }
        o.push_str(if by_peer.is_empty() {
            "],\n"
        } else {
            "\n        ],\n"
        });
        o.push_str(&format!(
            "        \"delayed\": {}, \"stalled\": {}\n",
            self.comm.delayed, self.comm.stalled
        ));
        o.push_str("      },\n");
        o.push_str("      \"levels\": [");
        for (i, l) in self.levels.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str(&format!(
                "        {{\"cycle\": {}, \"level\": {}, \"n_global\": {}, \"m_global\": {}, \
                 \"n_local\": {}, \"n_ghost\": {}}}",
                l.cycle, l.level, l.n_global, l.m_global, l.n_local, l.n_ghost
            ));
        }
        o.push_str(if self.levels.is_empty() {
            "],\n"
        } else {
            "\n      ],\n"
        });
        o.push_str("      \"refinements\": [");
        for (i, r) in self.refinements.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str(&format!(
                "        {{\"cycle\": {}, \"level\": {}, \"cut\": {}, \"imbalance\": ",
                r.cycle, r.level, r.cut
            ));
            // Imbalance is deterministic (derived from integer weights),
            // not a timing: never zeroed.
            push_f64(o, r.imbalance, false);
            o.push('}');
        }
        o.push_str(if self.refinements.is_empty() {
            "],\n"
        } else {
            "\n      ],\n"
        });
        o.push_str(&format!("      \"orphan_exits\": {},\n", self.orphan_exits));
        // The resource sample is pure wall-clock observation; a
        // zero-timings report zeroes all five fields.
        let r = if z {
            ResourceSample::default()
        } else {
            self.resources
        };
        o.push_str(&format!(
            "      \"resources\": {{\"rss_current_kb\": {}, \"rss_peak_kb\": {}, \
             \"thread_cpu_s\": ",
            r.rss_current_kb, r.rss_peak_kb
        ));
        push_f64(o, r.thread_cpu_s, z);
        o.push_str(&format!(
            ", \"allocs\": {}, \"alloc_bytes\": {}}}\n",
            r.allocs, r.alloc_bytes
        ));
        o.push_str("    }");
    }

    fn from_json(v: &JsonValue) -> Result<PeReport, String> {
        let rank = v
            .get("rank")
            .and_then(JsonValue::as_u64)
            .ok_or("pe missing rank")?;
        let phases = v
            .get("phases")
            .and_then(JsonValue::as_arr)
            .ok_or("pe missing phases")?
            .iter()
            .map(|ph| {
                Ok(PhaseEntry {
                    path: ph
                        .get("path")
                        .and_then(JsonValue::as_str)
                        .ok_or("phase missing path")?
                        .to_string(),
                    count: ph
                        .get("count")
                        .and_then(JsonValue::as_u64)
                        .ok_or("phase missing count")?,
                    total_s: ph
                        .get("total_s")
                        .and_then(JsonValue::as_f64)
                        .ok_or("phase missing total_s")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let comm = v.get("comm").ok_or("pe missing comm")?;
        let tag_list = |key: &str| -> Result<Vec<TagEntry>, String> {
            comm.get(key)
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| format!("comm missing {key}"))?
                .iter()
                .map(|e| {
                    Ok(TagEntry {
                        tag: e.get("tag").and_then(JsonValue::as_u64).ok_or("no tag")?,
                        msgs: e.get("msgs").and_then(JsonValue::as_u64).ok_or("no msgs")?,
                        bytes: e
                            .get("bytes")
                            .and_then(JsonValue::as_u64)
                            .ok_or("no bytes")?,
                    })
                })
                .collect()
        };
        let collectives = comm
            .get("collectives")
            .and_then(JsonValue::as_arr)
            .ok_or("comm missing collectives")?
            .iter()
            .map(|c| {
                Ok(CollectiveEntry {
                    name: c
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or("collective missing name")?
                        .to_string(),
                    count: c
                        .get("count")
                        .and_then(JsonValue::as_u64)
                        .ok_or("collective missing count")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let levels = v
            .get("levels")
            .and_then(JsonValue::as_arr)
            .ok_or("pe missing levels")?
            .iter()
            .map(|l| {
                let f = |k: &str| l.get(k).and_then(JsonValue::as_u64);
                Ok(LevelMetrics {
                    cycle: u32::try_from(f("cycle").ok_or("level missing cycle")?)
                        .map_err(|_| "cycle out of range")?,
                    level: u32::try_from(f("level").ok_or("level missing level")?)
                        .map_err(|_| "level out of range")?,
                    n_global: f("n_global").ok_or("level missing n_global")?,
                    m_global: f("m_global").ok_or("level missing m_global")?,
                    n_local: f("n_local").ok_or("level missing n_local")?,
                    n_ghost: f("n_ghost").ok_or("level missing n_ghost")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let refinements = v
            .get("refinements")
            .and_then(JsonValue::as_arr)
            .ok_or("pe missing refinements")?
            .iter()
            .map(|r| {
                Ok(RefineMetrics {
                    cycle: u32::try_from(
                        r.get("cycle")
                            .and_then(JsonValue::as_u64)
                            .ok_or("refine missing cycle")?,
                    )
                    .map_err(|_| "cycle out of range")?,
                    level: u32::try_from(
                        r.get("level")
                            .and_then(JsonValue::as_u64)
                            .ok_or("refine missing level")?,
                    )
                    .map_err(|_| "level out of range")?,
                    cut: r.get("cut").and_then(JsonValue::as_u64).ok_or("no cut")?,
                    imbalance: r
                        .get("imbalance")
                        .and_then(JsonValue::as_f64)
                        .ok_or("no imbalance")?,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(PeReport {
            rank: usize::try_from(rank).map_err(|_| "rank out of range")?,
            phases,
            comm: CommReport {
                sent: tag_list("sent")?,
                recvd: tag_list("recvd")?,
                dropped: tag_list("dropped")?,
                collectives,
                recv_wait_s: comm
                    .get("recv_wait_s")
                    .and_then(JsonValue::as_f64)
                    .ok_or("comm missing recv_wait_s")?,
                recv_wait_count: comm
                    .get("recv_wait_count")
                    .and_then(JsonValue::as_u64)
                    .ok_or("comm missing recv_wait_count")?,
                recv_wait_hist: comm
                    .get("recv_wait_hist")
                    .and_then(JsonValue::as_arr)
                    .ok_or("comm missing recv_wait_hist")?
                    .iter()
                    .map(|e| {
                        Ok(HistBucketEntry {
                            bucket: u32::try_from(
                                e.get("bucket")
                                    .and_then(JsonValue::as_u64)
                                    .ok_or("hist missing bucket")?,
                            )
                            .map_err(|_| "bucket out of range")?,
                            count: e
                                .get("count")
                                .and_then(JsonValue::as_u64)
                                .ok_or("hist missing count")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
                recv_wait_by_peer: comm
                    .get("recv_wait_by_peer")
                    .and_then(JsonValue::as_arr)
                    .ok_or("comm missing recv_wait_by_peer")?
                    .iter()
                    .map(|e| {
                        Ok(PeerWaitEntry {
                            peer: usize::try_from(
                                e.get("peer")
                                    .and_then(JsonValue::as_u64)
                                    .ok_or("blame missing peer")?,
                            )
                            .map_err(|_| "peer out of range")?,
                            wait_s: e
                                .get("wait_s")
                                .and_then(JsonValue::as_f64)
                                .ok_or("blame missing wait_s")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
                delayed: comm
                    .get("delayed")
                    .and_then(JsonValue::as_u64)
                    .ok_or("comm missing delayed")?,
                stalled: comm
                    .get("stalled")
                    .and_then(JsonValue::as_u64)
                    .ok_or("comm missing stalled")?,
            },
            levels,
            refinements,
            orphan_exits: v
                .get("orphan_exits")
                .and_then(JsonValue::as_u64)
                .ok_or("pe missing orphan_exits")?,
            resources: {
                let res = v.get("resources").ok_or("pe missing resources")?;
                let ru = |k: &str| {
                    res.get(k)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("resources missing {k}"))
                };
                ResourceSample {
                    rss_current_kb: ru("rss_current_kb")?,
                    rss_peak_kb: ru("rss_peak_kb")?,
                    thread_cpu_s: res
                        .get("thread_cpu_s")
                        .and_then(JsonValue::as_f64)
                        .ok_or("resources missing thread_cpu_s")?,
                    allocs: ru("allocs")?,
                    alloc_bytes: ru("alloc_bytes")?,
                }
            },
        })
    }
}

impl Aggregate {
    fn push_json(&self, o: &mut String, z: bool) {
        o.push_str("{\n");
        o.push_str(&format!(
            "    \"messages\": {}, \"bytes\": {}, \"collective_calls\": {},\n",
            self.messages, self.bytes, self.collective_calls
        ));
        o.push_str("    \"recv_wait_s\": ");
        push_f64(o, self.recv_wait_s, z);
        o.push_str(",\n    \"recv_wait_max_s\": ");
        push_f64(o, self.recv_wait_max_s, z);
        o.push_str(&format!(
            ", \"recv_wait_max_pe\": {},\n",
            if z { 0 } else { self.recv_wait_max_pe }
        ));
        o.push_str("    \"recv_wait_p50_s\": ");
        push_f64(o, self.recv_wait_p50_s, z);
        o.push_str(", \"recv_wait_p95_s\": ");
        push_f64(o, self.recv_wait_p95_s, z);
        o.push_str(", \"recv_wait_p99_s\": ");
        push_f64(o, self.recv_wait_p99_s, z);
        o.push_str(",\n    \"final_cut\": ");
        match self.final_cut {
            Some(cut) => o.push_str(&format!("{cut}")),
            None => o.push_str("null"),
        }
        o.push_str(",\n    \"max_imbalance\": ");
        push_f64(o, self.max_imbalance, false);
        o.push_str(&format!(
            ",\n    \"rss_peak_max_kb\": {}, \"thread_cpu_total_s\": ",
            if z { 0 } else { self.rss_peak_max_kb }
        ));
        push_f64(o, self.thread_cpu_total_s, z);
        o.push_str(",\n    \"phases\": [");
        for (i, ph) in self.phases.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("      {\"path\": ");
            push_json_str(o, &ph.path);
            o.push_str(&format!(", \"count\": {}, \"total_s\": ", ph.count));
            push_f64(o, ph.total_s, z);
            o.push('}');
        }
        o.push_str(if self.phases.is_empty() {
            "]\n"
        } else {
            "\n    ]\n"
        });
        o.push_str("  }");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Obs;

    fn sample_report() -> RunReport {
        let obs = Obs::new(2);
        let r0 = obs.recorder(0);
        let r1 = obs.recorder(1);
        {
            let _v = r0.span("vcycle");
            let _c = r0.span("coarsen");
            r0.on_send(1, 7, 24);
            r0.on_send(1, 1 << 48, 8);
            r0.count_collective("barrier");
        }
        r1.on_recv(0, 7, 24);
        r1.on_recv(0, 1 << 48, 8);
        r1.count_collective("barrier");
        r1.end_wait(r1.start_wait(Some(0), 7));
        r0.record_level(LevelMetrics {
            cycle: 0,
            level: 0,
            n_global: 100,
            m_global: 400,
            n_local: 50,
            n_ghost: 10,
        });
        r0.record_refine(RefineMetrics {
            cycle: 0,
            level: 0,
            cut: 42,
            imbalance: 0.03,
        });
        r0.sample_resources();
        obs.record_alert(&AlertEvent {
            rule: "straggler-skew".to_string(),
            pe: 1,
            value: 5.5,
            threshold: 4.0,
            epoch_ns: 123,
        });
        obs.report()
    }

    #[test]
    fn json_round_trips_byte_for_byte() {
        let report = sample_report();
        for zero in [false, true] {
            let json = report.to_json(zero);
            let parsed = RunReport::from_json(&json).expect("parse");
            assert_eq!(parsed.to_json(zero), json, "zero={zero}");
        }
    }

    #[test]
    fn zero_timings_is_deterministic_shape() {
        let report = sample_report();
        let json = report.to_json(true);
        assert!(!json.contains("total_s\": 0."), "timings must be zeroed");
        assert!(json.contains("\"schema_version\": 5"));
        assert!(json.contains("\"final_cut\": 42"));
        assert!(
            json.contains("\"imbalance\": 0.03"),
            "imbalance survives zeroing"
        );
        assert!(
            json.contains("\"recv_wait_count\": 0") && json.contains("\"recv_wait_hist\": []"),
            "racy wait observations must be emptied: {json}"
        );
        assert!(json.contains("\"recv_wait_by_peer\": []"));
        assert!(
            json.contains("\"resources\": {\"rss_current_kb\": 0, \"rss_peak_kb\": 0"),
            "resource samples must be zeroed: {json}"
        );
        assert!(
            json.contains("\"alerts\": []") && json.contains("\"rss_peak_max_kb\": 0"),
            "alerts/resource aggregates must be emptied: {json}"
        );
    }

    #[test]
    fn conservation_helpers_sum_across_pes() {
        let report = sample_report();
        let sent = report.total_sent_per_tag();
        let recvd = report.total_recvd_per_tag();
        assert_eq!(sent, recvd);
        assert_eq!(sent[&7].bytes, 24);
        assert!(report.total_dropped_per_tag().is_empty());
    }

    #[test]
    fn parse_rejects_future_schema() {
        let report = sample_report();
        let json = report
            .to_json(true)
            .replace("\"schema_version\": 5", "\"schema_version\": 999");
        let err = RunReport::from_json(&json).expect_err("must reject");
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn parse_rejects_inconsistent_aggregate() {
        let report = sample_report();
        let json = report
            .to_json(true)
            .replace("\"messages\": 2", "\"messages\": 99");
        let err = RunReport::from_json(&json).expect_err("must reject");
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn aggregate_max_wait_names_owning_pe() {
        let mut report = sample_report();
        // Give PE 0 a bigger wait than PE 1 by hand and re-derive.
        report.per_pe[0].comm.recv_wait_s = 2.5;
        report.aggregate = Aggregate::from_per_pe(&report.per_pe);
        assert_eq!(report.aggregate.recv_wait_max_s, 2.5);
        assert_eq!(report.aggregate.recv_wait_max_pe, 0);
        assert!(report.aggregate.recv_wait_s >= 2.5, "sum includes the max");
    }

    #[test]
    fn parse_rejects_wrong_max_attribution() {
        let mut report = sample_report();
        report.per_pe[0].comm.recv_wait_s = 2.5;
        report.per_pe[1].comm.recv_wait_s = 0.5;
        report.aggregate = Aggregate::from_per_pe(&report.per_pe);
        let json = report
            .to_json(false)
            .replace("\"recv_wait_max_pe\": 0", "\"recv_wait_max_pe\": 1");
        let err = RunReport::from_json(&json).expect_err("must reject");
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn parse_rederives_quantiles_from_histograms() {
        let report = sample_report();
        let json = report.to_json(false);
        let parsed = RunReport::from_json(&json).expect("parse");
        // The sample records one real wait on PE 1; the quantiles come
        // back from the serialized buckets, not from stored values.
        assert_eq!(parsed.per_pe[1].comm.recv_wait_count, 1);
        assert!(parsed.aggregate.recv_wait_p99_s >= parsed.aggregate.recv_wait_p50_s);
    }

    /// Schema guard: if this test fails because the key set changed, bump
    /// [`SCHEMA_VERSION`] and update the golden list together.
    #[test]
    fn schema_fingerprint_is_pinned() {
        let expected: Vec<&str> = vec![
            "aggregate",
            "aggregate.bytes",
            "aggregate.collective_calls",
            "aggregate.final_cut",
            "aggregate.max_imbalance",
            "aggregate.messages",
            "aggregate.phases",
            "aggregate.phases[].count",
            "aggregate.phases[].path",
            "aggregate.phases[].total_s",
            "aggregate.recv_wait_max_pe",
            "aggregate.recv_wait_max_s",
            "aggregate.recv_wait_p50_s",
            "aggregate.recv_wait_p95_s",
            "aggregate.recv_wait_p99_s",
            "aggregate.recv_wait_s",
            "aggregate.rss_peak_max_kb",
            "aggregate.thread_cpu_total_s",
            "alerts",
            "alerts[].epoch_ns",
            "alerts[].pe",
            "alerts[].rule",
            "alerts[].threshold",
            "alerts[].value",
            "backend",
            "p",
            "per_pe",
            "per_pe[].comm",
            "per_pe[].comm.collectives",
            "per_pe[].comm.collectives[].count",
            "per_pe[].comm.collectives[].name",
            "per_pe[].comm.delayed",
            "per_pe[].comm.dropped",
            "per_pe[].comm.dropped[].bytes",
            "per_pe[].comm.dropped[].msgs",
            "per_pe[].comm.dropped[].tag",
            "per_pe[].comm.recv_wait_by_peer",
            "per_pe[].comm.recv_wait_by_peer[].peer",
            "per_pe[].comm.recv_wait_by_peer[].wait_s",
            "per_pe[].comm.recv_wait_count",
            "per_pe[].comm.recv_wait_hist",
            "per_pe[].comm.recv_wait_hist[].bucket",
            "per_pe[].comm.recv_wait_hist[].count",
            "per_pe[].comm.recv_wait_s",
            "per_pe[].comm.recvd",
            "per_pe[].comm.recvd[].bytes",
            "per_pe[].comm.recvd[].msgs",
            "per_pe[].comm.recvd[].tag",
            "per_pe[].comm.sent",
            "per_pe[].comm.sent[].bytes",
            "per_pe[].comm.sent[].msgs",
            "per_pe[].comm.sent[].tag",
            "per_pe[].comm.stalled",
            "per_pe[].levels",
            "per_pe[].levels[].cycle",
            "per_pe[].levels[].level",
            "per_pe[].levels[].m_global",
            "per_pe[].levels[].n_ghost",
            "per_pe[].levels[].n_global",
            "per_pe[].levels[].n_local",
            "per_pe[].orphan_exits",
            "per_pe[].phases",
            "per_pe[].phases[].count",
            "per_pe[].phases[].path",
            "per_pe[].phases[].total_s",
            "per_pe[].rank",
            "per_pe[].refinements",
            "per_pe[].refinements[].cut",
            "per_pe[].refinements[].cycle",
            "per_pe[].refinements[].imbalance",
            "per_pe[].refinements[].level",
            "per_pe[].resources",
            "per_pe[].resources.alloc_bytes",
            "per_pe[].resources.allocs",
            "per_pe[].resources.rss_current_kb",
            "per_pe[].resources.rss_peak_kb",
            "per_pe[].resources.thread_cpu_s",
            "recovery",
            "recovery.attempts",
            "recovery.dead_ranks",
            "recovery.lost_cycles",
            "recovery.recoveries",
            "recovery.retries",
            "schema_version",
        ];
        assert_eq!(SCHEMA_VERSION, 5, "bumped version: update the golden list");
        assert_eq!(
            RunReport::schema_fingerprint(),
            expected,
            "schema shape changed: bump SCHEMA_VERSION and update this list"
        );
    }
}
