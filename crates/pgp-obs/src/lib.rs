//! Observability layer for the ParHIP reproduction (ISSUE 4).
//!
//! The paper's experimental section (Sec. V of arXiv:1404.4797) reports
//! per-phase behavior — coarsening levels, SCLP iterations, communication
//! volume, balance over V-cycles — that the pipeline must be able to
//! surface without perturbing the measurement. This crate provides:
//!
//! - [`Obs`]/[`Recorder`]: a run-wide registry with one observation cell
//!   per PE. Each PE thread records into its own cell (single-writer, so
//!   the `parking_lot` mutexes are uncontended); the report is assembled
//!   after the PEs have joined. A disabled [`Recorder`] is a `None` — every
//!   hook is a single branch, which keeps the hot path within noise when
//!   observability is off.
//! - Span timers ([`Recorder::span`]): RAII-guarded, path-keyed
//!   (`vcycle/coarsen/contract`), with strict nesting discipline —
//!   a mismatched exit is dropped and counted, never corrupts the stack.
//! - Comm counters ([`Recorder::on_send`] etc.): messages/bytes per tag on
//!   both the send and receive side, collective invocation counts,
//!   receive-wait time, and chaos fault counters (delayed/stalled/dropped).
//!   These enable conservation assertions (Σ sent − Σ dropped == Σ
//!   received, per tag) that were previously unwritable.
//! - Structural metrics ([`LevelMetrics`], [`RefineMetrics`]): the
//!   per-level quantities the SEA'14 companion paper (arXiv:1402.3281)
//!   uses to diagnose quality — nodes/edges/ghosts after each contraction,
//!   cut and imbalance after each refinement pass.
//! - [`RunReport`]: a schema-versioned, hand-rolled JSON report (no serde
//!   in the offline vendor set) with fully deterministic field ordering;
//!   `to_json(true)` zeroes every timing field so reports from runs with
//!   the same seed and config compare byte-for-byte.
//! - [`FlushSlot`]: the lock-free single-writer seqlock used to publish a
//!   PE's running totals at phase barriers so an external observer (the
//!   deadlock watchdog, a progress display) can snapshot without touching
//!   the owner's cell mutex.
//! - [`PassStats`]: the unified local-search outcome type that replaces
//!   the previously duplicated `SclpStats`/`FmStats`.
//! - Trace timelines ([`RunTrace`], via [`Obs::with_trace`]): bounded
//!   per-PE event rings recording span open/close, sends/receives with
//!   per-peer sequence numbers, per-peer receive waits, collective
//!   entry/exit, and fault-injection incidents — all on one run-wide
//!   monotonic epoch. Exportable as Chrome-trace/Perfetto JSON
//!   ([`to_perfetto_json`], checked by [`validate_perfetto`]) and
//!   analyzable in-process (`RunTrace::phase_blame`,
//!   `RunTrace::collective_skews`) for straggler attribution.
//! - [`WaitHistogram`]: √2-log-bucket latency histogram behind the
//!   report's receive-wait distribution fields (p50/p95/p99 are
//!   re-derived from the buckets at parse time).
//! - Live telemetry plane ([`MetricSnapshot`], [`LiveMonitor`],
//!   [`AlertRule`]): in-flight per-PE snapshots published at phase
//!   boundaries into shared slots (and, on the process backend,
//!   length-prefixed frame files), aggregated into an NDJSON stream
//!   plus a live straggler table, with alert rules whose events land in
//!   the stream, the report's `alerts` block, and the trace ring.
//! - Resource profiling ([`ResourceSample`]): current/peak RSS,
//!   thread-CPU seconds, and (feature `count-alloc`) allocation
//!   counters — per-PE in the report and in every live snapshot.
//!
//! Raw `Instant::now()` in `crates/{core,pgp-dmp,pgp-lp}` is confined to
//! this crate's seam by `cargo xtask lint` rule 7 (`instant-now`): time is
//! taken inside [`Recorder`]/[`WaitToken`], so algorithm and comm code
//! never handle clocks directly. The same rule covers this crate's own
//! sources — the annotated recorder/epoch sites are the only sanctioned
//! timestamp escapes.

mod handoff;
mod json;
mod live;
mod metrics;
mod perfetto;
mod recorder;
mod report;
mod resources;
mod trace;

pub use handoff::FlushSlot;
pub use json::JsonValue;
pub use live::{
    check_stream_matches_report, evaluate_alerts, read_last_telemetry_snapshot,
    read_telemetry_frames, render_live_table, telemetry_frame_path, validate_live_stream,
    write_telemetry_frame, AlertEvent, AlertRule, LiveMonitor, LiveMonitorConfig,
    LiveStreamSummary, MetricSnapshot, MonitorStats, LIVE_SCHEMA_VERSION,
};
pub use metrics::{LevelMetrics, PassStats, PhaseStat, RefineMetrics, TagCounter, WaitHistogram};
pub use perfetto::{to_perfetto_json, validate_perfetto};
pub use recorder::{CollectiveGuard, Obs, Recorder, SpanGuard, WaitToken, DEFAULT_TRACE_CAPACITY};
pub use report::{
    Aggregate, CollectiveEntry, CommReport, HistBucketEntry, PeReport, PeerWaitEntry, PhaseEntry,
    RecoveryReport, RunReport, TagEntry, SCHEMA_VERSION,
};
pub use resources::{alloc_counters, read_rss_kb, thread_cpu_seconds, ResourceSample};
pub use trace::{
    CollectiveSkew, FaultKind, PeTrace, PhaseBlame, RunTrace, TraceEvent, TraceEventKind,
};
