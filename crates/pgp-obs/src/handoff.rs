//! The counter-flush handoff: a single-writer seqlock slot.
//!
//! Each PE publishes its running comm totals into its [`FlushSlot`] at
//! phase barriers (`Comm::fresh_tag_block`). External observers — the
//! deadlock watchdog, a progress display — snapshot the pair without
//! touching the owner's cell mutex, which the owner may hold mid-record.
//!
//! The algorithm is a classic seqlock specialized to a single writer: the
//! writer brackets its stores with two counter increments (odd = write in
//! progress), the reader retries until it observes the same even counter
//! before and after loading the data words. All fields are atomics, so
//! there is no UB-level tearing to begin with; the seqlock adds *pair*
//! consistency — a successful snapshot is always some published
//! `(msgs, bytes)` pair, never a mix of two publishes.
//!
//! `SeqCst` throughout: publishes happen once per phase (cold), and the
//! simpler ordering argument is worth more than the saved fence. A loom
//! model of this handoff lives in `tests/handoff.rs` behind `cfg(loom)`
//! (loom is not in the offline vendor set; the model documents the
//! interleaving argument and runs where loom is available).

use std::sync::atomic::{AtomicU64, Ordering};

/// Single-writer seqlock publishing a `(msgs, bytes)` pair.
#[derive(Debug, Default)]
pub struct FlushSlot {
    /// Even = stable, odd = publish in progress.
    seq: AtomicU64,
    msgs: AtomicU64,
    bytes: AtomicU64,
}

impl FlushSlot {
    /// A fresh slot holding `(0, 0)`.
    pub const fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            msgs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Publishes a new pair. Must only be called by the slot's owner
    /// thread (single-writer invariant; concurrent publishers would
    /// interleave their odd/even brackets and livelock readers).
    pub fn publish(&self, msgs: u64, bytes: u64) {
        self.seq.fetch_add(1, Ordering::SeqCst); // -> odd
        self.msgs.store(msgs, Ordering::SeqCst);
        self.bytes.store(bytes, Ordering::SeqCst);
        self.seq.fetch_add(1, Ordering::SeqCst); // -> even
    }

    /// One snapshot attempt: `None` if a publish was in flight.
    pub fn try_snapshot(&self) -> Option<(u64, u64)> {
        let s1 = self.seq.load(Ordering::SeqCst);
        if s1 & 1 == 1 {
            return None;
        }
        let msgs = self.msgs.load(Ordering::SeqCst);
        let bytes = self.bytes.load(Ordering::SeqCst);
        if self.seq.load(Ordering::SeqCst) != s1 {
            return None;
        }
        Some((msgs, bytes))
    }

    /// Snapshot, retrying until consistent. The writer's critical section
    /// is three stores, so this converges immediately in practice.
    pub fn snapshot(&self) -> (u64, u64) {
        loop {
            if let Some(pair) = self.try_snapshot() {
                return pair;
            }
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_snapshot() {
        let slot = FlushSlot::new();
        assert_eq!(slot.snapshot(), (0, 0));
        slot.publish(3, 96);
        assert_eq!(slot.snapshot(), (3, 96));
        slot.publish(7, 224);
        assert_eq!(slot.try_snapshot(), Some((7, 224)));
    }
}
