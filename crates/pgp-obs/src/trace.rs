//! Cross-PE event timelines: the bounded per-PE trace ring and the
//! analyses derived from it (phase-attributed wait blame, collective
//! skew).
//!
//! The ring records *events* — timestamped span open/close, sends and
//! receives with per-peer sequence numbers, per-peer receive waits,
//! collective entry/exit, and fault-injection incidents — where the run
//! report records only *aggregates*. Timestamps are nanoseconds since
//! the run's monotonic epoch (captured at `Universe` setup and rebased
//! on checkpoint resume), so events from different PEs of one run share
//! a single clock and can be laid out on one timeline.
//!
//! Determinism: with a deterministic algorithm and a fixed seed, every
//! event kind except [`TraceEventKind::RecvWait`] occurs at a fixed
//! point in each PE's program order. `RecvWait` events exist only when
//! a receive actually blocked — a race against the sender — so
//! [`RunTrace::event_signature`] excludes them, and reports receives in
//! sorted rather than arrival order (polling receives drain whatever
//! has arrived *so far*). The signature is what the trace golden tests
//! compare.

use std::collections::BTreeMap;

/// Which fault-injection action produced a [`TraceEventKind::Fault`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The send was silently discarded.
    Drop,
    /// The send was held in the sender's limbo queue.
    Delay,
    /// The sender slept before delivering.
    Stall,
}

impl FaultKind {
    /// Short lowercase label (`drop` / `delay` / `stall`).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Stall => "stall",
        }
    }
}

/// One recorded event kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened (full `/`-joined path).
    SpanOpen {
        /// Full span path, e.g. `vcycle/coarsen`.
        path: String,
    },
    /// A span closed.
    SpanClose {
        /// Full span path.
        path: String,
    },
    /// A point-to-point send. `seq` is the 0-based sequence number of
    /// this message among all sends from this PE to `dst` on `tag`.
    Send {
        /// Destination PE.
        dst: usize,
        /// Message tag.
        tag: u64,
        /// Per-(dst, tag) send sequence number.
        seq: u64,
        /// Payload wire bytes.
        bytes: u64,
    },
    /// A point-to-point receive. `seq` is the 0-based sequence number
    /// among all receives on this PE from `src` on `tag`; mailboxes are
    /// FIFO per (src, tag), so in fault-free runs the i-th receive
    /// matches the i-th send and flow arrows connect them. Fault
    /// injection (drops, reordered limbo flushes) can shift the
    /// correspondence — a documented limitation.
    Recv {
        /// Source PE.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Per-(src, tag) receive sequence number.
        seq: u64,
        /// Payload wire bytes.
        bytes: u64,
    },
    /// A receive blocked for `wait_ns`. `src` is the awaited peer
    /// (`None` for wildcard receives that scan all sources). The
    /// timestamp is the *end* of the wait.
    RecvWait {
        /// Awaited source PE, if the receive named one.
        src: Option<usize>,
        /// Awaited tag.
        tag: u64,
        /// Nanoseconds blocked.
        wait_ns: u64,
    },
    /// A collective was entered (before any of its communication).
    CollectiveEnter {
        /// Collective name (`barrier`, `allreduce`, …).
        name: &'static str,
    },
    /// The matching collective exit.
    CollectiveExit {
        /// Collective name.
        name: &'static str,
    },
    /// The live monitor fired an alert rule blaming this PE (straggler
    /// skew, imbalance drift, recovery escalation — DESIGN.md §16).
    /// Pushed onto the blamed PE's ring so the alert lands on its
    /// timeline next to the behavior that caused it. Alerts fire on
    /// wall-clock skew, so like [`TraceEventKind::RecvWait`] they are
    /// excluded from [`RunTrace::event_signature`].
    Alert {
        /// Alert rule identifier (`straggler-skew`, …).
        rule: String,
        /// Observed value that crossed the threshold, in thousandths
        /// (integer so the event kind stays `Eq`-comparable).
        value_milli: u64,
    },
    /// Fault injection acted on a send from this PE. Keeping injected
    /// time in its own event kind (rather than letting it surface as
    /// peer wait) keeps chaos-run timelines interpretable: the stalled
    /// PE shows `fault` time, its peers show waits *on* it.
    Fault {
        /// What the injector did.
        kind: FaultKind,
        /// The send's destination PE.
        peer: usize,
        /// The send's tag.
        tag: u64,
        /// Injected duration in nanoseconds (0 for drops and delays,
        /// whose cost is borne elsewhere).
        dur_ns: u64,
    },
}

/// One timestamped event on one PE's timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the run's monotonic epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Bounded event buffer for one PE. Single-writer (the owning PE
/// thread, under its observation cell's lock); appends are O(1) and
/// allocation-free once at capacity. When full, *new* events are
/// dropped (drop-newest) and counted — dropping oldest would shift
/// which prefix survives and make truncation nondeterministic.
pub(crate) struct TraceRing {
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
    /// Next send sequence number per (dst, tag).
    send_seq: BTreeMap<(usize, u64), u64>,
    /// Next receive sequence number per (src, tag).
    recv_seq: BTreeMap<(usize, u64), u64>,
}

impl TraceRing {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            events: Vec::new(),
            cap,
            dropped: 0,
            send_seq: BTreeMap::new(),
            recv_seq: BTreeMap::new(),
        }
    }

    /// Appends an event, or counts it as dropped at capacity.
    pub(crate) fn push(&mut self, ts_ns: u64, kind: TraceEventKind) {
        if self.events.len() < self.cap {
            self.events.push(TraceEvent { ts_ns, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// Allocates the next send sequence number toward (`dst`, `tag`).
    pub(crate) fn next_send_seq(&mut self, dst: usize, tag: u64) -> u64 {
        let slot = self.send_seq.entry((dst, tag)).or_insert(0);
        let seq = *slot;
        *slot += 1;
        seq
    }

    /// Allocates the next receive sequence number from (`src`, `tag`).
    pub(crate) fn next_recv_seq(&mut self, src: usize, tag: u64) -> u64 {
        let slot = self.recv_seq.entry((src, tag)).or_insert(0);
        let seq = *slot;
        *slot += 1;
        seq
    }

    /// Non-destructive copy into the report form.
    pub(crate) fn snapshot(&self, rank: usize) -> PeTrace {
        PeTrace {
            rank,
            events: self.events.clone(),
            dropped: self.dropped,
        }
    }
}

/// One PE's finished timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeTrace {
    /// The PE's rank.
    pub rank: usize,
    /// Events in recording order.
    pub events: Vec<TraceEvent>,
    /// Events discarded because the ring was full.
    pub dropped: u64,
}

/// A complete traced run: one timeline per PE on a shared clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunTrace {
    /// Number of PEs.
    pub p: usize,
    /// Per-PE timelines, rank ascending.
    pub per_pe: Vec<PeTrace>,
}

/// Receive-wait time attributed to one span path, with per-peer blame.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseBlame {
    /// Total nanoseconds any PE spent blocked in receives while this
    /// span path was its innermost open span.
    pub total_wait_ns: u64,
    /// Blame per awaited peer (waits whose receive named a source).
    pub by_peer: BTreeMap<usize, u64>,
    /// Wait from wildcard receives, attributable to no single peer.
    pub unattributed_ns: u64,
}

/// Arrival skew of one collective invocation across PEs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectiveSkew {
    /// Collective name.
    pub name: String,
    /// 0-based invocation ordinal of this name (per PE; collectives are
    /// SPMD-uniform, so ordinals line up across PEs).
    pub ordinal: u64,
    /// Last arrival minus first arrival, nanoseconds.
    pub skew_ns: u64,
    /// The last PE to arrive — the one the others waited for.
    pub last_pe: usize,
}

impl RunTrace {
    /// Deterministic fingerprint of the run's event structure, used by
    /// the trace golden tests: kinds, span paths, peers, tags, seqnos
    /// and byte counts — never timestamps. [`TraceEventKind::RecvWait`]
    /// events are excluded (their existence is a race), receives are
    /// listed sorted by (src, tag, seq) rather than in arrival order
    /// (polling receives observe arrival timing), and the dropped
    /// count is excluded (wait events share the ring's capacity).
    pub fn event_signature(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for pe in &self.per_pe {
            let _ = writeln!(out, "pe {}", pe.rank);
            let mut recvs: Vec<(usize, u64, u64, u64)> = Vec::new();
            for ev in &pe.events {
                match &ev.kind {
                    TraceEventKind::SpanOpen { path } => {
                        let _ = writeln!(out, "  open {path}");
                    }
                    TraceEventKind::SpanClose { path } => {
                        let _ = writeln!(out, "  close {path}");
                    }
                    TraceEventKind::Send {
                        dst,
                        tag,
                        seq,
                        bytes,
                    } => {
                        let _ = writeln!(out, "  send dst={dst} tag={tag} seq={seq} bytes={bytes}");
                    }
                    TraceEventKind::Recv {
                        src,
                        tag,
                        seq,
                        bytes,
                    } => recvs.push((*src, *tag, *seq, *bytes)),
                    // Waits and alerts exist only because of wall-clock
                    // races; neither belongs in a deterministic signature.
                    TraceEventKind::RecvWait { .. } | TraceEventKind::Alert { .. } => {}
                    TraceEventKind::CollectiveEnter { name } => {
                        let _ = writeln!(out, "  coll+ {name}");
                    }
                    TraceEventKind::CollectiveExit { name } => {
                        let _ = writeln!(out, "  coll- {name}");
                    }
                    TraceEventKind::Fault {
                        kind,
                        peer,
                        tag,
                        dur_ns,
                    } => {
                        let _ = writeln!(
                            out,
                            "  fault {} peer={peer} tag={tag} dur_ns={dur_ns}",
                            kind.label()
                        );
                    }
                }
            }
            recvs.sort_unstable();
            for (src, tag, seq, bytes) in recvs {
                let _ = writeln!(out, "  recv src={src} tag={tag} seq={seq} bytes={bytes}");
            }
        }
        out
    }

    /// Attributes every receive wait to the span path that was
    /// innermost open on the waiting PE, blaming the awaited peer.
    /// Waits outside any span land under `"(root)"`.
    pub fn phase_blame(&self) -> BTreeMap<String, PhaseBlame> {
        let mut blame: BTreeMap<String, PhaseBlame> = BTreeMap::new();
        for pe in &self.per_pe {
            let mut stack: Vec<&str> = Vec::new();
            for ev in &pe.events {
                match &ev.kind {
                    TraceEventKind::SpanOpen { path } => stack.push(path),
                    TraceEventKind::SpanClose { path } if stack.last() == Some(&path.as_str()) => {
                        stack.pop();
                    }
                    TraceEventKind::RecvWait { src, wait_ns, .. } => {
                        let path = stack.last().copied().unwrap_or("(root)");
                        let slot = blame.entry(path.to_string()).or_default();
                        slot.total_wait_ns += wait_ns;
                        match src {
                            Some(peer) => *slot.by_peer.entry(*peer).or_insert(0) += wait_ns,
                            None => slot.unattributed_ns += wait_ns,
                        }
                    }
                    _ => {}
                }
            }
        }
        blame
    }

    /// Computes per-invocation arrival skew for every collective that
    /// all PEs entered. PEs share one process clock, so the deltas are
    /// directly comparable; the responsible (last-arriving) PE is named.
    pub fn collective_skews(&self) -> Vec<CollectiveSkew> {
        // (name, ordinal) -> arrivals as (ts_ns, rank).
        let mut arrivals: BTreeMap<(&'static str, u64), Vec<(u64, usize)>> = BTreeMap::new();
        for pe in &self.per_pe {
            let mut ordinals: BTreeMap<&'static str, u64> = BTreeMap::new();
            for ev in &pe.events {
                if let TraceEventKind::CollectiveEnter { name } = &ev.kind {
                    let ord = ordinals.entry(name).or_insert(0);
                    arrivals
                        .entry((name, *ord))
                        .or_default()
                        .push((ev.ts_ns, pe.rank));
                    *ord += 1;
                }
            }
        }
        arrivals
            .into_iter()
            .filter(|(_, arr)| arr.len() == self.p)
            .map(|((name, ordinal), arr)| {
                let &(first, _) = arr.iter().min().expect("p >= 1 arrivals");
                let &(last, last_pe) = arr.iter().max().expect("p >= 1 arrivals");
                CollectiveSkew {
                    name: name.to_string(),
                    ordinal,
                    skew_ns: last - first,
                    last_pe,
                }
            })
            .collect()
    }

    /// Total receive-wait nanoseconds blamed on each peer, across all
    /// PEs and phases. Convenience over [`RunTrace::phase_blame`].
    pub fn blame_by_peer(&self) -> BTreeMap<usize, u64> {
        let mut out: BTreeMap<usize, u64> = BTreeMap::new();
        for b in self.phase_blame().values() {
            for (&peer, &ns) in &b.by_peer {
                *out.entry(peer).or_insert(0) += ns;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { ts_ns, kind }
    }

    #[test]
    fn ring_drops_newest_at_capacity() {
        let mut ring = TraceRing::new(2);
        ring.push(1, TraceEventKind::CollectiveEnter { name: "barrier" });
        ring.push(2, TraceEventKind::CollectiveExit { name: "barrier" });
        ring.push(3, TraceEventKind::CollectiveEnter { name: "barrier" });
        let pe = ring.snapshot(0);
        assert_eq!(pe.events.len(), 2);
        assert_eq!(pe.dropped, 1);
        assert_eq!(pe.events[0].ts_ns, 1, "oldest events survive");
    }

    #[test]
    fn seqnos_are_per_peer_per_tag() {
        let mut ring = TraceRing::new(8);
        assert_eq!(ring.next_send_seq(1, 7), 0);
        assert_eq!(ring.next_send_seq(1, 7), 1);
        assert_eq!(ring.next_send_seq(2, 7), 0, "independent per dst");
        assert_eq!(ring.next_send_seq(1, 8), 0, "independent per tag");
        assert_eq!(ring.next_recv_seq(1, 7), 0, "recv side independent");
    }

    #[test]
    fn signature_skips_waits_and_sorts_recvs() {
        let mk = |events: Vec<TraceEvent>| RunTrace {
            p: 1,
            per_pe: vec![PeTrace {
                rank: 0,
                events,
                dropped: 0,
            }],
        };
        let a = mk(vec![
            ev(
                5,
                TraceEventKind::Recv {
                    src: 1,
                    tag: 7,
                    seq: 0,
                    bytes: 8,
                },
            ),
            ev(
                9,
                TraceEventKind::RecvWait {
                    src: Some(2),
                    tag: 7,
                    wait_ns: 100,
                },
            ),
            ev(
                10,
                TraceEventKind::Recv {
                    src: 0,
                    tag: 7,
                    seq: 0,
                    bytes: 8,
                },
            ),
        ]);
        let b = mk(vec![
            ev(
                1,
                TraceEventKind::Recv {
                    src: 0,
                    tag: 7,
                    seq: 0,
                    bytes: 8,
                },
            ),
            ev(
                2,
                TraceEventKind::Recv {
                    src: 1,
                    tag: 7,
                    seq: 0,
                    bytes: 8,
                },
            ),
        ]);
        assert_eq!(
            a.event_signature(),
            b.event_signature(),
            "arrival order and waits must not affect the signature"
        );
    }

    #[test]
    fn blame_attributes_waits_to_innermost_span_and_peer() {
        let trace = RunTrace {
            p: 2,
            per_pe: vec![
                PeTrace {
                    rank: 0,
                    events: vec![
                        ev(
                            0,
                            TraceEventKind::SpanOpen {
                                path: "vcycle".into(),
                            },
                        ),
                        ev(
                            1,
                            TraceEventKind::SpanOpen {
                                path: "vcycle/coarsen".into(),
                            },
                        ),
                        ev(
                            50,
                            TraceEventKind::RecvWait {
                                src: Some(1),
                                tag: 7,
                                wait_ns: 40,
                            },
                        ),
                        ev(
                            60,
                            TraceEventKind::SpanClose {
                                path: "vcycle/coarsen".into(),
                            },
                        ),
                        ev(
                            70,
                            TraceEventKind::RecvWait {
                                src: None,
                                tag: 9,
                                wait_ns: 5,
                            },
                        ),
                        ev(
                            80,
                            TraceEventKind::SpanClose {
                                path: "vcycle".into(),
                            },
                        ),
                    ],
                    dropped: 0,
                },
                PeTrace {
                    rank: 1,
                    events: vec![ev(
                        30,
                        TraceEventKind::RecvWait {
                            src: Some(0),
                            tag: 7,
                            wait_ns: 10,
                        },
                    )],
                    dropped: 0,
                },
            ],
        };
        let blame = trace.phase_blame();
        assert_eq!(blame["vcycle/coarsen"].total_wait_ns, 40);
        assert_eq!(blame["vcycle/coarsen"].by_peer[&1], 40);
        assert_eq!(blame["vcycle"].unattributed_ns, 5);
        assert_eq!(blame["(root)"].by_peer[&0], 10);
        assert_eq!(trace.blame_by_peer()[&1], 40);
    }

    #[test]
    fn collective_skew_names_last_arrival() {
        let enter = |ts, name| ev(ts, TraceEventKind::CollectiveEnter { name });
        let trace = RunTrace {
            p: 2,
            per_pe: vec![
                PeTrace {
                    rank: 0,
                    events: vec![enter(10, "barrier"), enter(100, "barrier")],
                    dropped: 0,
                },
                PeTrace {
                    rank: 1,
                    events: vec![enter(40, "barrier"), enter(90, "barrier")],
                    dropped: 0,
                },
            ],
        };
        let skews = trace.collective_skews();
        assert_eq!(skews.len(), 2);
        assert_eq!((skews[0].skew_ns, skews[0].last_pe), (30, 1));
        assert_eq!((skews[1].skew_ns, skews[1].last_pe), (10, 0));
        assert_eq!(skews[0].name, "barrier");
    }
}
