//! Plain metric value types shared across the workspace.

/// Outcome statistics for one local-search pass (SCLP clustering, SCLP
/// refinement, or sequential FM). Unifies the former `SclpStats` and
/// `FmStats` duplicates: both are "how many rounds ran, how many moves
/// were applied, what total gain" — FM reports gain, SCLP leaves it 0.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Rounds (label-propagation iterations or FM passes) executed.
    pub rounds: usize,
    /// Node moves applied across all rounds.
    pub moves: u64,
    /// Total cut gain achieved (FM only; SCLP reports 0).
    pub gain: i64,
}

/// Messages/bytes observed for one tag on one side (send or receive).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TagCounter {
    /// Number of messages.
    pub msgs: u64,
    /// Payload wire bytes (element count × element size; identical on the
    /// send and receive side of the same message, which is what makes the
    /// conservation assertion exact).
    pub bytes: u64,
}

impl TagCounter {
    /// Accumulates one message of `bytes` payload bytes.
    pub fn add(&mut self, bytes: u64) {
        self.msgs += 1;
        self.bytes += bytes;
    }
}

/// Aggregated timing for one span path (e.g. `vcycle/coarsen/contract`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of times the span closed.
    pub count: u64,
    /// Total nanoseconds across all closures.
    pub total_ns: u64,
}

/// Structural snapshot of one hierarchy level, recorded after the
/// contraction that produced it (coarsen loop).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelMetrics {
    /// V-cycle index (absolute, so resumed runs line up).
    pub cycle: u32,
    /// Level index within the cycle (0 = first coarse level).
    pub level: u32,
    /// Global node count of the coarse graph.
    pub n_global: u64,
    /// Global (undirected) edge count of the coarse graph.
    pub m_global: u64,
    /// Nodes owned by this PE.
    pub n_local: u64,
    /// Ghost (halo) nodes replicated on this PE.
    pub n_ghost: u64,
}

impl LevelMetrics {
    /// Builds a snapshot from loop indices. `cycle` and `level` are tiny
    /// (V-cycle and hierarchy-depth counters); values beyond `u32::MAX`
    /// saturate rather than panic.
    pub fn at(
        cycle: usize,
        level: usize,
        n_global: u64,
        m_global: u64,
        n_local: u64,
        n_ghost: u64,
    ) -> Self {
        Self {
            cycle: u32::try_from(cycle).unwrap_or(u32::MAX),
            level: u32::try_from(level).unwrap_or(u32::MAX),
            n_global,
            m_global,
            n_local,
            n_ghost,
        }
    }
}

/// Quality snapshot after one refinement pass during uncoarsening.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RefineMetrics {
    /// V-cycle index (absolute).
    pub cycle: u32,
    /// Hierarchy level the pass refined (0 = finest).
    pub level: u32,
    /// Global edge cut after the pass.
    pub cut: u64,
    /// Imbalance ε′ = max_b w(b) / ⌈w(V)/k⌉ − 1 after the pass.
    pub imbalance: f64,
}

impl RefineMetrics {
    /// Builds a snapshot from loop indices (saturating, as
    /// [`LevelMetrics::at`]).
    pub fn at(cycle: usize, level: usize, cut: u64, imbalance: f64) -> Self {
        Self {
            cycle: u32::try_from(cycle).unwrap_or(u32::MAX),
            level: u32::try_from(level).unwrap_or(u32::MAX),
            cut,
            imbalance,
        }
    }
}
