//! Plain metric value types shared across the workspace.

use std::collections::BTreeMap;

/// Log-bucketed (power-of-√2) latency histogram over nanosecond values.
///
/// Bucket 0 holds exactly `0 ns`; for `ns ≥ 1` with `k = ⌊log2 ns⌋`,
/// bucket `1 + 2k` covers `[2^k, ⌊√2·2^k⌋)` and bucket `2 + 2k` covers
/// `[⌊√2·2^k⌋, 2^{k+1})` — two buckets per octave, ~41% relative
/// resolution, O(1) indexing (one `ilog2` plus one compare). The exact
/// `total_ns` sum is kept alongside, so the histogram strictly
/// generalizes the old sum-only accumulator (count conservation is a
/// property test). Buckets are stored sparsely; merging is bucket-wise
/// addition and therefore independent of merge order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WaitHistogram {
    /// Sparse bucket counts, index ascending.
    pub buckets: BTreeMap<u32, u64>,
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of all recorded values (nanoseconds).
    pub total_ns: u64,
}

/// Integer square root (largest `r` with `r² ≤ x`), hand-rolled so the
/// bucket boundaries do not depend on `isqrt` stabilization.
fn isqrt_u128(x: u128) -> u128 {
    if x < 2 {
        return x;
    }
    // Newton's method from an upper-bound seed; converges in a few steps.
    let mut r = 1u128 << (x.ilog2() / 2 + 1);
    loop {
        let next = (r + x / r) / 2;
        if next >= r {
            return r;
        }
        r = next;
    }
}

impl WaitHistogram {
    /// Bucket index for a nanosecond value.
    pub fn bucket_of(ns: u64) -> u32 {
        if ns == 0 {
            return 0;
        }
        let k = ns.ilog2();
        let mid = isqrt_u128(1u128 << (2 * k + 1)) as u64;
        1 + 2 * k + u32::from(ns >= mid)
    }

    /// Inclusive lower boundary of a bucket (its quantile estimate).
    /// Saturates at `u64::MAX` for indices past the u64 range.
    pub fn bucket_lower_bound(index: u32) -> u64 {
        if index == 0 {
            return 0;
        }
        let k = (index - 1) / 2;
        if k >= 64 {
            return u64::MAX;
        }
        if (index - 1).is_multiple_of(2) {
            1u64 << k
        } else {
            u64::try_from(isqrt_u128(1u128 << (2 * k + 1))).unwrap_or(u64::MAX)
        }
    }

    /// Records one value.
    pub fn record(&mut self, ns: u64) {
        *self.buckets.entry(Self::bucket_of(ns)).or_insert(0) += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
    }

    /// Bucket-wise merge (commutative and associative).
    pub fn merge(&mut self, other: &WaitHistogram) {
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
    }

    /// The `q`-quantile (0 < q ≤ 1) as the lower boundary of the bucket
    /// containing the ⌈q·count⌉-th smallest value; 0 when empty. A
    /// bucket-resolution estimate — exact values are not retained.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (&b, &n) in &self.buckets {
            cum += n;
            if cum >= target {
                return Self::bucket_lower_bound(b);
            }
        }
        // Unreachable when count equals the bucket sum; be forgiving.
        self.buckets
            .keys()
            .next_back()
            .map_or(0, |&b| Self::bucket_lower_bound(b))
    }
}

/// Outcome statistics for one local-search pass (SCLP clustering, SCLP
/// refinement, or sequential FM). Unifies the former `SclpStats` and
/// `FmStats` duplicates: both are "how many rounds ran, how many moves
/// were applied, what total gain" — FM reports gain, SCLP leaves it 0.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Rounds (label-propagation iterations or FM passes) executed.
    pub rounds: usize,
    /// Node moves applied across all rounds.
    pub moves: u64,
    /// Total cut gain achieved (FM only; SCLP reports 0).
    pub gain: i64,
}

/// Messages/bytes observed for one tag on one side (send or receive).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TagCounter {
    /// Number of messages.
    pub msgs: u64,
    /// Payload wire bytes (element count × element size; identical on the
    /// send and receive side of the same message, which is what makes the
    /// conservation assertion exact).
    pub bytes: u64,
}

impl TagCounter {
    /// Accumulates one message of `bytes` payload bytes.
    pub fn add(&mut self, bytes: u64) {
        self.msgs += 1;
        self.bytes += bytes;
    }
}

/// Aggregated timing for one span path (e.g. `vcycle/coarsen/contract`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of times the span closed.
    pub count: u64,
    /// Total nanoseconds across all closures.
    pub total_ns: u64,
}

/// Structural snapshot of one hierarchy level, recorded after the
/// contraction that produced it (coarsen loop).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelMetrics {
    /// V-cycle index (absolute, so resumed runs line up).
    pub cycle: u32,
    /// Level index within the cycle (0 = first coarse level).
    pub level: u32,
    /// Global node count of the coarse graph.
    pub n_global: u64,
    /// Global (undirected) edge count of the coarse graph.
    pub m_global: u64,
    /// Nodes owned by this PE.
    pub n_local: u64,
    /// Ghost (halo) nodes replicated on this PE.
    pub n_ghost: u64,
}

impl LevelMetrics {
    /// Builds a snapshot from loop indices. `cycle` and `level` are tiny
    /// (V-cycle and hierarchy-depth counters); values beyond `u32::MAX`
    /// saturate rather than panic.
    pub fn at(
        cycle: usize,
        level: usize,
        n_global: u64,
        m_global: u64,
        n_local: u64,
        n_ghost: u64,
    ) -> Self {
        Self {
            cycle: u32::try_from(cycle).unwrap_or(u32::MAX),
            level: u32::try_from(level).unwrap_or(u32::MAX),
            n_global,
            m_global,
            n_local,
            n_ghost,
        }
    }
}

/// Quality snapshot after one refinement pass during uncoarsening.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RefineMetrics {
    /// V-cycle index (absolute).
    pub cycle: u32,
    /// Hierarchy level the pass refined (0 = finest).
    pub level: u32,
    /// Global edge cut after the pass.
    pub cut: u64,
    /// Imbalance ε′ = max_b w(b) / ⌈w(V)/k⌉ − 1 after the pass.
    pub imbalance: f64,
}

impl RefineMetrics {
    /// Builds a snapshot from loop indices (saturating, as
    /// [`LevelMetrics::at`]).
    pub fn at(cycle: usize, level: usize, cut: u64, imbalance: f64) -> Self {
        Self {
            cycle: u32::try_from(cycle).unwrap_or(u32::MAX),
            level: u32::try_from(level).unwrap_or(u32::MAX),
            cut,
            imbalance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_are_monotone() {
        for i in 0..130u32 {
            assert!(
                WaitHistogram::bucket_lower_bound(i) <= WaitHistogram::bucket_lower_bound(i + 1),
                "boundary {i} decreasing"
            );
        }
    }

    #[test]
    fn bucket_of_lands_between_boundaries() {
        for ns in [0u64, 1, 2, 3, 5, 7, 8, 100, 1_000, u64::MAX / 2, u64::MAX] {
            let b = WaitHistogram::bucket_of(ns);
            assert!(WaitHistogram::bucket_lower_bound(b) <= ns, "ns={ns}");
            if b < u32::MAX {
                // The topmost bucket's upper boundary saturates at u64::MAX,
                // so it contains u64::MAX inclusively.
                let next = WaitHistogram::bucket_lower_bound(b + 1);
                assert!(ns < next || next == u64::MAX, "ns={ns}");
            }
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let mut h = WaitHistogram::default();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        // p50 and p95 sit in 10's bucket; p99 still does; the max does not.
        let b10 = WaitHistogram::bucket_lower_bound(WaitHistogram::bucket_of(10));
        assert_eq!(h.quantile_ns(0.50), b10);
        assert_eq!(h.quantile_ns(0.99), b10);
        assert_eq!(
            h.quantile_ns(1.0),
            WaitHistogram::bucket_lower_bound(WaitHistogram::bucket_of(1_000_000))
        );
        assert_eq!(WaitHistogram::default().quantile_ns(0.5), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Count conservation: the histogram generalizes the old
        /// sum-only accumulator — `total_ns` equals the plain sum and
        /// the bucket counts add up to the number of records.
        #[test]
        fn conserves_count_and_sum(values in proptest::collection::vec(0u64..=1u64 << 40, 0..200)) {
            let mut h = WaitHistogram::default();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.count, values.len() as u64);
            prop_assert_eq!(h.total_ns, values.iter().sum::<u64>());
            prop_assert_eq!(h.buckets.values().sum::<u64>(), h.count);
        }

        /// Every recorded value falls inside its bucket's range.
        #[test]
        fn bucket_ranges_contain_their_values(ns in 0u64..=u64::MAX) {
            let b = WaitHistogram::bucket_of(ns);
            prop_assert!(WaitHistogram::bucket_lower_bound(b) <= ns);
            // The topmost bucket extends to u64::MAX inclusive (saturated
            // upper boundary).
            prop_assert!(ns < WaitHistogram::bucket_lower_bound(b + 1)
                || WaitHistogram::bucket_lower_bound(b + 1) == u64::MAX);
        }

        /// Quantile re-derivation is stable under merge order: merging
        /// per-PE histograms in any permutation yields identical
        /// buckets and therefore identical p50/p95/p99.
        #[test]
        fn merge_order_does_not_change_quantiles(
            parts in proptest::collection::vec(
                proptest::collection::vec(0u64..=1u64 << 30, 0..40), 1..6),
            seed in 0u64..=u64::MAX,
        ) {
            let hists: Vec<WaitHistogram> = parts
                .iter()
                .map(|vs| {
                    let mut h = WaitHistogram::default();
                    for &v in vs {
                        h.record(v);
                    }
                    h
                })
                .collect();
            let mut forward = WaitHistogram::default();
            for h in &hists {
                forward.merge(h);
            }
            // A seed-driven permutation of the merge order.
            let mut order: Vec<usize> = (0..hists.len()).collect();
            let mut s = seed;
            for i in (1..order.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                order.swap(i, (s >> 33) as usize % (i + 1));
            }
            let mut shuffled = WaitHistogram::default();
            for &i in &order {
                shuffled.merge(&hists[i]);
            }
            prop_assert_eq!(&forward, &shuffled);
            for q in [0.5, 0.95, 0.99] {
                prop_assert_eq!(forward.quantile_ns(q), shuffled.quantile_ns(q));
            }
        }
    }
}
