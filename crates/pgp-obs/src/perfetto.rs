//! Chrome-trace / Perfetto JSON export of a [`RunTrace`], plus the
//! structural validator CI runs on exported artifacts.
//!
//! The export uses the Chrome trace event format (the JSON flavor
//! Perfetto's UI and `chrome://tracing` both load): one process, one
//! thread track per PE, `B`/`E` duration events for spans and
//! collectives, `X` complete events for receive waits and injected
//! stalls, instant events for drops/delays, and `s`/`f` flow events
//! connecting each send to its matching receive. Flow ids are derived
//! from `(src, dst, tag, seq)` — both endpoints can compute the id
//! locally because mailboxes are FIFO per (src, tag).
//!
//! Timestamps are microseconds (the format's unit) with nanosecond
//! fraction, measured from the run's shared monotonic epoch.

use crate::json::{push_json_str, JsonValue};
use crate::trace::{FaultKind, RunTrace, TraceEventKind};

/// Microsecond timestamp with nanosecond fraction, as the JSON token.
fn push_ts_us(out: &mut String, ts_ns: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, "{}.{:03}", ts_ns / 1000, ts_ns % 1000);
}

/// One event line. `extra` lands verbatim after the common fields.
fn push_event(out: &mut String, ph: char, tid: usize, ts_ns: u64, name: &str, extra: &str) {
    out.push_str("    {\"ph\": \"");
    out.push(ph);
    out.push_str("\", \"pid\": 0, \"tid\": ");
    out.push_str(&tid.to_string());
    out.push_str(", \"ts\": ");
    push_ts_us(out, ts_ns);
    out.push_str(", \"name\": ");
    push_json_str(out, name);
    out.push_str(extra);
    out.push_str("},\n");
}

/// Flow id shared by a send and its matching receive.
fn flow_id(src: usize, dst: usize, tag: u64, seq: u64) -> String {
    format!("{src}-{dst}-{tag}-{seq}")
}

/// Serializes a trace to Chrome-trace/Perfetto JSON.
pub fn to_perfetto_json(trace: &RunTrace) -> String {
    let mut o = String::with_capacity(1 << 16);
    o.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    for pe in &trace.per_pe {
        let r = pe.rank;
        // Track metadata: name the thread after the PE.
        o.push_str("    {\"ph\": \"M\", \"pid\": 0, \"tid\": ");
        o.push_str(&r.to_string());
        o.push_str(", \"name\": \"thread_name\", \"args\": {\"name\": ");
        push_json_str(&mut o, &format!("PE {r}"));
        o.push_str("}},\n");
        for ev in &pe.events {
            match &ev.kind {
                TraceEventKind::SpanOpen { path } => {
                    push_event(&mut o, 'B', r, ev.ts_ns, path, ", \"cat\": \"phase\"");
                }
                TraceEventKind::SpanClose { path } => {
                    push_event(&mut o, 'E', r, ev.ts_ns, path, ", \"cat\": \"phase\"");
                }
                TraceEventKind::CollectiveEnter { name } => {
                    push_event(&mut o, 'B', r, ev.ts_ns, name, ", \"cat\": \"collective\"");
                }
                TraceEventKind::CollectiveExit { name } => {
                    push_event(&mut o, 'E', r, ev.ts_ns, name, ", \"cat\": \"collective\"");
                }
                TraceEventKind::Send {
                    dst,
                    tag,
                    seq,
                    bytes,
                } => {
                    let extra = format!(
                        ", \"cat\": \"comm\", \"id\": \"{}\", \
                         \"args\": {{\"dst\": {dst}, \"tag\": {tag}, \"bytes\": {bytes}}}",
                        flow_id(r, *dst, *tag, *seq)
                    );
                    push_event(&mut o, 's', r, ev.ts_ns, "msg", &extra);
                }
                TraceEventKind::Recv {
                    src,
                    tag,
                    seq,
                    bytes,
                } => {
                    let extra = format!(
                        ", \"cat\": \"comm\", \"id\": \"{}\", \"bp\": \"e\", \
                         \"args\": {{\"src\": {src}, \"tag\": {tag}, \"bytes\": {bytes}}}",
                        flow_id(*src, r, *tag, *seq)
                    );
                    push_event(&mut o, 'f', r, ev.ts_ns, "msg", &extra);
                }
                TraceEventKind::RecvWait { src, tag, wait_ns } => {
                    // The event is stamped at the wait's end; draw the
                    // slice backwards so it covers the blocked interval.
                    let start = ev.ts_ns.saturating_sub(*wait_ns);
                    let mut extra = String::from(", \"cat\": \"wait\", \"dur\": ");
                    push_ts_us(&mut extra, *wait_ns);
                    match src {
                        Some(s) => {
                            extra.push_str(&format!(", \"args\": {{\"src\": {s}, \"tag\": {tag}}}"))
                        }
                        None => extra.push_str(&format!(", \"args\": {{\"tag\": {tag}}}")),
                    }
                    let name = match src {
                        Some(s) => format!("wait PE {s}"),
                        None => "wait any".to_string(),
                    };
                    push_event(&mut o, 'X', r, start, &name, &extra);
                }
                TraceEventKind::Alert { rule, value_milli } => {
                    let name = format!("alert:{rule}");
                    let extra = format!(
                        ", \"cat\": \"alert\", \"s\": \"g\", \
                         \"args\": {{\"value_milli\": {value_milli}}}"
                    );
                    push_event(&mut o, 'i', r, ev.ts_ns, &name, &extra);
                }
                TraceEventKind::Fault {
                    kind,
                    peer,
                    tag,
                    dur_ns,
                } => {
                    let name = format!("fault:{}", kind.label());
                    let args = format!(", \"args\": {{\"peer\": {peer}, \"tag\": {tag}}}");
                    if *kind == FaultKind::Stall {
                        let mut extra = String::from(", \"cat\": \"fault\", \"dur\": ");
                        push_ts_us(&mut extra, *dur_ns);
                        extra.push_str(&args);
                        push_event(&mut o, 'X', r, ev.ts_ns, &name, &extra);
                    } else {
                        let extra = format!(", \"cat\": \"fault\", \"s\": \"t\"{args}");
                        push_event(&mut o, 'i', r, ev.ts_ns, &name, &extra);
                    }
                }
            }
        }
    }
    // Strip the trailing ",\n" left by the last event (the metadata
    // event guarantees at least one line per PE; a 0-PE trace has none).
    if o.ends_with(",\n") {
        o.truncate(o.len() - 2);
        o.push('\n');
    }
    o.push_str("  ]\n}\n");
    o
}

/// Structurally validates an exported Perfetto JSON document:
///
/// 1. it parses, with a `traceEvents` array of event objects carrying
///    `ph`/`pid`/`tid` (and `ts` for non-metadata events);
/// 2. `B`/`E` events are balanced per (pid, tid) track with matching
///    names (no cross-track or misnested closes);
/// 3. `X` events carry a `dur`;
/// 4. every flow-finish (`f`) id resolves to some flow-start (`s`) id
///    (sends without receives are legal — drops — but not vice versa).
///
/// Returns a one-line summary on success.
pub fn validate_perfetto(text: &str) -> Result<String, String> {
    let v = JsonValue::parse(text).map_err(|e| format!("trace does not parse: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<String>> = Default::default();
    let mut flow_starts: std::collections::BTreeSet<String> = Default::default();
    let mut flow_finishes: Vec<String> = Vec::new();
    let mut tracks: std::collections::BTreeSet<(u64, u64)> = Default::default();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        tracks.insert((pid, tid));
        if ph != "M" && ev.get("ts").and_then(JsonValue::as_f64).is_none() {
            return Err(format!("event {i}: missing ts"));
        }
        let name = ev.get("name").and_then(JsonValue::as_str).unwrap_or("");
        match ph {
            "B" => stacks.entry((pid, tid)).or_default().push(name.to_string()),
            "E" => {
                let stack = stacks.entry((pid, tid)).or_default();
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!(
                            "event {i}: E \"{name}\" does not match open B \"{open}\" \
                             on track {pid}/{tid}"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "event {i}: E \"{name}\" with no open B on track {pid}/{tid}"
                        ))
                    }
                }
            }
            "X" => {
                if ev.get("dur").and_then(JsonValue::as_f64).is_none() {
                    return Err(format!("event {i}: X without dur"));
                }
            }
            "s" | "f" => {
                let id = ev
                    .get("id")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("event {i}: flow event without id"))?;
                if ph == "s" {
                    flow_starts.insert(id.to_string());
                } else {
                    flow_finishes.push(id.to_string());
                }
            }
            "M" | "i" => {}
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "track {pid}/{tid}: B \"{open}\" never closed ({} open)",
                stack.len()
            ));
        }
    }
    let mut unresolved = 0usize;
    for id in &flow_finishes {
        if !flow_starts.contains(id) {
            unresolved += 1;
        }
    }
    if unresolved > 0 {
        return Err(format!(
            "{unresolved} of {} flow finishes have no matching start",
            flow_finishes.len()
        ));
    }
    Ok(format!(
        "{} events, {} tracks, {} flows ({} resolved)",
        events.len(),
        tracks.len(),
        flow_starts.len(),
        flow_finishes.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{PeTrace, TraceEvent};

    fn sample_trace() -> RunTrace {
        let e = |ts_ns, kind| TraceEvent { ts_ns, kind };
        RunTrace {
            p: 2,
            per_pe: vec![
                PeTrace {
                    rank: 0,
                    events: vec![
                        e(
                            0,
                            TraceEventKind::SpanOpen {
                                path: "vcycle".into(),
                            },
                        ),
                        e(
                            10,
                            TraceEventKind::Send {
                                dst: 1,
                                tag: 7,
                                seq: 0,
                                bytes: 8,
                            },
                        ),
                        e(20, TraceEventKind::CollectiveEnter { name: "barrier" }),
                        e(30, TraceEventKind::CollectiveExit { name: "barrier" }),
                        e(
                            40,
                            TraceEventKind::Fault {
                                kind: FaultKind::Stall,
                                peer: 1,
                                tag: 7,
                                dur_ns: 1000,
                            },
                        ),
                        e(
                            50,
                            TraceEventKind::SpanClose {
                                path: "vcycle".into(),
                            },
                        ),
                    ],
                    dropped: 0,
                },
                PeTrace {
                    rank: 1,
                    events: vec![
                        e(
                            15,
                            TraceEventKind::RecvWait {
                                src: Some(0),
                                tag: 7,
                                wait_ns: 5,
                            },
                        ),
                        e(
                            16,
                            TraceEventKind::Recv {
                                src: 0,
                                tag: 7,
                                seq: 0,
                                bytes: 8,
                            },
                        ),
                    ],
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn export_passes_validator() {
        let json = to_perfetto_json(&sample_trace());
        let summary = validate_perfetto(&json).expect("must validate");
        assert!(summary.contains("tracks"), "{summary}");
        // The send/recv pair shares one resolved flow id.
        assert!(summary.contains("1 flows (1 resolved)"), "{summary}");
    }

    #[test]
    fn validator_rejects_unbalanced_spans() {
        let mut t = sample_trace();
        t.per_pe[0].events.pop(); // drop the SpanClose
        let err = validate_perfetto(&to_perfetto_json(&t)).expect_err("unbalanced");
        assert!(err.contains("never closed"), "{err}");
    }

    #[test]
    fn validator_rejects_orphan_flow_finish() {
        let mut t = sample_trace();
        t.per_pe[0].events.remove(1); // drop the Send; the Recv's f dangles
        let err = validate_perfetto(&to_perfetto_json(&t)).expect_err("orphan f");
        assert!(err.contains("no matching start"), "{err}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_perfetto("{}").is_err());
        assert!(validate_perfetto("not json").is_err());
    }

    #[test]
    fn empty_trace_is_valid() {
        let t = RunTrace {
            p: 0,
            per_pe: vec![],
        };
        validate_perfetto(&to_perfetto_json(&t)).expect("empty trace validates");
    }

    #[test]
    fn timestamps_are_microseconds_with_ns_fraction() {
        let mut out = String::new();
        push_ts_us(&mut out, 1_234_567);
        assert_eq!(out, "1234.567");
    }
}
