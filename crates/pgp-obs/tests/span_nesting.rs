//! Property tests for the span stack discipline.
//!
//! The recorder must stay well-formed under *arbitrary* interleaved
//! enter/exit sequences — not just the RAII-guarded ones real
//! instrumentation produces. Property: exits that do not match the
//! innermost open span are dropped (counted as orphans, never applied),
//! the recorded phase counts equal a reference stack model's, and with
//! every instance closed the time of a parent's direct children never
//! exceeds the parent's own time (children are disjoint subintervals).

use std::collections::BTreeMap;

use pgp_obs::Obs;
use proptest::prelude::*;

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

#[derive(Clone, Copy, Debug)]
enum Op {
    Enter(usize),
    Exit(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..2, 0..NAMES.len()).prop_map(
        |(kind, i)| {
            if kind == 0 {
                Op::Enter(i)
            } else {
                Op::Exit(i)
            }
        },
    )
}

/// Reference model: the same stack discipline, tracking only structure.
#[derive(Default)]
struct Model {
    stack: Vec<(String, usize)>,
    counts: BTreeMap<String, u64>,
    orphans: u64,
}

impl Model {
    fn enter(&mut self, name_idx: usize) {
        let path = match self.stack.last() {
            Some((p, _)) => format!("{p}/{}", NAMES[name_idx]),
            None => NAMES[name_idx].to_string(),
        };
        self.stack.push((path, name_idx));
    }

    fn exit(&mut self, name_idx: usize) {
        match self.stack.last() {
            Some((_, top)) if *top == name_idx => {
                let (path, _) = self.stack.pop().expect("non-empty: just matched");
                *self.counts.entry(path).or_insert(0) += 1;
            }
            _ => self.orphans += 1,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_sequences_stay_well_formed(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let obs = Obs::new(1);
        let rec = obs.recorder(0);
        let mut model = Model::default();

        for op in &ops {
            match *op {
                Op::Enter(i) => { rec.enter(NAMES[i]); model.enter(i); }
                Op::Exit(i) => { rec.exit(NAMES[i]); model.exit(i); }
            }
        }
        // Close every span still open (innermost first) so each instance
        // is counted and the child-time inequality is meaningful.
        while let Some((_, top)) = model.stack.last().cloned() {
            rec.exit(NAMES[top]);
            model.exit(top);
        }

        let report = obs.report();
        let pe = &report.per_pe[0];

        // 1. No orphan exit was applied; all were counted.
        prop_assert_eq!(pe.orphan_exits, model.orphans);

        // 2. Phase counts equal the reference model's, path for path.
        let got: BTreeMap<String, u64> = pe
            .phases
            .iter()
            .map(|p| (p.path.clone(), p.count))
            .collect();
        prop_assert_eq!(&got, &model.counts);

        // 3. Child time ≤ parent time: every closed child instance is a
        //    subinterval of a closed parent instance, and siblings are
        //    disjoint, so per parent path the direct children's total
        //    cannot exceed the parent's total.
        let totals: BTreeMap<&str, f64> = pe
            .phases
            .iter()
            .map(|p| (p.path.as_str(), p.total_s))
            .collect();
        for (path, &parent_total) in &totals {
            let prefix = format!("{path}/");
            let child_sum: f64 = totals
                .iter()
                .filter(|(p, _)| {
                    p.starts_with(prefix.as_str()) && !p[prefix.len()..].contains('/')
                })
                .map(|(_, &t)| t)
                .sum();
            // 1 ns slack: totals are integral nanoseconds converted to
            // f64 seconds, so rounding can differ in the last ulp.
            prop_assert!(
                child_sum <= parent_total + 1e-9,
                "children of {} total {} > parent {}",
                path,
                child_sum,
                parent_total
            );
        }
    }
}
