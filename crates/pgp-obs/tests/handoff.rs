//! Concurrency tests for the counter-flush handoff ([`FlushSlot`]).
//!
//! Two layers, mirroring `pgp-dmp/tests/concurrency.rs`:
//!
//! 1. **Stress test** (always on): one writer publishes a stream of
//!    self-consistent pairs while readers snapshot concurrently; no
//!    snapshot may ever mix two publishes. This is a target of
//!    `scripts/sanitize.sh` (ThreadSanitizer).
//! 2. **Loom model** (`--cfg loom`): exhaustive check of the same
//!    seqlock protocol with loom atomics. The model re-implements the
//!    slot with loom types (standard loom practice — its sync types must
//!    replace the real ones at compile time). The `loom` crate is not
//!    vendored in the offline build image; the module compiles once loom
//!    is added as a dev-dependency and tests run with
//!    `RUSTFLAGS="--cfg loom" cargo test -p pgp-obs --test handoff`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pgp_obs::FlushSlot;

/// Writer publishes `(k, 3k)` pairs; concurrent readers must only ever
/// observe pairs satisfying `bytes == 3 * msgs`, and `msgs` must be
/// non-decreasing per reader (the writer publishes monotonically).
#[test]
fn snapshots_never_mix_two_publishes() {
    const PUBLISHES: u64 = 10_000;
    let slot = Arc::new(FlushSlot::new());
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let slot = Arc::clone(&slot);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last = 0u64;
                let mut seen = 0u64;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let (msgs, bytes) = slot.snapshot();
                    assert_eq!(bytes, 3 * msgs, "torn snapshot: ({msgs}, {bytes})");
                    assert!(msgs >= last, "snapshot went backwards");
                    last = msgs;
                    seen += 1;
                    if finished {
                        break;
                    }
                }
                seen
            })
        })
        .collect();

    for k in 1..=PUBLISHES {
        slot.publish(k, 3 * k);
    }
    done.store(true, Ordering::Release);
    for r in readers {
        let seen = r.join().expect("reader panicked");
        assert!(seen > 0, "reader never snapshotted");
    }
    assert_eq!(slot.snapshot(), (PUBLISHES, 3 * PUBLISHES));
}

/// `try_snapshot` must refuse rather than return an inconsistent pair —
/// checked by hammering it against a publishing writer.
#[test]
fn try_snapshot_refuses_rather_than_tears() {
    const PUBLISHES: u64 = 10_000;
    let slot = Arc::new(FlushSlot::new());
    let writer = {
        let slot = Arc::clone(&slot);
        std::thread::spawn(move || {
            for k in 1..=PUBLISHES {
                slot.publish(k, 3 * k);
            }
        })
    };
    let mut consistent = 0u64;
    loop {
        let finished = writer.is_finished();
        if let Some((msgs, bytes)) = slot.try_snapshot() {
            assert_eq!(bytes, 3 * msgs, "torn try_snapshot");
            consistent += 1;
        }
        if finished {
            break;
        }
    }
    writer.join().expect("writer panicked");
    assert!(consistent > 0, "try_snapshot never succeeded");
}

/// Exhaustive loom model of the single-writer seqlock (see module docs
/// for how to enable). The writer brackets its two data stores with odd/
/// even counter increments; the reader accepts a snapshot only when it
/// reads the same even counter before and after. The model asserts every
/// accepted snapshot is one of the published pairs — no interleaving may
/// yield a mix.
#[cfg(loom)]
mod loom_model {
    use loom::sync::atomic::{AtomicU64, Ordering};
    use loom::sync::Arc;
    use loom::thread;

    struct ModelSlot {
        seq: AtomicU64,
        msgs: AtomicU64,
        bytes: AtomicU64,
    }

    impl ModelSlot {
        fn new() -> Self {
            Self {
                seq: AtomicU64::new(0),
                msgs: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
            }
        }

        // Mirrors FlushSlot::publish.
        fn publish(&self, msgs: u64, bytes: u64) {
            self.seq.fetch_add(1, Ordering::SeqCst);
            self.msgs.store(msgs, Ordering::SeqCst);
            self.bytes.store(bytes, Ordering::SeqCst);
            self.seq.fetch_add(1, Ordering::SeqCst);
        }

        // Mirrors FlushSlot::try_snapshot.
        fn try_snapshot(&self) -> Option<(u64, u64)> {
            let s1 = self.seq.load(Ordering::SeqCst);
            if s1 & 1 == 1 {
                return None;
            }
            let msgs = self.msgs.load(Ordering::SeqCst);
            let bytes = self.bytes.load(Ordering::SeqCst);
            if self.seq.load(Ordering::SeqCst) != s1 {
                return None;
            }
            Some((msgs, bytes))
        }
    }

    #[test]
    fn accepted_snapshots_are_published_pairs() {
        loom::model(|| {
            let slot = Arc::new(ModelSlot::new());
            let writer = {
                let slot = Arc::clone(&slot);
                thread::spawn(move || {
                    slot.publish(1, 3);
                    slot.publish(2, 6);
                })
            };
            // Reader: every accepted snapshot must be one of the pairs the
            // writer publishes — (0,0), (1,3), or (2,6) — never a mix.
            for _ in 0..2 {
                if let Some(pair) = slot.try_snapshot() {
                    assert!(
                        matches!(pair, (0, 0) | (1, 3) | (2, 6)),
                        "torn snapshot {pair:?}"
                    );
                }
            }
            writer.join().unwrap();
        });
    }
}
