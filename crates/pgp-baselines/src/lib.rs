//! Baseline partitioners the paper compares against.
//!
//! * [`parmetis_like`] — matching-based parallel multilevel partitioning
//!   on the same `pgp-dmp` substrate as ParHIP, including ParMetis's
//!   coarsening-stall and out-of-memory failure modes on complex networks.
//! * [`matching`] — the parallel heavy-edge matching it coarsens with.
//! * [`rb`] — a PT-Scotch-like parallel recursive-bisection baseline.
//! * [`hash`] — hash partitioning (the cloud-toolkit default).

pub mod hash;
pub mod matching;
pub mod parmetis_like;
pub mod rb;

pub use hash::hash_partition;
pub use matching::parallel_hem;
pub use parmetis_like::{
    parmetis_like, parmetis_like_distributed, BaselineError, ParmetisLikeConfig, ParmetisLikeStats,
};
pub use rb::{recursive_bisection, RbConfig};
