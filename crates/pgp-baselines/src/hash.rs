//! Hash partitioning — the naive default of cloud graph-processing
//! toolkits the paper mentions ("while hashing often leads to acceptable
//! balance, the edge cut obtained for complex networks is very high").

use pgp_graph::{BlockId, CsrGraph, Partition};

/// Assigns node `v` to block `hash(v) mod k`.
pub fn hash_partition(graph: &CsrGraph, k: usize, seed: u64) -> Partition {
    let assignment: Vec<BlockId> = graph
        .nodes()
        .map(|v| (pgp_dmp::mix_seed(seed, v as u64) % k as u64) as BlockId)
        .collect();
    Partition::from_assignment(graph, k, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_is_acceptable_cut_is_awful() {
        let (g, truth) = pgp_gen::sbm::sbm(4000, pgp_gen::sbm::SbmParams::default(), 1);
        let p = hash_partition(&g, 8, 42);
        // Hashing balances within a few percent at this size.
        assert!(p.imbalance(&g) < 0.15, "imbalance {}", p.imbalance(&g));
        // The cut is near the random expectation (k-1)/k of all edges.
        let cut_frac = p.edge_cut(&g) as f64 / g.total_edge_weight() as f64;
        assert!(cut_frac > 0.7, "cut fraction {cut_frac}");
        let _ = truth;
    }

    #[test]
    fn deterministic() {
        let g = pgp_gen::mesh::grid2d(10, 10);
        assert_eq!(
            hash_partition(&g, 4, 7).assignment(),
            hash_partition(&g, 4, 7).assignment()
        );
    }

    #[test]
    fn all_blocks_used() {
        let g = pgp_gen::mesh::grid2d(20, 20);
        let p = hash_partition(&g, 16, 3);
        assert_eq!(p.nonempty_blocks(), 16);
    }
}
