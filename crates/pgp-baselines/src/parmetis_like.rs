//! The ParMetis-like baseline: a matching-based parallel multilevel
//! partitioner on the *same* message-passing substrate as ParHIP.
//!
//! Coarsening is parallel heavy-edge matching (at best a 2× shrink per
//! level; stalls on hub-dominated complex networks), contraction reuses
//! ParHIP's parallel contraction (a matching is a clustering with cluster
//! size ≤ 2), initial partitioning replicates the coarsest graph on every
//! PE and runs recursive bisection, and refinement is the exact-weight
//! parallel label propagation (ParMetis's greedy refinement is of the same
//! family).
//!
//! The baseline also reproduces ParMetis's *failure mode* from the paper
//! (Tables II/III, `*` entries): when coarsening stalls, the still-huge
//! coarsest graph must be replicated per PE, and a configurable memory
//! model reports the run as failed.

use parhip::contract::{parallel_contract, parallel_project_blocks};
use pgp_dmp::collectives::allgatherv;
use pgp_dmp::{Comm, DistGraph};
use pgp_graph::{lmax, CsrGraph, Node, Partition};
use pgp_lp::par::parallel_sclp_refine;
use pgp_seq::{initial_partition, InitialConfig};

use crate::matching::parallel_hem;

/// Why a baseline run failed.
#[derive(Clone, Debug, PartialEq)]
pub enum BaselineError {
    /// The replicated coarsest graph exceeds the per-PE memory budget —
    /// the paper's `*` outcome ("the amount of memory needed by the
    /// partitioner exceeded the amount of memory available").
    OutOfMemory {
        /// Bytes the replication would need per PE.
        required: u64,
        /// The configured budget.
        budget: u64,
        /// Nodes left in the coarsest graph.
        coarsest_n: u64,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::OutOfMemory {
                required,
                budget,
                coarsest_n,
            } => write!(
                f,
                "coarsest graph ({coarsest_n} nodes) needs {required} bytes/PE, budget {budget}"
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Configuration of the ParMetis-like baseline.
#[derive(Clone, Debug)]
pub struct ParmetisLikeConfig {
    /// Number of blocks.
    pub k: usize,
    /// Imbalance (ParMetis is laxer here than ParHIP; the paper observed
    /// up to 6 % drift — we keep the refinement budgeted, so this is the
    /// cap passed to refinement).
    pub eps: f64,
    /// Matching rounds per level.
    pub matching_rounds: usize,
    /// Coarsening stops at this many global nodes.
    pub stop_size: u64,
    /// Abort coarsening when a level shrinks by less than this factor —
    /// matching on complex networks triggers this quickly.
    pub min_shrink: f64,
    /// Per-PE memory budget in bytes for the replicated coarsest graph
    /// (`None` disables the failure model).
    pub memory_budget: Option<u64>,
    /// LP refinement rounds per level.
    pub refine_iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ParmetisLikeConfig {
    /// Defaults mirroring the role ParMetis plays in the paper's tables.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            k,
            eps: 0.03,
            matching_rounds: 4,
            stop_size: (100 * k as u64).max(400),
            min_shrink: 1.25,
            memory_budget: None,
            refine_iterations: 4,
            seed,
        }
    }

    /// Enables the paper-style memory model: bytes per PE available for
    /// the replicated coarsest graph.
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }
}

/// Structural statistics of a baseline run.
#[derive(Clone, Debug, Default)]
pub struct ParmetisLikeStats {
    /// Hierarchy depth.
    pub levels: usize,
    /// Coarsest global node count.
    pub coarsest_n: u64,
    /// Coarsest global edge count.
    pub coarsest_m: u64,
    /// Whether coarsening stalled (shrink below threshold).
    pub stalled: bool,
}

/// Estimated bytes/PE for replicating a graph with `n` nodes and `m`
/// edges: CSR arrays (`xadj` 8B, per-arc target 4B + weight 8B, node
/// weights 8B).
pub fn replication_bytes(n: u64, m: u64) -> u64 {
    16 * n + 24 * m
}

/// Runs the ParMetis-like baseline on an already-distributed graph;
/// returns this PE's owned block assignment and stats.
pub fn parmetis_like_distributed(
    comm: &Comm,
    graph: &DistGraph,
    cfg: &ParmetisLikeConfig,
) -> Result<(Vec<Node>, ParmetisLikeStats), BaselineError> {
    let mut stats = ParmetisLikeStats::default();

    // ---- Matching-based coarsening ------------------------------------
    struct Level {
        graph: DistGraph,
        mapping: Vec<Node>,
    }
    let mut levels: Vec<Level> = Vec::new();
    let mut current = graph.clone();
    loop {
        if current.n_global() <= cfg.stop_size {
            break;
        }
        let labels = parallel_hem(
            comm,
            &current,
            cfg.matching_rounds,
            cfg.seed.wrapping_add(levels.len() as u64),
        );
        let c = parallel_contract(comm, &current, &labels);
        let shrink = current.n_global() as f64 / c.coarse.n_global().max(1) as f64;
        if shrink < cfg.min_shrink {
            stats.stalled = true;
            break;
        }
        levels.push(Level {
            graph: current,
            mapping: c.mapping,
        });
        current = c.coarse;
    }
    stats.levels = levels.len() + 1;
    stats.coarsest_n = current.n_global();
    stats.coarsest_m = current.m_global();

    // ---- Memory model: the coarsest graph is replicated per PE --------
    if let Some(budget) = cfg.memory_budget {
        let required = replication_bytes(stats.coarsest_n, stats.coarsest_m);
        if required > budget {
            return Err(BaselineError::OutOfMemory {
                required,
                budget,
                coarsest_n: stats.coarsest_n,
            });
        }
    }

    // ---- Initial partitioning on the replicated coarsest graph --------
    let coarsest_global: CsrGraph = current.gather_global(comm);
    // Independent attempts across PEs (different seeds), best cut wins —
    // that is also how the real systems exploit spare parallelism here.
    let local = initial_partition(
        &coarsest_global,
        cfg.k,
        &InitialConfig {
            eps: cfg.eps,
            attempts: 3,
            fm_passes: 3,
            seed: pgp_dmp::mix_seed(cfg.seed, comm.rank() as u64),
        },
    );
    let local_cut = local.edge_cut(&coarsest_global);
    let (_, winner) = pgp_dmp::collectives::allreduce_min_with_rank(comm, local_cut);
    let coarse_assignment = pgp_dmp::collectives::broadcast(
        comm,
        winner,
        (comm.rank() == winner).then(|| local.assignment().to_vec()),
    );

    // ---- Uncoarsening with parallel LP refinement ----------------------
    let lmax_v = lmax(graph.total_node_weight(), cfg.k, cfg.eps);
    let first = current.first_global();
    let mut level_blocks: Vec<Node> = (0..current.n_local())
        .map(|l| coarse_assignment[first as usize + l])
        .collect();
    for li in (0..levels.len()).rev() {
        let fine = &levels[li].graph;
        let coarse = if li + 1 < levels.len() {
            &levels[li + 1].graph
        } else {
            &current
        };
        let mut fine_blocks =
            parallel_project_blocks(comm, coarse, &levels[li].mapping, &level_blocks);
        parallel_sclp_refine(
            comm,
            fine,
            cfg.k,
            lmax_v,
            cfg.refine_iterations,
            cfg.seed.wrapping_add(li as u64 * 101),
            &mut fine_blocks,
        );
        level_blocks = fine_blocks[..fine.n_local()].to_vec();
    }
    if levels.is_empty() {
        // No coarsening happened: refine the replicated solution directly.
        let fine = &current;
        let mut fb = vec![0 as Node; fine.n_local() + fine.n_ghost()];
        for l in 0..fb.len() {
            fb[l] = coarse_assignment[fine.local_to_global(l as Node) as usize];
        }
        parallel_sclp_refine(
            comm,
            fine,
            cfg.k,
            lmax_v,
            cfg.refine_iterations,
            cfg.seed,
            &mut fb,
        );
        level_blocks = fb[..fine.n_local()].to_vec();
    }
    Ok((level_blocks, stats))
}

/// Convenience wrapper: shared input graph, `p` PEs, assembled partition.
pub fn parmetis_like(
    graph: &CsrGraph,
    p: usize,
    cfg: &ParmetisLikeConfig,
) -> Result<(Partition, ParmetisLikeStats), BaselineError> {
    let results = pgp_dmp::run(p, |comm| {
        let dg = DistGraph::from_global(comm, graph);
        match parmetis_like_distributed(comm, &dg, cfg) {
            Ok((local, stats)) => Ok((allgatherv(comm, local), stats)),
            Err(e) => {
                // All PEs fail together (the memory check is on replicated
                // state, identical everywhere).
                Err(e)
            }
        }
    });
    let (assignment, stats) = results.into_iter().next().expect("at least one PE")?;
    Ok((Partition::from_assignment(graph, cfg.k, assignment), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_mesh_well() {
        let g = pgp_gen::mesh::grid2d(24, 24);
        let (p, stats) = parmetis_like(&g, 4, &ParmetisLikeConfig::new(2, 1)).unwrap();
        p.validate(&g, 0.03).unwrap();
        assert!(stats.levels >= 2, "matching should coarsen a mesh");
        assert!(!stats.stalled);
        assert!(p.edge_cut(&g) <= 72, "cut {}", p.edge_cut(&g));
    }

    #[test]
    fn stalls_on_hub_networks() {
        let g = pgp_gen::ba::barabasi_albert(3000, 2, 5);
        let mut cfg = ParmetisLikeConfig::new(2, 3);
        cfg.stop_size = 100;
        let (_, stats) = parmetis_like(&g, 2, &cfg).unwrap();
        assert!(
            stats.stalled || stats.coarsest_n > 100,
            "matching unexpectedly coarsened a BA graph to {}",
            stats.coarsest_n
        );
    }

    #[test]
    fn memory_model_fails_on_complex_networks_only() {
        let web = pgp_gen::rmat::rmat_web(11, 16, 7);
        let mesh = pgp_gen::mesh::grid2d(45, 45);
        let budget = 60_000; // bytes/PE — scaled-down "cluster node"
        let mut cfg = ParmetisLikeConfig::new(2, 1).with_memory_budget(budget);
        cfg.stop_size = 500;
        let web_result = parmetis_like(&web, 2, &cfg);
        assert!(
            matches!(web_result, Err(BaselineError::OutOfMemory { .. })),
            "web graph should exceed the memory model: {web_result:?}"
        );
        let mesh_result = parmetis_like(&mesh, 2, &cfg);
        assert!(
            mesh_result.is_ok(),
            "mesh must fit: {:?}",
            mesh_result.err()
        );
    }

    #[test]
    fn deterministic_per_seed_and_p() {
        let g = pgp_gen::mesh::grid2d(16, 16);
        let cfg = ParmetisLikeConfig::new(4, 9);
        let (a, _) = parmetis_like(&g, 3, &cfg).unwrap();
        let (b, _) = parmetis_like(&g, 3, &cfg).unwrap();
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn single_pe_works() {
        let g = pgp_gen::mesh::grid2d(12, 12);
        let (p, _) = parmetis_like(&g, 1, &ParmetisLikeConfig::new(2, 2)).unwrap();
        p.validate(&g, 0.03).unwrap();
    }
}
