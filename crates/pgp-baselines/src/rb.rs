//! PT-Scotch-like baseline: parallel recursive bipartitioning.
//!
//! PT-Scotch parallelizes recursive bisection and spends unused processor
//! power on *several independent attempts in parallel*. This stand-in
//! keeps that structure at our scale: every PE runs a full multilevel
//! recursive-bisection partition with its own seed; the best cut wins.
//! The paper found PT-Scotch "consistently worse in quality and running
//! time than ParMetis", which this baseline reproduces in the benches.

use pgp_dmp::collectives::{allreduce_min_with_rank, broadcast};
use pgp_graph::{CsrGraph, Partition};
use pgp_seq::{kaffpa, KaffpaConfig, Scheme};

/// Configuration of the RB baseline.
#[derive(Clone, Debug)]
pub struct RbConfig {
    /// Number of blocks.
    pub k: usize,
    /// Imbalance.
    pub eps: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RbConfig {
    /// Defaults.
    pub fn new(k: usize, seed: u64) -> Self {
        Self { k, eps: 0.03, seed }
    }
}

/// Runs the baseline with `p` parallel attempts.
pub fn recursive_bisection(graph: &CsrGraph, p: usize, cfg: &RbConfig) -> Partition {
    let results = pgp_dmp::run(p, |comm| {
        let mut kc = KaffpaConfig::new(cfg.k, pgp_dmp::mix_seed(cfg.seed, comm.rank() as u64));
        kc.eps = cfg.eps;
        kc.scheme = Scheme::Matching;
        // Recursive bisection flavour: fewer global k-way passes, rely on
        // the bisection structure of the initial partitioner.
        kc.refine_iterations = 3;
        kc.fm_passes = 2;
        let local = kaffpa(graph, &kc);
        let cut = local.edge_cut(graph);
        let (_, winner) = allreduce_min_with_rank(comm, cut);
        broadcast(
            comm,
            winner,
            (comm.rank() == winner).then(|| local.assignment().to_vec()),
        )
    });
    Partition::from_assignment(graph, cfg.k, results.into_iter().next().expect("p >= 1"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_valid_partitions() {
        let g = pgp_gen::mesh::grid2d(16, 16);
        let p = recursive_bisection(&g, 3, &RbConfig::new(4, 1));
        p.validate(&g, 0.10).unwrap();
        assert_eq!(p.nonempty_blocks(), 4);
    }

    #[test]
    fn more_attempts_never_hurt() {
        let (g, _) = pgp_gen::sbm::sbm(500, pgp_gen::sbm::SbmParams::default(), 3);
        // With p attempts the best-of is at least as good as attempt #0
        // (which p = 1 reproduces: same seed mixing for rank 0).
        let one = recursive_bisection(&g, 1, &RbConfig::new(2, 9)).edge_cut(&g);
        let four = recursive_bisection(&g, 4, &RbConfig::new(2, 9)).edge_cut(&g);
        assert!(four <= one, "best-of-4 {four} worse than single {one}");
    }
}
