//! Parallel heavy-edge matching on the distributed graph — the coarsening
//! engine of the ParMetis-like baseline.
//!
//! Round-based mutual-proposal protocol: every unmatched node targets its
//! heaviest unmatched neighbour; a pair matches exactly when the choice is
//! mutual. Cross-PE proposals take one query/answer round; match states of
//! interface nodes are then synchronized. A handful of rounds matches the
//! overwhelming majority of matchable nodes.

use pgp_dmp::collectives::alltoallv;
use pgp_dmp::{Comm, DistGraph, LabelExchange};
use pgp_graph::{Node, Weight, INVALID_NODE};

/// Computes a heavy-edge matching of the distributed graph and returns
/// cluster labels (owned + ghost; matched pairs share the smaller global
/// ID, everyone else keeps their own).
pub fn parallel_hem(comm: &Comm, graph: &DistGraph, rounds: usize, seed: u64) -> Vec<Node> {
    let n_local = graph.n_local();
    let n_all = n_local + graph.n_ghost();
    // Matched state for owned + ghost nodes; value = partner's global ID.
    let mut partner = vec![INVALID_NODE; n_all];

    for round in 0..rounds {
        // Symmetric per-round tie-break key: both endpoints of an edge
        // compute the same value, so on uniform weights the targets follow
        // a random edge priority and a constant fraction of proposals is
        // mutual per round (without this, "pick the smaller ID" chains and
        // almost nothing matches).
        let round_seed = pgp_dmp::mix_seed(seed, round as u64);
        let edge_key = |a: Node, b: Node| -> u64 {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            pgp_dmp::mix_seed(round_seed, ((lo as u64) << 32) | hi as u64)
        };
        // Targets for unmatched owned nodes: heaviest unmatched neighbour,
        // ties broken by the symmetric key (deterministic on both sides).
        let mut target = vec![INVALID_NODE; n_local];
        for v in 0..n_local as Node {
            if partner[v as usize] != INVALID_NODE {
                continue;
            }
            let gv = graph.local_to_global(v);
            let mut best = INVALID_NODE;
            let mut best_w: Weight = 0;
            let mut best_key = 0u64;
            for (u, w) in graph.neighbors(v) {
                if partner[u as usize] != INVALID_NODE {
                    continue;
                }
                let gu = graph.local_to_global(u);
                let key = edge_key(gv, gu);
                if best == INVALID_NODE || w > best_w || (w == best_w && key > best_key) {
                    best = gu;
                    best_w = w;
                    best_key = key;
                }
            }
            target[v as usize] = best;
        }

        // Local-local mutual matches.
        let first = graph.first_global();
        let last = first + n_local as u64;
        for v in 0..n_local as Node {
            if partner[v as usize] != INVALID_NODE {
                continue;
            }
            let t = target[v as usize];
            if t == INVALID_NODE {
                continue;
            }
            if (t as u64) >= first && (t as u64) < last {
                let tl = (t as u64 - first) as Node;
                let gv = graph.local_to_global(v);
                if partner[tl as usize] == INVALID_NODE && target[tl as usize] == gv && gv < t {
                    partner[v as usize] = t;
                    partner[tl as usize] = gv;
                }
            }
        }

        // Cross-PE proposals: (proposer_global, target_global) to the
        // target's owner.
        let mut proposals: Vec<Vec<(Node, Node)>> = vec![Vec::new(); comm.size()];
        for v in 0..n_local as Node {
            if partner[v as usize] != INVALID_NODE {
                continue;
            }
            let t = target[v as usize];
            if t == INVALID_NODE || ((t as u64) >= first && (t as u64) < last) {
                continue;
            }
            let owner = graph.dist().owner(t);
            proposals[owner].push((graph.local_to_global(v), t));
        }
        let incoming = alltoallv(comm, proposals);
        // Accept a proposal x→u exactly when u is unmatched and t(u) == x.
        let mut accepts: Vec<Vec<(Node, Node)>> = vec![Vec::new(); comm.size()];
        for (src, props) in incoming.iter().enumerate() {
            for &(x, u_global) in props {
                let ul = (u_global as u64 - first) as usize;
                if partner[ul] == INVALID_NODE && target[ul] == x {
                    partner[ul] = x;
                    accepts[src].push((x, u_global));
                }
            }
        }
        let accepted = alltoallv(comm, accepts);
        for (x, u_global) in accepted.into_iter().flatten() {
            let xl = (x as u64 - first) as usize;
            // When both endpoints proposed to each other (mutual targets on
            // different PEs), each side already accepted the other's
            // proposal — the accept confirms the same partner.
            debug_assert!(partner[xl] == INVALID_NODE || partner[xl] == u_global);
            partner[xl] = u_global;
        }

        // Synchronize ghost match states (the next round's eligibility
        // checks need them; the partner value also yields ghost labels).
        sync_interface(comm, graph, &mut partner);
    }

    // Labels from partners; ghosts received their partner in the last sync.
    let mut labels = vec![0 as Node; n_all];
    for l in 0..n_all as Node {
        let g = graph.local_to_global(l);
        let p = partner[l as usize];
        labels[l as usize] = if p == INVALID_NODE { g } else { g.min(p) };
    }
    labels
}

/// Sends the match state of every interface node to the adjacent PEs and
/// applies the incoming updates to ghost entries.
fn sync_interface(comm: &Comm, graph: &DistGraph, partner: &mut [Node]) {
    let mut ex = LabelExchange::new(comm, graph);
    for v in 0..graph.n_local() as Node {
        // Record unconditionally: non-interface records are no-ops, and
        // sending INVALID_NODE keeps previously-matched state in sync.
        ex.record(graph, v, partner[v as usize]);
    }
    ex.flush_sync(comm, graph, partner);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgp_dmp::run;

    /// Reassemble the global matching and verify consistency.
    fn check_matching(g: &pgp_graph::CsrGraph, p: usize, rounds: usize) -> Vec<Node> {
        let results = run(p, |comm| {
            let dg = DistGraph::from_global(comm, g);
            let labels = parallel_hem(comm, &dg, rounds, 7);
            (0..dg.n_local())
                .map(|l| (dg.local_to_global(l as Node), labels[l]))
                .collect::<Vec<_>>()
        });
        let mut global = vec![0 as Node; g.n()];
        for pairs in results {
            for (v, l) in pairs {
                global[v as usize] = l;
            }
        }
        // Every label class has size 1 or 2, and pairs are adjacent.
        let mut count = std::collections::HashMap::new();
        for (v, &l) in global.iter().enumerate() {
            count.entry(l).or_insert_with(Vec::new).push(v as Node);
        }
        for (l, members) in &count {
            assert!(
                members.len() <= 2,
                "cluster {l} has {} members",
                members.len()
            );
            if members.len() == 2 {
                assert!(
                    g.neighbors(members[0]).any(|u| u == members[1]),
                    "matched pair {members:?} not adjacent"
                );
            }
        }
        global
    }

    #[test]
    fn matching_is_valid_across_pe_counts() {
        let g = pgp_gen::mesh::grid2d(12, 12);
        for p in [1, 2, 4] {
            check_matching(&g, p, 4);
        }
    }

    #[test]
    fn matching_matches_most_of_a_grid() {
        let g = pgp_gen::mesh::grid2d(16, 16);
        let labels = check_matching(&g, 3, 5);
        let matched = {
            let mut cnt = std::collections::HashMap::new();
            for &l in &labels {
                *cnt.entry(l).or_insert(0usize) += 1;
            }
            labels.iter().filter(|&&l| cnt[&l] == 2).count()
        };
        assert!(
            matched * 10 >= labels.len() * 7,
            "only {matched}/{} matched",
            labels.len()
        );
    }

    #[test]
    fn matching_leaves_star_leaves_unmatched() {
        // A star: only one leaf can match the hub; the rest stay single.
        let edges: Vec<(Node, Node)> = (1..50).map(|i| (0, i)).collect();
        let g = pgp_graph::builder::from_edges(50, &edges);
        let labels = check_matching(&g, 2, 5);
        let singles = {
            let mut cnt = std::collections::HashMap::new();
            for &l in &labels {
                *cnt.entry(l).or_insert(0usize) += 1;
            }
            labels.iter().filter(|&&l| cnt[&l] == 1).count()
        };
        assert!(
            singles >= 48,
            "stars must stall matching, {singles} singles"
        );
    }

    #[test]
    fn prefers_heavy_edges() {
        // Path 0-1-2 with weights 1, 10: the 1-2 edge must be matched.
        let g = pgp_graph::GraphBuilder::new(3)
            .add_weighted_edge(0, 1, 1)
            .add_weighted_edge(1, 2, 10)
            .build();
        let labels = check_matching(&g, 1, 3);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[1]);
    }
}
