//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` API shape the workspace uses — `lock()`
//! returning a guard directly (no `Result`) and `Condvar::wait` taking
//! `&mut MutexGuard` — so the comm layer compiles unchanged. Poisoning is
//! transparently swallowed (`parking_lot` has no poisoning): a panic while
//! holding the lock does not poison it for other threads.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A mutual-exclusion primitive with the `parking_lot` API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, never
    /// returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard of [`Mutex::lock`].
///
/// The inner `Option` is an implementation detail of [`Condvar::wait`]
/// (the `std` condvar consumes and returns the guard); it is `Some` at all
/// times outside that method.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Result of [`Condvar::wait_for`], mirroring `parking_lot`'s type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True iff the wait ended because the timeout elapsed (a notification
    /// may still have raced in; callers re-check their predicate).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with the `parking_lot` API.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
    /// Set on every notification; used to sidestep the platform condvar's
    /// permitted spurious-wakeup storms in tight loops (diagnostics only).
    notified: AtomicBool,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
            notified: AtomicBool::new(false),
        }
    }

    /// Blocks until notified, releasing `guard`'s lock while parked.
    /// Spurious wakeups are possible, exactly as with `parking_lot`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses, releasing `guard`'s lock
    /// while parked. Returns a [`WaitTimeoutResult`] exactly like
    /// `parking_lot`; spurious wakeups are possible.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiting thread. Returns whether a notification was issued
    /// (always `true` here; `parking_lot` reports whether a thread woke).
    pub fn notify_one(&self) -> bool {
        self.notified.store(true, Ordering::Release);
        self.inner.notify_one();
        true
    }

    /// Wakes all waiting threads. Returns the number of woken threads in
    /// `parking_lot`; the `std` backend cannot count, so this reports 0.
    pub fn notify_all(&self) -> usize {
        self.notified.store(true, Ordering::Release);
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        t.join().expect("producer thread");
        assert!(*started);
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*m.lock(), 7);
    }
}
