//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use — benchmark groups,
//! `bench_function`, `BenchmarkId`, `Throughput`, the `criterion_group!` /
//! `criterion_main!` macros — with a simple median-of-samples wall-clock
//! harness. No statistical analysis, plots, or baselines; output is one
//! line per benchmark on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark driver.
pub struct Criterion {
    /// Soft time budget per benchmark (warmup + measurement).
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Throughput annotation; reported as elements or bytes per second.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function_name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Things usable as a benchmark name in `bench_function`.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let budget = self.criterion.measurement_time;
        let mut samples = Vec::with_capacity(self.sample_size);
        let started = Instant::now();
        for i in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            assert!(b.iters > 0, "benchmark closure never called Bencher::iter");
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            // Respect the soft budget, but always take at least two samples.
            if i >= 1 && started.elapsed() > budget {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let mut line = format!("{full:<48} {:>12}/iter", format_time(median));
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if median > 0.0 {
                line.push_str(&format!(
                    "  {:>14}",
                    format!("{:.3e} {unit}/s", count as f64 / median)
                ));
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`, keeping its output alive to
    /// prevent the optimizer from deleting the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup call.
        std::hint::black_box(routine());
        let reps = 3u64;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(routine());
        }
        self.elapsed += t0.elapsed();
        self.iters += reps;
    }
}

/// Renders a per-iteration time with a sensible unit.
fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran += 1;
        });
        group.finish();
        assert!(ran >= 2);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
