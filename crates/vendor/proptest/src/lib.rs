//! Offline stand-in for `proptest`.
//!
//! The build container has no network access, so this crate reimplements the
//! subset of proptest the workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, [`Just`],
//! [`collection::vec`], [`ProptestConfig`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   deterministic per-case seed instead of a minimized input. Re-running the
//!   test replays the identical sequence (generation is fully deterministic).
//! * `prop_assert!` panics immediately instead of returning `Err`.
//! * `.proptest-regressions` files are ignored.

use std::fmt;

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

pub mod test_runner {
    //! The deterministic per-case random source.

    /// SplitMix64-based RNG; one independent stream per test case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The stream for case number `case` of a test named `name`.
        /// Deterministic across runs so failures are replayable.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking, so a strategy is just a
/// deterministic function of the per-case RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` returns for it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (up to a retry bound).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategy of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// Strategy of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence)
    }
}

/// The constant strategy: always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                *self.start() + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Admissible length specs of [`vec`]: an exact `usize` or a
    /// half-open `usize` range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_excl - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Error type kept for API compatibility; the stand-in always panics
/// instead of returning it.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {
        assert!($($args)*)
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {
        assert_eq!($($args)*)
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => {
        assert_ne!($($args)*)
    };
}

/// Declares property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a
/// `#[test]`-style function running `config.cases` random cases. Failures
/// report the case index; generation is deterministic, so re-running the
/// test reproduces the failure.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config: $crate::ProptestConfig = $cfg;
                for __pt_case in 0..__pt_config.cases {
                    let __pt_result = ::std::panic::catch_unwind(|| {
                        let mut __pt_rng = $crate::test_runner::TestRng::for_case(
                            stringify!($name),
                            __pt_case,
                        );
                        $(
                            let $pat = $crate::Strategy::generate(&($strat), &mut __pt_rng);
                        )+
                        $body
                    });
                    if let Err(panic) = __pt_result {
                        eprintln!(
                            "proptest stand-in: '{}' failed on case {}/{} (deterministic; \
                             re-running the test reproduces it)",
                            stringify!($name),
                            __pt_case,
                            __pt_config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0u64..5, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_spec(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn exact_vec_len(v in crate::collection::vec(0u64..100, 9)) {
            prop_assert_eq!(v.len(), 9);
        }

        #[test]
        fn tuple_and_pattern_binding((a, b) in (0u32..4, 10u64..20)) {
            prop_assert!(a < 4);
            prop_assert!((10..20).contains(&b));
        }

        #[test]
        fn flat_map_dependent(v in (1usize..10).prop_flat_map(|n| crate::collection::vec(0u32..(n as u32), n))) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            let n = v.len() as u32;
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn map_and_just(s in Just(5u32).prop_map(|x| x * 2)) {
            prop_assert_eq!(s, 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let strat = crate::collection::vec(0u32..1000, 5..20);
        let a: Vec<u32> = strat.generate(&mut TestRng::for_case("det", 3));
        let b: Vec<u32> = strat.generate(&mut TestRng::for_case("det", 3));
        assert_eq!(a, b);
    }
}
