//! Offline stand-in for the `rustc-hash` crate.
//!
//! Implements the FxHash function (the multiply-rotate hash used throughout
//! the Rust compiler) with the crate's public surface the workspace uses:
//! [`FxHasher`], [`FxBuildHasher`], and the [`FxHashMap`] / [`FxHashSet`]
//! aliases. FxHash is not DoS-resistant; it trades that for a few cycles
//! per lookup, which is the right trade for graph-internal integer keys.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher: `hash = (rotl5(hash) ^ word) * SEED` per
/// machine word.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_ne_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_ne_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, u64::from(i) * 3);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&i), Some(&(u64::from(i) * 3)));
        }
        assert_eq!(m.get(&1000), None);
    }

    #[test]
    fn set_dedups() {
        let s: FxHashSet<u32> = [1, 2, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |v: u64| {
            let mut hh = FxHasher::default();
            hh.write_u64(v);
            hh.finish()
        };
        assert_eq!(h(42), h(42));
        // Consecutive keys must not collide in the low bits (table index).
        let mask = 0xFFF;
        let lows: std::collections::HashSet<u64> = (0..100).map(|v| h(v) & mask).collect();
        assert!(lows.len() > 90, "low-bit collisions: {}", 100 - lows.len());
    }

    #[test]
    fn byte_stream_matches_word_boundaries() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_ne_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(a.finish(), b.finish());
    }
}
