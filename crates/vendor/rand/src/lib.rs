//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the small API subset it actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`
//! * [`rngs::SmallRng`] (xoshiro256++, seeded via SplitMix64 — the same
//!   generator family the real `small_rng` feature uses on 64-bit targets)
//! * [`seq::SliceRandom`] with `shuffle` / `choose`
//!
//! Streams are *not* bit-compatible with upstream `rand`; the workspace only
//! relies on determinism-given-seed, which this implementation provides.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&w[..len]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used to expand `u64` seeds into full generator state.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable from the "standard" distribution of [`Rng::gen`]:
/// uniform over the full domain for integers, uniform in `[0, 1)` for
/// floats, fair coin for `bool`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// 53 uniform mantissa bits in `[0, 1)`.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`; panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                // Lemire-style widening multiply; bias < 2^-64 per draw.
                let hi_word = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                lo + hi_word as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                let hi_word = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                lo.wrapping_add(hi_word as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        // Clamp so rounding can never return `hi` itself.
        let v = lo + unit * (hi - lo);
        if v < hi {
            v
        } else {
            lo
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let v = lo + f32::sample_standard(rng) * (hi - lo);
        if v < hi {
            v
        } else {
            lo
        }
    }
}

/// Range argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the standard distribution (see [`Standard`]).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform value from `range` (half-open).
    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The generators offered by this stand-in.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// family the real `rand::rngs::SmallRng` uses on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    /// Alias: the workspace never relies on `StdRng`'s cryptographic
    /// properties, so the stand-in maps it to the same generator.
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Sequence-related helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

pub mod prelude {
    //! Convenience re-exports mirroring `rand::prelude`.
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
