//! Distributed-graph invariant validators (the "correctness wall").
//!
//! Distributed partitioning bugs are quiet: a ghost map pointing at the
//! wrong local slot or a lost weight contribution during contraction does
//! not crash — it silently degrades cut quality or balance, which then
//! reads as an algorithmic problem. These validators make the structural
//! invariants of the paper's data structures (§IV) checkable, so
//! corruption is caught at the phase boundary where it happens.
//!
//! All validators are **collective**: every PE of the group must call them
//! at the same point (they run allreduces/alltoallv internally). The
//! verdict is symmetric — either all PEs get `Ok(())` or all get the same
//! sorted error list — so a failing PE can never leave the others stuck in
//! a collective.
//!
//! Checked invariants (see DESIGN.md "Invariants & verification"):
//!
//! * **CSR well-formedness** — `xadj` monotone and bounded, targets in
//!   `0..n_local+n_ghost`, weight array lengths agree, positive arc
//!   weights.
//! * **Ghost tables** — `ghost_map` ⇄ `ghost_global` is a bijection onto
//!   `n_local..n_local+n_ghost`; `ghost_owner` agrees with the `BlockDist`
//!   arithmetic and never names the local PE; no ghost global ID lies in
//!   the owned range.
//! * **Cut-arc symmetry** — every arc `(u, v)` crossing to another PE has
//!   a mirror arc `(v, u)` of equal weight stored by `v`'s owner (the
//!   graph is undirected; an asymmetric cut arc means scatter or
//!   contraction dropped or duplicated a direction).
//! * **Global totals** — stored `total_node_weight`, `total_edge_weight`,
//!   `m_global` and `n_global` equal a fresh allreduce recount.
//! * **Partition sanity** — block IDs in `0..k`; ghost block labels agree
//!   with the owner's labels; claimed block weights equal an allreduce
//!   recount.
//! * **Contraction** — the fine→coarse map is surjective onto the coarse
//!   node set and node-weight preserving per coarse node.
//! * **Recovery consensus** — after a supervised recovery, every PE holds
//!   the same dead-rank verdict and resume point, and the verdict is
//!   sorted, in range, and leaves survivors.

use pgp_dmp::collectives::{allgatherv, allreduce_sum, allreduce_sum_vec, alltoallv};
use pgp_dmp::{Comm, DistGraph};
use pgp_graph::ids;
use pgp_graph::{Node, Weight};
use std::collections::HashMap;

/// Tags local findings with the discovering rank and merges them
/// group-wide so every PE returns the same verdict.
fn finish(comm: &Comm, local: Vec<String>) -> Result<(), Vec<String>> {
    let rank = comm.rank();
    let tagged: Vec<String> = local
        .into_iter()
        .map(|m| format!("[PE {rank}] {m}"))
        .collect();
    let mut all = allgatherv(comm, tagged);
    if all.is_empty() {
        Ok(())
    } else {
        all.sort();
        Err(all)
    }
}

/// Validates the full structural invariant set of a [`DistGraph`].
///
/// Collective over `comm`. On failure every PE receives the same sorted
/// list of violation messages (each prefixed with the discovering PE).
pub fn validate_dist_graph(comm: &Comm, g: &DistGraph) -> Result<(), Vec<String>> {
    let mut errs: Vec<String> = Vec::new();
    let rank = comm.rank();
    let dist = g.dist();
    let n_local = g.n_local();
    let n_ghost = g.n_ghost();
    let n_all = n_local + n_ghost;
    let xadj = g.xadj_raw();
    let adjncy = g.adjncy_raw();
    let adjwgt = g.adjwgt_raw();

    // ---- Ownership arithmetic --------------------------------------------
    if dist.count(rank) != n_local {
        errs.push(format!(
            "ownership range {}..{} disagrees with n_local = {n_local}",
            dist.first(rank),
            dist.last_excl(rank)
        ));
    }

    // ---- CSR well-formedness ---------------------------------------------
    if xadj.len() != n_local + 1 {
        errs.push(format!(
            "xadj has {} entries for {n_local} owned nodes",
            xadj.len()
        ));
    }
    if xadj.first() != Some(&0) {
        errs.push("xadj[0] != 0".to_string());
    }
    if xadj.windows(2).any(|w| w[0] > w[1]) {
        errs.push("xadj is not monotone".to_string());
    }
    if xadj.last().copied() != Some(ids::count_global(adjncy.len())) {
        errs.push(format!(
            "xadj end {:?} != adjncy length {}",
            xadj.last(),
            adjncy.len()
        ));
    }
    if adjwgt.len() != adjncy.len() {
        errs.push(format!(
            "adjwgt length {} != adjncy length {}",
            adjwgt.len(),
            adjncy.len()
        ));
    }
    for (i, &t) in adjncy.iter().enumerate() {
        if ids::node_index(t) >= n_all {
            errs.push(format!("adjncy[{i}] = {t} out of local range 0..{n_all}"));
            break; // one report is enough; corrupt CSRs repeat
        }
    }
    if let Some(i) = adjwgt.iter().position(|&w| w == 0) {
        errs.push(format!(
            "adjwgt[{i}] is zero (arcs must carry positive weight)"
        ));
    }

    // ---- Ghost tables -----------------------------------------------------
    let ghost_global = g.ghost_globals();
    let ghost_map = g.ghost_map();
    let ghost_owner = g.ghost_owners();
    if ghost_map.len() != n_ghost {
        errs.push(format!(
            "ghost_map has {} entries for {n_ghost} ghosts",
            ghost_map.len()
        ));
    }
    let first = dist.first(rank);
    let last = dist.last_excl(rank);
    for (i, &gid) in ghost_global.iter().enumerate() {
        let expected_local = ids::node_of_index(n_local + i);
        match ghost_map.get(&gid) {
            Some(&l) if l == expected_local => {}
            Some(&l) => errs.push(format!(
                "ghost_map[{gid}] = {l}, but ghost_global[{i}] places it at {expected_local}"
            )),
            None => errs.push(format!(
                "ghost global ID {gid} (slot {i}) missing from ghost_map"
            )),
        }
        if ids::node_global(gid) >= first && ids::node_global(gid) < last {
            errs.push(format!("ghost global ID {gid} lies in the owned range"));
        }
    }
    for (&gid, &l) in ghost_map {
        let li = ids::node_index(l);
        if li < n_local || li >= n_all {
            errs.push(format!(
                "ghost_map[{gid}] = {l} outside the ghost slot range"
            ));
        } else if ghost_global.get(li - n_local) != Some(&gid) {
            errs.push(format!(
                "ghost_map[{gid}] = {l} disagrees with ghost_global[{}]",
                li - n_local
            ));
        }
    }
    if ghost_owner.len() != n_ghost {
        errs.push(format!(
            "ghost_owner has {} entries for {n_ghost} ghosts",
            ghost_owner.len()
        ));
    }
    for (i, (&gid, &owner)) in ghost_global.iter().zip(ghost_owner).enumerate() {
        let expect = dist.owner(gid);
        if ids::pe_index(owner) != expect {
            errs.push(format!(
                "ghost_owner[{i}] = {owner}, but the BlockDist owns {gid} on PE {expect}"
            ));
        }
        if ids::pe_index(owner) == rank {
            errs.push(format!("ghost_owner[{i}] names the local PE"));
        }
    }

    // ---- Cut-arc symmetry (collective) -----------------------------------
    // Send every cross-PE arc (gu, gv, w) to v's owner; the owner confirms
    // it stores the mirror arc with equal weight. Parallel arcs are matched
    // as a multiset, so duplicated directions are caught too.
    let mut outgoing: Vec<Vec<(Node, Node, Weight)>> = vec![Vec::new(); comm.size()];
    let mut mirror: HashMap<(Node, Node), Vec<Weight>> = HashMap::new();
    for u in 0..ids::node_of_index(n_local) {
        let gu = g.local_to_global(u);
        for (v, w) in g.neighbors(u) {
            if g.is_ghost(v) {
                let gv = g.local_to_global(v);
                outgoing[ids::pe_index(g.ghost_owner_of(v))].push((gu, gv, w));
                mirror.entry((gu, gv)).or_default().push(w);
            }
        }
    }
    let incoming = alltoallv(comm, outgoing);
    for (src_pe, claims) in incoming.into_iter().enumerate() {
        for (gu, gv, w) in claims {
            // The claim: PE src_pe stores arc gu→gv with weight w, and gv
            // is ours — we must store gv→gu with the same weight.
            match mirror.get_mut(&(gv, gu)) {
                Some(ws) if !ws.is_empty() => {
                    if let Some(pos) = ws.iter().position(|&x| x == w) {
                        ws.swap_remove(pos);
                    } else {
                        errs.push(format!(
                            "cut arc {gu}→{gv} (from PE {src_pe}) has weight {w}, \
                             mirror {gv}→{gu} has {ws:?}"
                        ));
                    }
                }
                _ => errs.push(format!(
                    "cut arc {gu}→{gv} (weight {w}, from PE {src_pe}) has no mirror here"
                )),
            }
        }
    }
    if let Some(((gu, gv), ws)) = mirror.iter().find(|(_, ws)| !ws.is_empty()) {
        errs.push(format!(
            "cut arc {gu}→{gv} (weights {ws:?}) was never claimed by the far side"
        ));
    }

    // ---- Global totals (collective) --------------------------------------
    let local_nw: Weight = g.owned_weights().iter().sum();
    let recount_nw = allreduce_sum(comm, local_nw);
    if recount_nw != g.total_node_weight() {
        errs.push(format!(
            "total_node_weight {} != allreduce recount {recount_nw}",
            g.total_node_weight()
        ));
    }
    let local_aw: Weight = adjwgt.iter().sum();
    let recount_ew = allreduce_sum(comm, local_aw) / 2;
    if recount_ew != g.total_edge_weight() {
        errs.push(format!(
            "total_edge_weight {} != allreduce recount {recount_ew}",
            g.total_edge_weight()
        ));
    }
    let recount_m = allreduce_sum(comm, g.local_arc_count()) / 2;
    if recount_m != g.m_global() {
        errs.push(format!(
            "m_global {} != allreduce recount {recount_m}",
            g.m_global()
        ));
    }
    let recount_n = allreduce_sum(comm, ids::count_global(n_local));
    if recount_n != g.n_global() {
        errs.push(format!(
            "n_global {} != sum of n_local {recount_n}",
            g.n_global()
        ));
    }

    finish(comm, errs)
}

/// Validates a `k`-way block assignment over `graph`.
///
/// `blocks` covers owned followed by ghost nodes. `claimed_weights`, when
/// given, is the caller's view of the per-block weights (e.g. a refinement
/// loop's running tally) and is compared against an allreduce recount.
/// Collective over `comm`.
pub fn validate_dist_partition(
    comm: &Comm,
    graph: &DistGraph,
    blocks: &[Node],
    k: usize,
    claimed_weights: Option<&[Weight]>,
) -> Result<(), Vec<String>> {
    let mut errs: Vec<String> = Vec::new();
    let n_local = graph.n_local();
    let n_all = n_local + graph.n_ghost();
    if blocks.len() != n_all {
        errs.push(format!(
            "blocks covers {} nodes, expected owned + ghost = {n_all}",
            blocks.len()
        ));
        // Dimensions are wrong: skip content checks but keep the collective
        // schedule aligned with the PEs taking the full path.
        let _ = allreduce_sum_vec(comm, vec![0; k]);
        let _ = alltoallv::<(Node, Node)>(comm, vec![Vec::new(); comm.size()]);
        return finish(comm, errs);
    }

    for (l, &b) in blocks.iter().enumerate() {
        if ids::node_index(b) >= k {
            errs.push(format!("node local {l} assigned to block {b} >= k = {k}"));
            break;
        }
    }

    // Block weights: owned contribution only, then allreduce recount.
    let mut contrib: Vec<Weight> = vec![0; k];
    for l in 0..ids::node_of_index(n_local) {
        let b = ids::node_index(blocks[ids::node_index(l)]).min(k - 1);
        contrib[b] += graph.node_weight(l);
    }
    let recount = allreduce_sum_vec(comm, contrib);
    if let Some(claimed) = claimed_weights {
        if claimed != recount.as_slice() {
            errs.push(format!(
                "claimed block weights {claimed:?} != allreduce recount {recount:?}"
            ));
        }
    }

    // Ghost label agreement: report each ghost's cached label to its owner.
    let mut queries: Vec<Vec<(Node, Node)>> = vec![Vec::new(); comm.size()];
    for (i, (&gid, &owner)) in graph
        .ghost_globals()
        .iter()
        .zip(graph.ghost_owners())
        .enumerate()
    {
        let ghost_label = blocks[n_local + i];
        queries[ids::pe_index(owner)].push((gid, ghost_label));
    }
    let incoming = alltoallv(comm, queries);
    let first = graph.first_global();
    for (src_pe, claims) in incoming.into_iter().enumerate() {
        for (gid, their_label) in claims {
            let l = ids::global_index(ids::node_global(gid) - first);
            let ours = blocks[l];
            if ours != their_label {
                errs.push(format!(
                    "PE {src_pe} holds stale block {their_label} for node {gid} \
                     (owner says {ours})"
                ));
            }
        }
    }

    finish(comm, errs)
}

/// Validates one contraction step: `mapping` (fine owned + ghost → global
/// coarse ID) must be surjective onto the coarse node set and preserve
/// node weight per coarse node. Collective over `comm`.
pub fn validate_contraction(
    comm: &Comm,
    fine: &DistGraph,
    coarse: &DistGraph,
    mapping: &[Node],
) -> Result<(), Vec<String>> {
    let mut errs: Vec<String> = Vec::new();
    let n_all = fine.n_local() + fine.n_ghost();
    if mapping.len() != n_all {
        errs.push(format!(
            "mapping covers {} fine nodes, expected owned + ghost = {n_all}",
            mapping.len()
        ));
        let _ = alltoallv::<(Node, Weight)>(comm, vec![Vec::new(); comm.size()]);
        return finish(comm, errs);
    }

    let n_coarse = coarse.n_global();
    for (l, &c) in mapping.iter().enumerate() {
        if ids::node_global(c) >= n_coarse {
            errs.push(format!(
                "mapping[{l}] = {c} out of coarse range 0..{n_coarse}"
            ));
            break;
        }
    }

    // Weight preservation + surjectivity: owned fine nodes send
    // (coarse ID, weight) to the coarse owner, which compares the
    // aggregate against its stored coarse node weights. A coarse node
    // receiving no contribution at all breaks surjectivity.
    let coarse_dist = coarse.dist();
    let mut sends: Vec<Vec<(Node, Weight)>> = vec![Vec::new(); comm.size()];
    for l in 0..ids::node_of_index(fine.n_local()) {
        let c = mapping[ids::node_index(l)];
        sends[coarse_dist.owner(c)].push((c, fine.node_weight(l)));
    }
    let incoming = alltoallv(comm, sends);
    let first = coarse.first_global();
    let mut sums: Vec<Weight> = vec![0; coarse.n_local()];
    for contribs in incoming {
        for (c, w) in contribs {
            let idx = ids::global_index(ids::node_global(c) - first);
            if idx >= sums.len() {
                errs.push(format!("coarse ID {c} routed to the wrong owner"));
                continue;
            }
            sums[idx] += w;
        }
    }
    for (i, (&got, &want)) in sums.iter().zip(coarse.owned_weights()).enumerate() {
        let cid = first + ids::count_global(i);
        if got == 0 {
            errs.push(format!(
                "coarse node {cid} has no fine members (mapping not surjective)"
            ));
        } else if got != want {
            errs.push(format!(
                "coarse node {cid} weighs {want} but its members sum to {got}"
            ));
        }
    }

    // Totals survive contraction by construction; re-check them anyway.
    if fine.total_node_weight() != coarse.total_node_weight() {
        errs.push(format!(
            "contraction changed total node weight: {} -> {}",
            fine.total_node_weight(),
            coarse.total_node_weight()
        ));
    }

    finish(comm, errs)
}

/// Validates the recovery state a respawned group resumes under: the
/// failure-consensus verdict (`dead_ranks`, the ranks of the *previous*
/// universe declared dead) and the resume point (`resume_cycle`, the
/// checkpointed V-cycle being resumed from, `None` when restarting from
/// scratch).
///
/// Local checks: ranks in `0..p`, strictly ascending (sorted, no
/// duplicates), and fewer dead than group members. A verdict naming the
/// calling PE's own rank is fine — the respawned replacement occupies the
/// rank index of the PE it replaces. Collective check: every PE's
/// (verdict, resume point) view is allgathered and compared — recovery
/// must not proceed from divergent views, or the resumed run forks.
/// Collective over `comm`.
pub fn validate_recovery(
    comm: &Comm,
    dead_ranks: &[usize],
    resume_cycle: Option<usize>,
) -> Result<(), Vec<String>> {
    let mut errs: Vec<String> = Vec::new();
    let p = comm.size();

    for &d in dead_ranks {
        if d >= p {
            errs.push(format!("dead rank {d} out of group range 0..{p}"));
        }
    }
    if dead_ranks.windows(2).any(|w| w[0] >= w[1]) {
        errs.push(format!(
            "dead-rank verdict {dead_ranks:?} is not strictly ascending"
        ));
    }
    if dead_ranks.len() >= p {
        errs.push(format!(
            "verdict declares {} dead of {p} PEs — no survivors to resume",
            dead_ranks.len()
        ));
    }

    // Group agreement: one canonical line per PE, gathered in rank order.
    let view = format!("dead={dead_ranks:?} resume={resume_cycle:?}");
    let all_views = allgatherv(comm, vec![view.clone()]);
    for (r, theirs) in all_views.iter().enumerate() {
        if *theirs != view {
            errs.push(format!(
                "recovery view disagrees with PE {r}: ours [{view}], theirs [{theirs}]"
            ));
        }
    }

    finish(comm, errs)
}

/// Validates the internal consistency of a V-cycle checkpoint snapshot:
/// both assignments stay inside `0..k`, the coarsest assignment covers the
/// coarsest graph exactly, the fine→coarsest map covers the fine
/// assignment and targets real coarsest nodes, and the coarsest graph
/// itself is structurally well-formed.
///
/// Deliberately **not** checked: `assignment[v] ==
/// coarsest_assignment[fine_to_coarsest[v]]`. The snapshot's fine
/// assignment is taken *after* uncoarsening refinement, which legitimately
/// moves nodes away from the block their coarsest ancestor was given by
/// the evolutionary partitioner.
///
/// Unlike the other validators this one is **non-collective**: the
/// checkpoint is a replicated snapshot (every PE assembles identical
/// bytes), so each PE can validate its copy locally without a group
/// verdict exchange.
pub fn validate_checkpoint(
    k: usize,
    assignment: &[Node],
    coarsest: &pgp_graph::CsrGraph,
    coarsest_assignment: &[Node],
    fine_to_coarsest: &[Node],
) -> Result<(), Vec<String>> {
    let mut errs: Vec<String> = Vec::new();

    for (v, &b) in assignment.iter().enumerate() {
        if ids::node_index(b) >= k {
            errs.push(format!("assignment[{v}] = {b} out of block range 0..{k}"));
            break;
        }
    }

    let n_coarse = coarsest.n();
    if coarsest_assignment.len() != n_coarse {
        errs.push(format!(
            "coarsest assignment covers {} nodes, coarsest graph has {n_coarse}",
            coarsest_assignment.len()
        ));
    }
    for (c, &b) in coarsest_assignment.iter().enumerate() {
        if ids::node_index(b) >= k {
            errs.push(format!(
                "coarsest_assignment[{c}] = {b} out of block range 0..{k}"
            ));
            break;
        }
    }

    if fine_to_coarsest.len() != assignment.len() {
        errs.push(format!(
            "fine_to_coarsest covers {} nodes, assignment covers {}",
            fine_to_coarsest.len(),
            assignment.len()
        ));
    }
    for (v, &c) in fine_to_coarsest.iter().enumerate() {
        if ids::node_index(c) >= n_coarse {
            errs.push(format!(
                "fine_to_coarsest[{v}] = {c} out of coarsest range 0..{n_coarse}"
            ));
            break;
        }
    }

    if let Err(e) = coarsest.validate() {
        errs.push(format!("coarsest graph malformed: {e}"));
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgp_dmp::run;
    use pgp_graph::CsrGraph;

    fn ring(n: usize) -> CsrGraph {
        let edges: Vec<(Node, Node)> = (0..n).map(|i| (i as Node, ((i + 1) % n) as Node)).collect();
        pgp_graph::builder::from_edges(n, &edges)
    }

    #[test]
    fn healthy_graph_validates() {
        let g = ring(24);
        run(4, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            validate_dist_graph(comm, &dg).unwrap();
        });
    }

    #[test]
    fn healthy_rmat_validates() {
        let g = pgp_gen::rmat::rmat_web(9, 8, 3);
        run(3, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            validate_dist_graph(comm, &dg).unwrap();
        });
    }

    #[test]
    fn corrupted_ghost_map_is_detected() {
        let g = ring(16);
        let reports = run(4, |comm| {
            let mut dg = DistGraph::from_global(comm, &g);
            if comm.rank() == 2 {
                // Shift one ghost's slot: classic off-by-one corruption.
                let gid = dg.ghost_globals()[0];
                let wrong = dg.global_to_local(gid) + 1;
                dg.ghost_map_mut_for_test().insert(gid, wrong);
            }
            validate_dist_graph(comm, &dg)
        });
        for r in reports {
            let errs = r.expect_err("corruption must be detected");
            assert!(
                errs.iter()
                    .any(|e| e.contains("[PE 2]") && e.contains("ghost_map")),
                "unexpected error set: {errs:?}"
            );
        }
    }

    #[test]
    fn corrupted_ghost_owner_is_detected() {
        let g = ring(16);
        let reports = run(4, |comm| {
            let mut dg = DistGraph::from_global(comm, &g);
            if comm.rank() == 1 {
                dg.ghost_owners_mut_for_test()[0] = comm.rank() as u32;
            }
            validate_dist_graph(comm, &dg)
        });
        for r in reports {
            let errs = r.expect_err("corruption must be detected");
            assert!(errs.iter().any(|e| e.contains("ghost_owner")), "{errs:?}");
        }
    }

    #[test]
    fn asymmetric_cut_arc_is_detected() {
        let g = ring(12);
        let reports = run(3, |comm| {
            let mut dg = DistGraph::from_global(comm, &g);
            if comm.rank() == 0 {
                // Tamper with the weight of the first cut arc on this side
                // only: the mirror no longer matches.
                let nl = dg.n_local();
                let pos = dg
                    .adjncy_raw()
                    .iter()
                    .position(|&t| (t as usize) >= nl)
                    .expect("ring PE has cut arcs");
                dg.adjwgt_mut_for_test()[pos] = 7;
            }
            validate_dist_graph(comm, &dg)
        });
        for r in reports {
            let errs = r.expect_err("asymmetry must be detected");
            assert!(errs.iter().any(|e| e.contains("mirror")), "{errs:?}");
        }
    }

    #[test]
    fn corrupted_node_weight_breaks_totals() {
        let g = ring(16);
        let reports = run(2, |comm| {
            let mut dg = DistGraph::from_global(comm, &g);
            if comm.rank() == 1 {
                dg.node_weights_mut_for_test()[0] += 5;
            }
            validate_dist_graph(comm, &dg)
        });
        for r in reports {
            let errs = r.expect_err("weight drift must be detected");
            assert!(
                errs.iter().any(|e| e.contains("total_node_weight")),
                "{errs:?}"
            );
        }
    }

    #[test]
    fn verdict_is_symmetric_across_pes() {
        let g = ring(16);
        let reports = run(4, |comm| {
            let mut dg = DistGraph::from_global(comm, &g);
            if comm.rank() == 3 {
                dg.node_weights_mut_for_test()[0] += 1;
            }
            validate_dist_graph(comm, &dg)
        });
        let errs: Vec<_> = reports.into_iter().map(|r| r.unwrap_err()).collect();
        assert!(errs.windows(2).all(|w| w[0] == w[1]), "all PEs must agree");
    }

    #[test]
    fn valid_partition_passes_and_stale_ghost_fails() {
        let g = ring(16);
        // Healthy: blocks by parity of global ID, ghosts consistent.
        run(4, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let blocks: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                .map(|l| dg.local_to_global(l) % 2)
                .collect();
            validate_dist_partition(comm, &dg, &blocks, 2, None).unwrap();
        });
        // Stale ghost label on one PE.
        let reports = run(4, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let mut blocks: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                .map(|l| dg.local_to_global(l) % 2)
                .collect();
            if comm.rank() == 0 && dg.n_ghost() > 0 {
                let i = dg.n_local();
                blocks[i] = 1 - blocks[i];
            }
            validate_dist_partition(comm, &dg, &blocks, 2, None)
        });
        for r in reports {
            let errs = r.expect_err("stale ghost must be detected");
            assert!(errs.iter().any(|e| e.contains("stale")), "{errs:?}");
        }
    }

    #[test]
    fn wrong_claimed_block_weights_fail() {
        let g = ring(16);
        let reports = run(2, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let blocks: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                .map(|l| dg.local_to_global(l) % 2)
                .collect();
            let bogus = vec![1u64, 15];
            validate_dist_partition(comm, &dg, &blocks, 2, Some(&bogus))
        });
        for r in reports {
            let errs = r.expect_err("bogus weights must be detected");
            assert!(errs.iter().any(|e| e.contains("recount")), "{errs:?}");
        }
    }

    #[test]
    fn out_of_range_block_fails() {
        let g = ring(8);
        let reports = run(2, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let blocks: Vec<Node> = vec![9; dg.n_local() + dg.n_ghost()];
            validate_dist_partition(comm, &dg, &blocks, 2, None)
        });
        for r in reports {
            assert!(r.is_err(), "out-of-range block must be detected");
        }
    }

    #[test]
    fn agreed_recovery_verdict_passes() {
        run(4, |comm| {
            validate_recovery(comm, &[2], Some(1)).unwrap();
            validate_recovery(comm, &[], None).unwrap();
        });
    }

    #[test]
    fn divergent_recovery_view_is_detected() {
        let reports = run(3, |comm| {
            let dead: &[usize] = if comm.rank() == 1 { &[0] } else { &[2] };
            validate_recovery(comm, dead, Some(0))
        });
        for r in reports {
            let errs = r.expect_err("divergent views must be detected");
            assert!(errs.iter().any(|e| e.contains("disagrees")), "{errs:?}");
        }
    }

    #[test]
    fn malformed_local_verdict_is_detected() {
        let reports = run(2, |comm| {
            // Out of range, unsorted, and no survivors — all at once.
            validate_recovery(comm, &[1, 1, 9], None)
        });
        for r in reports {
            let errs = r.expect_err("malformed verdict must be detected");
            assert!(
                errs.iter().any(|e| e.contains("out of group range")),
                "{errs:?}"
            );
            assert!(errs.iter().any(|e| e.contains("ascending")), "{errs:?}");
            assert!(errs.iter().any(|e| e.contains("no survivors")), "{errs:?}");
        }
    }

    /// A tiny healthy checkpoint: 8 fine nodes contracted onto a
    /// 4-node ring, 2 blocks, fine nodes map pairwise to coarsest nodes.
    fn healthy_checkpoint() -> (usize, Vec<Node>, CsrGraph, Vec<Node>, Vec<Node>) {
        let coarsest = ring(4);
        let assignment: Vec<Node> = (0..8).map(|v| (v / 4) as Node).collect();
        let coarsest_assignment: Vec<Node> = (0..4).map(|c| (c / 2) as Node).collect();
        let fine_to_coarsest: Vec<Node> = (0..8).map(|v| (v / 2) as Node).collect();
        (
            2,
            assignment,
            coarsest,
            coarsest_assignment,
            fine_to_coarsest,
        )
    }

    #[test]
    fn healthy_checkpoint_validates() {
        let (k, a, g, ca, f2c) = healthy_checkpoint();
        validate_checkpoint(k, &a, &g, &ca, &f2c).unwrap();
    }

    #[test]
    fn checkpoint_block_out_of_range_fails() {
        let (k, mut a, g, ca, f2c) = healthy_checkpoint();
        a[3] = 9;
        let errs = validate_checkpoint(k, &a, &g, &ca, &f2c).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("block range")), "{errs:?}");
    }

    #[test]
    fn checkpoint_coarsest_coverage_mismatch_fails() {
        let (k, a, g, mut ca, f2c) = healthy_checkpoint();
        ca.pop();
        let errs = validate_checkpoint(k, &a, &g, &ca, &f2c).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("coarsest graph has")),
            "{errs:?}"
        );
    }

    #[test]
    fn checkpoint_map_target_out_of_range_fails() {
        let (k, a, g, ca, mut f2c) = healthy_checkpoint();
        f2c[5] = 4; // coarsest has nodes 0..4
        let errs = validate_checkpoint(k, &a, &g, &ca, &f2c).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("coarsest range")),
            "{errs:?}"
        );
    }

    #[test]
    fn checkpoint_map_length_mismatch_fails() {
        let (k, a, g, ca, mut f2c) = healthy_checkpoint();
        f2c.truncate(6);
        let errs = validate_checkpoint(k, &a, &g, &ca, &f2c).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("fine_to_coarsest covers")),
            "{errs:?}"
        );
    }
}
