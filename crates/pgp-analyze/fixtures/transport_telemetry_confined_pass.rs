// Pass fixture for transport-confined (telemetry family): an
// algorithm-layer file that interacts with the live plane only through
// the sanctioned surface — the Recorder progress hooks on its own rank
// and the public stream validator over a finished NDJSON file. No frame
// files, no other PE's state.

fn mark_round(comm: &Comm, round: usize) {
    comm.recorder()
        .set_round(u32::try_from(round).unwrap_or(u32::MAX));
}

fn check_finished_stream(text: &str) -> Result<u64, String> {
    let summary = validate_live_stream(text)?;
    Ok(summary.snapshots)
}
