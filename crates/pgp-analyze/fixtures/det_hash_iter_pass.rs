// Fixture: ordered containers iterate freely, and a std HashMap used only
// for membership (never iterated) is fine -> no finding.
use std::collections::{BTreeMap, HashMap};

fn tally(xs: &[u64]) -> u64 {
    let mut m: BTreeMap<u64, u64> = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    let mut acc = 0;
    for (k, v) in m.iter() {
        acc += k * v;
    }
    acc
}

fn membership(xs: &[u64]) -> bool {
    let mut s: HashMap<u64, bool> = HashMap::new();
    for &x in xs {
        s.insert(x, true);
    }
    s.contains_key(&7)
}
