// Fixture: a suppression marker that suppresses nothing, and one naming an
// unknown rule -> unused-allow must fire for both.
fn fine() {
    let x = 1; // analyze:allow(det-unordered-hash-iter)
    // analyze:allow(not-a-real-rule)
    drop(x);
}
