// Pass fixture for transport-confined: an algorithm-layer file that moves
// data exclusively through the Comm send/recv/collective API. The backend
// (threads or sockets) is invisible from here — exactly the property the
// rule protects.

pub mod tags {
    pub const DATA: u64 = 0x01;
}

fn exchange(comm: &Comm) -> Vec<u64> {
    let tag = comm.fresh_tag_block() + tags::DATA;
    comm.send_counted::<Vec<u64>>(0, tag, vec![1, 2, 3], 3);
    let v: Vec<u64> = comm.recv(0, tag);
    v
}

fn agree(comm: &Comm, x: u64) -> u64 {
    allreduce_sum(comm, x)
}
