// Fixture: float reduction over an *ordered* container -> no finding.
use std::collections::BTreeMap;

fn chain_sum(xs: &[(u64, f64)]) -> f64 {
    let mut w: BTreeMap<u64, f64> = BTreeMap::new();
    for &(b, x) in xs {
        *w.entry(b).or_insert(0.0) += x;
    }
    let total: f64 = w.values().sum::<f64>();
    total
}
