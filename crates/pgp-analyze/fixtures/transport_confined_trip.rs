// Trip fixture for transport-confined: an algorithm-layer file reaching
// through the backend seam — naming mailbox internals, socket-backend
// types, the frame codec, and a raw OS stream type.

use std::os::unix::net::UnixStream;

fn peek_mailbox(mb: &Mailbox) -> usize {
    mb.len()
}

fn steal_endpoint(group: &SocketGroup) -> SocketEndpoint {
    group.endpoint(0)
}

fn hand_roll_a_frame(stream: &mut UnixStream, payload: &[u8]) {
    write_frame(stream, 7, 0, payload).expect("frame write");
}

fn decode_by_hand(stream: &mut UnixStream) -> Vec<u8> {
    let frame = read_frame(stream).expect("frame read").expect("one frame");
    frame.payload
}
