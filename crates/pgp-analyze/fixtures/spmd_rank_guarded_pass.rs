// Fixture: three patterns that must NOT fire:
//  - a collective called unconditionally,
//  - a rank guard around non-collective work (root-only logging),
//  - a rank-guarded collective in a function UNREACHABLE from any entry
//    point (dead tooling code is out of SPMD scope).
pub fn partition_parallel(comm: &Comm) {
    barrier(comm);
    if comm.rank() == 0 {
        log_summary(comm.rank());
    }
    if let Some(v) = maybe(comm) {
        drop(v);
    }
}

fn log_summary(rank: usize) {
    drop(rank);
}

fn maybe(comm: &Comm) -> Option<u64> {
    Some(comm.rank() as u64)
}

fn unreachable_tool(comm: &Comm) {
    if comm.rank() == 0 {
        barrier(comm);
    }
}
