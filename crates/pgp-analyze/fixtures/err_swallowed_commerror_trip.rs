// Trip fixture for err-swallowed-commerror: unwrap, expect, and let-_
// swallowing of Result<_, CommError> values, including a cross-fn case
// where the fallible fn is declared in the same sweep.

pub fn try_barrier(comm: &Comm, deadline: Duration) -> Result<(), CommError> {
    comm.wait(deadline)
}

pub fn try_sum(comm: &Comm, v: u64) -> Result<u64, CommError> {
    Ok(v)
}

fn swallow_by_unwrap(comm: &Comm) {
    try_barrier(comm, D).unwrap();
}

fn swallow_by_expect(comm: &Comm) -> u64 {
    try_sum(comm, 1).expect("healthy group")
}

fn swallow_by_discard(comm: &Comm) {
    let _ = try_barrier(comm, D);
}

fn swallow_with_turbofish(comm: &Comm) {
    helper::<u64>(comm).unwrap();
}

fn helper<T>(comm: &Comm) -> Result<T, CommError> {
    todo(comm)
}
