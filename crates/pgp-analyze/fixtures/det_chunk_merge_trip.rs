// Fixture (analyzed under crates/pgp-lp/src/): a worker-pool function —
// it calls `run_chunks` — merging per-worker results by iterating an
// FxHashMap. The fixed hasher makes order a function of insertion order,
// and insertion order here depends on which chunks each worker claimed,
// so det-unordered-chunk-merge must fire for both the method form and
// the `for .. in &map` form. Note the plain det-unordered-hash-iter rule
// stays silent: these are Fx containers, not std RandomState ones.
use rustc_hash::FxHashMap;

fn merge_weights(bounds: &[usize]) -> i64 {
    let outs = run_chunks(1, bounds, |_c, lo, hi| (hi - lo) as i64);
    let mut deltas: FxHashMap<u64, i64> = FxHashMap::default();
    for (i, d) in outs.iter().enumerate() {
        *deltas.entry(i as u64).or_insert(0) += d;
    }
    let mut total = 0;
    for (_, d) in deltas.iter() {
        total += d;
    }
    total
}

fn merge_moves(bounds: &[usize]) -> i64 {
    let outs = run_chunks(2, bounds, |_c, lo, hi| (hi - lo) as i64);
    let mut moved = FxHashMap::default();
    for (i, d) in outs.iter().enumerate() {
        moved.insert(i as u64, *d);
    }
    let mut total = 0;
    for kv in &moved {
        total += kv.1;
    }
    total
}

fn run_chunks(_threads: usize, bounds: &[usize], work: impl Fn(usize, usize, usize) -> i64) -> Vec<i64> {
    (1..bounds.len()).map(|c| work(c - 1, bounds[c - 1], bounds[c])).collect()
}
