// Fixture: the deterministic shapes stay silent. A pool function may use
// hash containers for lookup (`.get`/`.entry`) and must merge per-chunk
// outputs in chunk-index order (a plain Vec walk); a non-pool function in
// the same file may iterate its Fx containers freely — with a fixed
// hasher and single-threaded insertion that order is reproducible.
use rustc_hash::FxHashMap;

fn merge_in_chunk_order(bounds: &[usize]) -> i64 {
    let outs = run_chunks(4, bounds, |_c, lo, hi| (hi - lo) as i64);
    let mut weights: FxHashMap<u64, i64> = FxHashMap::default();
    let mut total = 0;
    for (i, d) in outs.iter().enumerate() {
        *weights.entry(i as u64).or_insert(0) += d;
        total += weights.get(&(i as u64)).copied().unwrap_or(0);
    }
    total
}

fn worker_local_map_is_not_the_outputs(bounds: &[usize]) -> i64 {
    // The closure's own FxHashMap types a worker-local; `outs` itself is
    // an ordered Vec and may be iterated freely (the real merge shape).
    let outs = run_chunks(2, bounds, |_c, lo, hi| {
        let mut wdelta: FxHashMap<u64, i64> = FxHashMap::default();
        *wdelta.entry(lo as u64).or_insert(0) += (hi - lo) as i64;
        wdelta.get(&(lo as u64)).copied().unwrap_or(0)
    });
    let mut total = 0;
    for out in outs.iter() {
        total += out;
    }
    total
}

fn sequential_tally(xs: &[u64]) -> i64 {
    let mut m: FxHashMap<u64, i64> = FxHashMap::default();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    let mut total = 0;
    for (_, v) in m.iter() {
        total += v;
    }
    total
}

fn run_chunks(_threads: usize, bounds: &[usize], work: impl Fn(usize, usize, usize) -> i64) -> Vec<i64> {
    (1..bounds.len()).map(|c| work(c - 1, bounds[c - 1], bounds[c])).collect()
}
