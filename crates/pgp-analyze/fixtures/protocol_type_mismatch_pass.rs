// Fixture: send and recv agree on `Vec<u64>` (recv via `let` annotation,
// send via turbofish, written with a full path on one side to exercise
// type normalization) -> no finding.
pub mod tags {
    pub const COLLECTIVE_TAG_BASE: u64 = 1 << 48;
    pub const BLOCK_SPAN: u64 = 1 << 16;
    pub const DATA: u64 = 0x01;
}

fn sender(comm: &Comm) {
    let tag = comm.fresh_tag_block() + tags::DATA;
    comm.send_counted::<std::vec::Vec<u64>>(0, tag, Vec::new(), 0);
}

fn receiver(comm: &Comm) {
    let tag = comm.fresh_tag_block() + tags::DATA;
    let got: Vec<u64> = comm.recv(0, tag);
    drop(got);
}
