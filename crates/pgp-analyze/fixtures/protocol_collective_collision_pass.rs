// Fixture: a well-formed tags module (op codes are nonzero multiples of
// 0x100, user offsets below 0x100, all values distinct) and low literal
// tags outside the collective block -> no finding.
pub mod tags {
    pub const COLLECTIVE_TAG_BASE: u64 = 1 << 48;
    pub const BLOCK_SPAN: u64 = 1 << 16;
    pub const OP_BARRIER: u64 = 1 << 8;
    pub const OP_BCAST: u64 = 2 << 8;
    pub const GHOST_LABELS: u64 = 0x01;
    pub const RUMOR: u64 = 0x52;
}

fn low_literal(comm: &Comm) {
    comm.send(1, 7, 1u64);
    let x: u64 = comm.recv(1, 7);
    drop(x);
}
