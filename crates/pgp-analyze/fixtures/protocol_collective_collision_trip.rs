// Fixture: four distinct layout violations in the tags module plus one
// literal tag inside the collective block -> protocol-collective-collision
// must fire (several times).
pub mod tags {
    pub const COLLECTIVE_TAG_BASE: u64 = 1 << 48;
    pub const BLOCK_SPAN: u64 = 1 << 16;
    // Op code with a nonzero low byte: the round counter would corrupt it.
    pub const OP_BAD: u64 = (1 << 8) + 3;
    // User offset inside the op-code range (bits 8..16).
    pub const TOO_HIGH: u64 = 0x1F0;
    // Two offsets sharing one value: cross-delivery.
    pub const DUP_A: u64 = 0x05;
    pub const DUP_B: u64 = 0x05;
    // Absolute tag parked inside the collective block.
    pub const ABSOLUTE: u64 = (1 << 48) + 9;
}

fn literal_in_block(comm: &Comm) {
    let tag = (1 << 48) + 7;
    comm.send(0, tag, 1u64);
    let x: u64 = comm.recv(0, tag);
    drop(x);
}
