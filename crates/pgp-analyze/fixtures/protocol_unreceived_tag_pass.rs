// Fixture: every sent tag has a matching receive (the receive resolves
// through a `self.tag` struct field, exercising the struct-literal key
// path) -> no finding.
pub mod tags {
    pub const COLLECTIVE_TAG_BASE: u64 = 1 << 48;
    pub const BLOCK_SPAN: u64 = 1 << 16;
    pub const GOSSIP: u64 = 0x09;
}

struct Endpoint {
    tag: u64,
}

impl Endpoint {
    fn new(comm: &Comm) -> Self {
        Self {
            tag: comm.fresh_tag_block() + tags::GOSSIP,
        }
    }

    fn spread(&self, comm: &Comm) {
        comm.send(1, self.tag, 5u64);
    }

    fn collect(&self, comm: &Comm) -> Vec<(usize, u64)> {
        comm.drain::<u64>(self.tag)
    }
}
