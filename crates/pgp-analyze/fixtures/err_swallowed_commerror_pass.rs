// Pass fixture for err-swallowed-commerror: faults propagated with `?`,
// matched explicitly, bound to a named local, or unrelated unwraps on
// non-CommError results.

pub fn try_barrier(comm: &Comm, deadline: Duration) -> Result<(), CommError> {
    comm.wait(deadline)
}

fn plain_parse(s: &str) -> Result<u64, ParseIntError> {
    s.parse()
}

fn propagates(comm: &Comm) -> Result<(), CommError> {
    try_barrier(comm, D)?;
    Ok(())
}

fn matches_explicitly(comm: &Comm) -> usize {
    match try_barrier(comm, D) {
        Ok(()) => 0,
        Err(e) => handle(e),
    }
}

fn named_binding_is_fine(comm: &Comm) {
    let verdict = try_barrier(comm, D);
    route(verdict);
}

fn unrelated_unwrap_is_fine(s: &str) -> u64 {
    plain_parse(s).unwrap()
}

fn discarding_infallible_is_fine(comm: &Comm) {
    let _ = comm.rank();
}
