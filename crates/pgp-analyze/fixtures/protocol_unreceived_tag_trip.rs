// Fixture: `tags::ORPHAN` is sent but nothing ever receives it -> the
// messages sit in the mailbox forever; protocol-unreceived-tag must fire.
pub mod tags {
    pub const COLLECTIVE_TAG_BASE: u64 = 1 << 48;
    pub const BLOCK_SPAN: u64 = 1 << 16;
    pub const ORPHAN: u64 = 0x07;
    pub const FINE: u64 = 0x08;
}

fn leaky_sender(comm: &Comm) {
    comm.send(1, comm.fresh_tag_block() + tags::ORPHAN, 5u64);
}

// A healthy tag alongside, to prove the rule is per-tag.
fn paired(comm: &Comm) {
    let tag = comm.fresh_tag_block() + tags::FINE;
    comm.send(1, tag, 5u64);
    let x: u64 = comm.recv(1, tag);
    drop(x);
}
