// Fixture: the send site and recv site for `tags::DATA` disagree on the
// payload type -> protocol-type-mismatch must fire.
pub mod tags {
    pub const COLLECTIVE_TAG_BASE: u64 = 1 << 48;
    pub const BLOCK_SPAN: u64 = 1 << 16;
    pub const DATA: u64 = 0x01;
}

fn sender(comm: &Comm) {
    let tag = comm.fresh_tag_block() + tags::DATA;
    comm.send_counted::<Vec<u64>>(0, tag, Vec::new(), 0);
}

fn receiver(comm: &Comm) {
    let tag = comm.fresh_tag_block() + tags::DATA;
    let got: Vec<u32> = comm.recv(0, tag);
    drop(got);
}
