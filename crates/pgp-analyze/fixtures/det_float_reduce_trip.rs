// Fixture: float accumulation over std-hash iteration -> both
// det-unordered-float-reduce forms must fire (iterator-chain `.sum` and
// `+=` inside a for loop).
use std::collections::HashMap;

fn chain_sum(xs: &[(u64, f64)]) -> f64 {
    let mut w: HashMap<u64, f64> = HashMap::new();
    for &(b, x) in xs {
        *w.entry(b).or_insert(0.0) += x;
    }
    let total: f64 = w.values().sum::<f64>();
    total
}

fn loop_sum(xs: &[(u64, f64)]) -> f64 {
    let mut w: HashMap<u64, f64> = HashMap::new();
    for &(b, x) in xs {
        *w.entry(b).or_insert(0.0) += x;
    }
    let mut acc: f64 = 0.0;
    for kv in &w {
        acc += *kv.1;
    }
    acc
}
