// Fixture: a collective under a rank-dependent branch, reachable from the
// SPMD entry point through one call hop and a derived-rank variable ->
// spmd-rank-guarded-collective must fire (twice: barrier and
// fresh_tag_block).
pub fn partition_parallel(comm: &Comm) {
    helper(comm);
}

fn helper(comm: &Comm) {
    let vrank = comm.rank() ^ 1;
    if vrank == 0 {
        barrier(comm);
    } else {
        let t = comm.fresh_tag_block();
        drop(t);
    }
}
