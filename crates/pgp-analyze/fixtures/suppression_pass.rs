// Fixture: a real finding silenced by an `analyze:allow` marker on the
// line above -> zero findings, one suppression, and NO unused-allow.
use std::collections::HashMap;

fn tally(xs: &[u64]) -> u64 {
    let mut m: HashMap<u64, u64> = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    let mut acc = 0;
    // analyze:allow(det-unordered-hash-iter)
    for (k, v) in m.iter() {
        acc += k * v;
    }
    acc
}
