// Trip fixture for transport-confined (telemetry family): an
// algorithm-layer file reaching into the live-telemetry side channel —
// locating another PE's frame file, decoding frames by hand, and
// consulting the post-mortem snapshot reader. All PE state must travel
// through Comm messages; frame files are the monitor's channel.

fn spy_on_neighbor(dir: &std::path::Path, rank: usize) -> Vec<String> {
    let path = telemetry_frame_path(dir, rank);
    let bytes = std::fs::read(path).expect("frame file");
    read_telemetry_frames(&bytes)
}

fn peek_dead_rank(dir: &std::path::Path, rank: usize) -> Option<u64> {
    let snap = read_last_telemetry_snapshot(&telemetry_frame_path(dir, rank))?;
    Some(snap.msgs_sent)
}

fn leak_progress(w: &mut impl std::io::Write, line: &str) {
    write_telemetry_frame(w, line).expect("frame write");
}

fn reroute_sink(dir: &str) {
    std::env::set_var(ENV_TELEMETRY_DIR, dir);
}
