// Fixture (analyzed under a determinism-scoped path): iterating a std
// HashMap -> det-unordered-hash-iter must fire for both the method form
// and the `for .. in &map` form.
use std::collections::HashMap;

fn tally(xs: &[u64]) -> u64 {
    let mut m: HashMap<u64, u64> = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    let mut acc = 0;
    for (k, v) in m.iter() {
        acc += k * v;
    }
    acc
}

fn spill(xs: &[u64]) -> u64 {
    let mut seen = HashMap::new();
    for &x in xs {
        seen.insert(x, x);
    }
    let mut acc = 0;
    for kv in &seen {
        acc += kv.1;
    }
    acc
}
