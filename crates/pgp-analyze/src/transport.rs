//! Rule family (e): transport confinement.
//!
//! `transport-confined` — a transport-layer internal (mailbox machinery,
//! socket endpoints, the frame codec, raw OS stream types) is named
//! outside the comm/transport layer.
//!
//! The comm substrate hides *how* messages move behind the `Comm`
//! send/recv/collective API: the thread backend's bucketed mailboxes and
//! the socket backend's framed streams are interchangeable precisely
//! because nothing outside `crates/pgp-dmp/src/comm.rs` and
//! `crates/pgp-dmp/src/transport/` can tell them apart (DESIGN.md §15).
//! An algorithm crate that names `Mailbox`, `SocketEndpoint`, or
//! `read_frame` has punched through that seam — the cross-backend golden
//! equivalence guarantee no longer covers it. This is the AST-level
//! counterpart of `xtask lint` rule 5, extended from mailbox internals to
//! the whole transport vocabulary including `std::os::unix::net` /
//! `std::net` stream types.
//!
//! Tests and benches are exempt (excluded by the shared pipeline): the
//! wire-codec property tests and the conformance harness exercise the
//! frame layer on purpose.

use crate::lexer::TokKind;
use crate::report::{Finding, RULE_TRANSPORT_CONFINED};
use crate::FileUnit;

/// The owning layer: the `Comm` facade plus every transport module
/// (thread mailboxes, socket mesh, frame codec, process supervisor).
/// Mirrors `MAILBOX_OWNER_FILES` in `xtask` rule 5.
const OWNER_FILE: &str = "crates/pgp-dmp/src/comm.rs";
const OWNER_DIR: &str = "crates/pgp-dmp/src/transport/";

/// Transport-internal identifiers and what each one is. Naming any of
/// these outside the owning layer is a confinement breach.
const CONFINED: &[(&str, &str)] = &[
    ("Mailbox", "thread-backend mailbox"),
    ("MailboxInner", "thread-backend mailbox state"),
    ("SrcState", "per-source mailbox bucket"),
    ("TagQueue", "per-tag mailbox queue"),
    ("Payload", "transport payload envelope"),
    ("RecvOutcome", "transport receive verdict"),
    ("ThreadTransport", "thread backend"),
    ("SocketEndpoint", "socket-backend endpoint"),
    ("SocketGroup", "socket-backend group"),
    ("SendLink", "socket-backend send link"),
    ("spawn_reader", "socket-backend reader thread"),
    ("Frame", "wire frame"),
    ("read_frame", "wire frame decoder"),
    ("write_frame", "wire frame encoder"),
    ("HEADER_BYTES", "wire frame header size"),
    ("CONTROL_TAG", "wire control channel tag"),
    ("UnixStream", "raw OS socket stream"),
    ("UnixListener", "raw OS socket listener"),
    ("TcpStream", "raw OS socket stream"),
    ("TcpListener", "raw OS socket listener"),
];

/// Runs the transport-confinement rule.
pub fn check(units: &[FileUnit]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for unit in units {
        if unit.rel == OWNER_FILE || unit.rel.starts_with(OWNER_DIR) {
            continue;
        }
        for t in &unit.lexed.toks {
            if t.kind != TokKind::Ident {
                continue;
            }
            if let Some((name, what)) = CONFINED.iter().find(|(n, _)| *n == t.text) {
                findings.push(Finding {
                    rule: RULE_TRANSPORT_CONFINED,
                    file: unit.rel.clone(),
                    line: t.line,
                    message: format!(
                        "`{name}` ({what}) is a transport-layer internal; only comm.rs \
                         and transport/ may name it — go through the Comm \
                         send/recv/collective API so the backend stays swappable"
                    ),
                });
            }
        }
    }
    findings
}
