//! Rule family (e): transport confinement.
//!
//! `transport-confined` — a transport-layer internal (mailbox machinery,
//! socket endpoints, the frame codec, raw OS stream types) is named
//! outside the comm/transport layer.
//!
//! The comm substrate hides *how* messages move behind the `Comm`
//! send/recv/collective API: the thread backend's bucketed mailboxes and
//! the socket backend's framed streams are interchangeable precisely
//! because nothing outside `crates/pgp-dmp/src/comm.rs` and
//! `crates/pgp-dmp/src/transport/` can tell them apart (DESIGN.md §15).
//! An algorithm crate that names `Mailbox`, `SocketEndpoint`, or
//! `read_frame` has punched through that seam — the cross-backend golden
//! equivalence guarantee no longer covers it. This is the AST-level
//! counterpart of `xtask lint` rule 5, extended from mailbox internals to
//! the whole transport vocabulary including `std::os::unix::net` /
//! `std::net` stream types.
//!
//! The rule also patrols the *telemetry* frame codec (DESIGN.md §16):
//! the length-prefixed snapshot frames the live plane writes per PE are
//! an out-of-band side channel owned by `pgp-obs` (codec + reader) and
//! the comm/transport layer (the publish and post-mortem call sites).
//! Algorithm code reading another PE's frame file would be a covert
//! channel around `Comm` — same seam, same guarantee, same rule.
//!
//! Tests and benches are exempt (excluded by the shared pipeline): the
//! wire-codec property tests and the conformance harness exercise the
//! frame layer on purpose.

use crate::lexer::TokKind;
use crate::report::{Finding, RULE_TRANSPORT_CONFINED};
use crate::FileUnit;

/// The owning layer: the `Comm` facade plus every transport module
/// (thread mailboxes, socket mesh, frame codec, process supervisor).
/// Mirrors `MAILBOX_OWNER_FILES` in `xtask` rule 5.
const OWNER_FILE: &str = "crates/pgp-dmp/src/comm.rs";
const OWNER_DIR: &str = "crates/pgp-dmp/src/transport/";

/// Transport-internal identifiers and what each one is. Naming any of
/// these outside the owning layer is a confinement breach.
const CONFINED: &[(&str, &str)] = &[
    ("Mailbox", "thread-backend mailbox"),
    ("MailboxInner", "thread-backend mailbox state"),
    ("SrcState", "per-source mailbox bucket"),
    ("TagQueue", "per-tag mailbox queue"),
    ("Payload", "transport payload envelope"),
    ("RecvOutcome", "transport receive verdict"),
    ("ThreadTransport", "thread backend"),
    ("SocketEndpoint", "socket-backend endpoint"),
    ("SocketGroup", "socket-backend group"),
    ("SendLink", "socket-backend send link"),
    ("spawn_reader", "socket-backend reader thread"),
    ("Frame", "wire frame"),
    ("read_frame", "wire frame decoder"),
    ("write_frame", "wire frame encoder"),
    ("HEADER_BYTES", "wire frame header size"),
    ("CONTROL_TAG", "wire control channel tag"),
    ("UnixStream", "raw OS socket stream"),
    ("UnixListener", "raw OS socket listener"),
    ("TcpStream", "raw OS socket stream"),
    ("TcpListener", "raw OS socket listener"),
];

/// The telemetry side channel's owning layer: the `pgp-obs` crate holds
/// the frame codec and readers; comm.rs/transport/ hold the publish and
/// post-mortem call sites (process workers flush frames, the supervisor
/// reads a dead rank's last snapshot).
const TELEMETRY_OWNER_DIR: &str = "crates/pgp-obs/src/";

/// The `pgp-dmp` facade re-exports `ENV_TELEMETRY_DIR` for external
/// process supervisors (the same sanctioned-re-export precedent as
/// `xtask` rule 6's chaos-hook list).
const TELEMETRY_OWNER_FACADE: &str = "crates/pgp-dmp/src/lib.rs";

/// Telemetry-frame vocabulary (DESIGN.md §16). Confined to
/// [`TELEMETRY_OWNER_DIR`] plus the transport owners above: anything
/// else reading per-PE frame files is routing data around `Comm`.
const TELEMETRY_CONFINED: &[(&str, &str)] = &[
    ("telemetry_frame_path", "per-PE telemetry frame file layout"),
    ("write_telemetry_frame", "telemetry frame encoder"),
    ("read_telemetry_frames", "telemetry frame decoder"),
    (
        "read_last_telemetry_snapshot",
        "post-mortem snapshot reader",
    ),
    ("ENV_TELEMETRY_DIR", "worker telemetry-sink env knob"),
];

/// Runs the transport-confinement rule.
pub fn check(units: &[FileUnit]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for unit in units {
        let transport_owner = unit.rel == OWNER_FILE || unit.rel.starts_with(OWNER_DIR);
        let telemetry_owner = transport_owner
            || unit.rel.starts_with(TELEMETRY_OWNER_DIR)
            || unit.rel == TELEMETRY_OWNER_FACADE;
        for t in &unit.lexed.toks {
            if t.kind != TokKind::Ident {
                continue;
            }
            if !transport_owner {
                if let Some((name, what)) = CONFINED.iter().find(|(n, _)| *n == t.text) {
                    findings.push(Finding {
                        rule: RULE_TRANSPORT_CONFINED,
                        file: unit.rel.clone(),
                        line: t.line,
                        message: format!(
                            "`{name}` ({what}) is a transport-layer internal; only comm.rs \
                             and transport/ may name it — go through the Comm \
                             send/recv/collective API so the backend stays swappable"
                        ),
                    });
                }
            }
            if !telemetry_owner {
                if let Some((name, what)) = TELEMETRY_CONFINED.iter().find(|(n, _)| *n == t.text) {
                    findings.push(Finding {
                        rule: RULE_TRANSPORT_CONFINED,
                        file: unit.rel.clone(),
                        line: t.line,
                        message: format!(
                            "`{name}` ({what}) is telemetry side-channel machinery; only \
                             pgp-obs, comm.rs and transport/ may name it — PE state must \
                             travel through Comm messages, not frame files"
                        ),
                    });
                }
            }
        }
    }
    findings
}
