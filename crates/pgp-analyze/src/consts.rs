//! Constant-expression evaluation for tag constants.
//!
//! Tag values in this codebase are built from integer literals and other
//! constants with `<<`, `|`, `+`, `-`, `*` (e.g. `1 << 48`, `3 << 8`,
//! `COLLECTIVE_TAG_BASE + 2`). The protocol rules need the *numeric* values
//! to classify offsets (op code vs user tag) and detect collisions, so this
//! module evaluates those expressions over the parsed constant table.

use crate::lexer::{Tok, TokKind};
use crate::parse::ConstItem;
use std::collections::HashMap;

/// A resolved constant: its numeric value plus where it came from.
#[derive(Clone, Copy, Debug)]
pub struct ConstValue {
    /// The evaluated value (wrapping arithmetic, like const eval of `u64`).
    pub value: u64,
    /// Index of the defining file in the analysis file list.
    pub file: usize,
    /// 1-based line of the definition.
    pub line: u32,
    /// True when the constant was declared in a tags module.
    pub in_tags_module: bool,
}

/// Evaluated constant table for the whole analysis, keyed by name.
/// Name collisions across files keep the first definition (tag constants
/// are globally unique by design; the collision rule reports duplicates
/// by *value*, not by name).
#[derive(Debug, Default)]
pub struct ConstTable {
    map: HashMap<String, ConstValue>,
}

impl ConstTable {
    /// Builds the table from every file's const items, resolving
    /// cross-references iteratively (references to not-yet-evaluated names
    /// resolve on a later pass; cycles and non-integer initializers stay
    /// unresolved and are simply absent).
    pub fn build(files: &[(usize, &[Tok], &[ConstItem])]) -> Self {
        let mut table = ConstTable::default();
        // Fixed-point iteration: the dependency graph between tag constants
        // is shallow (BASE -> BLOCK -> offsets), so a few passes settle it.
        for _ in 0..4 {
            let mut progressed = false;
            for (file, toks, consts) in files {
                for c in *consts {
                    if table.map.contains_key(&c.name) {
                        continue;
                    }
                    let expr = &toks[c.expr.0..c.expr.1];
                    if let Some(value) = eval(expr, &table.map) {
                        table.map.insert(
                            c.name.clone(),
                            ConstValue {
                                value,
                                file: *file,
                                line: c.line,
                                in_tags_module: c.in_tags_module,
                            },
                        );
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        table
    }

    /// Looks up a constant by name.
    pub fn get(&self, name: &str) -> Option<&ConstValue> {
        self.map.get(name)
    }

    /// Borrows the full name -> value map (for [`eval`]).
    pub fn known(&self) -> &HashMap<String, ConstValue> {
        &self.map
    }

    /// Iterates all resolved constants as `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &ConstValue)> {
        self.map.iter()
    }
}

/// Evaluates an integer constant expression over already-known names.
/// Returns `None` for anything non-integer (floats, strings, calls,
/// unknown identifiers).
pub fn eval(toks: &[Tok], known: &HashMap<String, ConstValue>) -> Option<u64> {
    let mut p = Parser {
        toks,
        pos: 0,
        known,
    };
    let v = p.expr(0)?;
    if p.pos == toks.len() {
        Some(v)
    } else {
        None
    }
}

/// Parses the text of one integer literal token (handles `0x`/`0o`/`0b`
/// prefixes, `_` separators, and type suffixes). `None` for floats.
pub fn parse_int(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = if let Some(rest) = clean.strip_prefix("0x").or(clean.strip_prefix("0X"))
    {
        (16, rest)
    } else if let Some(rest) = clean.strip_prefix("0o").or(clean.strip_prefix("0O")) {
        (8, rest)
    } else if let Some(rest) = clean.strip_prefix("0b").or(clean.strip_prefix("0B")) {
        (2, rest)
    } else {
        (10, clean.as_str())
    };
    // Cut the type suffix: the first char that is not a digit of this radix.
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(digits.len());
    let (num, suffix) = digits.split_at(end);
    if num.is_empty()
        || suffix.starts_with('.')
        || suffix.starts_with('e')
        || suffix.starts_with('E')
    {
        return None; // float or empty
    }
    u64::from_str_radix(num, radix).ok()
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    known: &'a HashMap<String, ConstValue>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    /// Returns the binary operator at the cursor (joining adjacent puncts
    /// for `<<`/`>>`) with its binding power, without consuming it.
    fn peek_op(&self) -> Option<(u8, usize)> {
        let t = self.peek()?;
        if t.kind != TokKind::Punct {
            return None;
        }
        let next = self.toks.get(self.pos + 1);
        match t.text.as_str() {
            "|" => Some((1, 1)),
            "^" => Some((2, 1)),
            "&" => Some((3, 1)),
            "<" if next.is_some_and(|n| n.is_punct('<')) => Some((4, 2)),
            ">" if next.is_some_and(|n| n.is_punct('>')) => Some((4, 2)),
            "+" | "-" => Some((5, 1)),
            "*" | "/" | "%" => Some((6, 1)),
            _ => None,
        }
    }

    /// Precedence-climbing expression parser.
    fn expr(&mut self, min_bp: u8) -> Option<u64> {
        let mut lhs = self.primary()?;
        while let Some((bp, width)) = self.peek_op() {
            if bp < min_bp {
                break;
            }
            let op = self.toks[self.pos].text.clone();
            self.pos += width;
            let rhs = self.expr(bp + 1)?;
            lhs = match op.as_str() {
                "|" => lhs | rhs,
                "^" => lhs ^ rhs,
                "&" => lhs & rhs,
                "<" => lhs.wrapping_shl(rhs as u32),
                ">" => lhs.wrapping_shr(rhs as u32),
                "+" => lhs.wrapping_add(rhs),
                "-" => lhs.wrapping_sub(rhs),
                "*" => lhs.wrapping_mul(rhs),
                "/" => lhs.checked_div(rhs)?,
                "%" => lhs.checked_rem(rhs)?,
                _ => return None,
            };
        }
        Some(lhs)
    }

    fn primary(&mut self) -> Option<u64> {
        let t = self.peek()?;
        match t.kind {
            TokKind::Number => {
                let v = parse_int(&t.text)?;
                self.pos += 1;
                // `1u64 as Tag`-style casts: swallow `as Type`.
                self.swallow_cast();
                Some(v)
            }
            TokKind::Ident => {
                // Possibly a path like `crate::tags::RUMOR`: the *last*
                // ident is the name.
                let mut name = t.text.clone();
                let mut j = self.pos + 1;
                while self.toks.get(j).is_some_and(|t| t.is_punct(':'))
                    && self.toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && self
                        .toks
                        .get(j + 2)
                        .is_some_and(|t| t.kind == TokKind::Ident)
                {
                    name = self.toks[j + 2].text.clone();
                    j += 3;
                }
                self.pos = j;
                let v = self.known.get(&name)?.value;
                self.swallow_cast();
                Some(v)
            }
            TokKind::Punct if t.text == "(" => {
                self.pos += 1;
                let v = self.expr(0)?;
                if !self.peek()?.is_punct(')') {
                    return None;
                }
                self.pos += 1;
                self.swallow_cast();
                Some(v)
            }
            _ => None,
        }
    }

    /// Consumes a trailing `as Type` if present.
    fn swallow_cast(&mut self) {
        while self.peek().is_some_and(|t| t.is_ident("as")) {
            self.pos += 1;
            // Type: idents and `::` path separators.
            while self
                .peek()
                .is_some_and(|t| t.kind == TokKind::Ident && t.text != "as" || t.is_punct(':'))
            {
                self.pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_items;

    fn eval_src(expr: &str) -> Option<u64> {
        eval(&lex(expr).toks, &HashMap::new())
    }

    #[test]
    fn literals_and_radixes() {
        assert_eq!(eval_src("0x52"), Some(0x52));
        assert_eq!(eval_src("1_000u64"), Some(1000));
        assert_eq!(eval_src("0b1010"), Some(10));
        assert_eq!(eval_src("1.5"), None);
    }

    #[test]
    fn shifts_and_precedence() {
        assert_eq!(eval_src("1 << 48"), Some(1 << 48));
        assert_eq!(eval_src("3 << 8"), Some(3 << 8));
        assert_eq!(eval_src("1 + 2 * 3"), Some(7));
        assert_eq!(eval_src("(1 + 2) * 3"), Some(9));
        assert_eq!(eval_src("1 << 4 | 2"), Some(18));
    }

    #[test]
    fn table_resolves_cross_references_in_any_order() {
        let src = "pub const DERIVED: u64 = BASE + OFF;\npub const BASE: u64 = 1 << 16;\npub const OFF: u64 = 0x02;";
        let lexed = lex(src);
        let items = parse_items(&lexed.toks, "crates/x/src/tags.rs");
        let table = ConstTable::build(&[(0, &lexed.toks, &items.consts)]);
        assert_eq!(table.get("DERIVED").map(|c| c.value), Some((1 << 16) + 2));
        assert!(table.get("DERIVED").expect("derived").in_tags_module);
    }

    #[test]
    fn paths_resolve_by_last_segment() {
        let mut known = HashMap::new();
        known.insert(
            "RUMOR".to_string(),
            ConstValue {
                value: 0x52,
                file: 0,
                line: 1,
                in_tags_module: true,
            },
        );
        assert_eq!(
            eval(&lex("crate::tags::RUMOR + 1").toks, &known),
            Some(0x53)
        );
    }

    #[test]
    fn casts_are_transparent() {
        assert_eq!(eval_src("8 as u64"), Some(8));
        assert_eq!(eval_src("(1 << 16) as u64 * 2"), Some(1 << 17));
    }

    #[test]
    fn non_integer_exprs_stay_unresolved() {
        assert_eq!(eval_src("foo()"), None);
        assert_eq!(eval_src("UNKNOWN + 1"), None);
    }
}
