//! AST-level static analysis for the workspace (`cargo xtask analyze`).
//!
//! Unlike the line-oriented `xtask lint` rules, this crate *parses* the
//! sources — a hand-rolled lexer ([`lexer`]) and item scanner ([`parse`])
//! over the token stream — and checks cross-file semantic properties that
//! no single-line regex can see:
//!
//! - [`protocol`] — message-protocol conformance: every tag's send sites
//!   and recv sites must agree on the payload type, every sent tag must
//!   have a receiver, and user tags must stay out of the collective block.
//! - [`spmd`] — SPMD divergence: collectives lexically guarded by
//!   rank-dependent conditions, reachable from the `partition_parallel*`
//!   entry points.
//! - [`determinism`] — iteration over std hash containers (and float
//!   reductions fed by them) in determinism-critical crates.
//! - [`errs`] — swallowed structured faults: `Result<_, CommError>`
//!   unwrapped or discarded outside the runner's terminal collection
//!   point, losing the coordinates the recovery supervisor consumes.
//! - [`transport`] — transport confinement: mailbox/socket/frame internals
//!   and raw OS stream types named outside comm.rs and the transport/
//!   modules, breaching the pluggable-backend seam (DESIGN.md §15).
//!
//! Findings are suppressible with `// analyze:allow(rule-id)` on the same
//! line or the line above; stale markers are themselves findings
//! (`unused-allow`). Output is stable JSON (`pgp-analyze/v1`), sorted by
//! `(file, line, rule)`. See DESIGN.md §12 for the architecture and rule
//! catalog.

pub mod consts;
pub mod determinism;
pub mod errs;
pub mod lexer;
pub mod parse;
pub mod protocol;
pub mod report;
pub mod spmd;
pub mod transport;

pub use report::{Finding, RULES};

use std::path::{Path, PathBuf};

/// One input source file.
pub struct SourceFile {
    /// Repo-relative path (forward slashes).
    pub rel: String,
    /// Full file contents.
    pub text: String,
}

/// A lexed and item-parsed file, shared by all rule families.
pub struct FileUnit {
    /// Repo-relative path.
    pub rel: String,
    /// Token stream plus `analyze:allow` markers.
    pub lexed: lexer::Lexed,
    /// Extracted items (test-gated items already excluded).
    pub items: parse::Items,
}

/// The result of an analysis run.
pub struct Analysis {
    /// Findings that survived suppression, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// How many findings `analyze:allow` markers suppressed.
    pub suppressed: usize,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Renders the stable `pgp-analyze/v1` JSON document.
    pub fn to_json(&self) -> String {
        report::to_json(&self.findings, self.suppressed, self.files_scanned)
    }
}

/// Analyzes a set of in-memory sources. Files under `tests/` or `benches/`
/// directories are skipped entirely: tests deliberately exercise broken
/// protocols (type-mismatch panics, deadlock timeouts) and are allowed to.
pub fn analyze_files(files: &[SourceFile]) -> Analysis {
    let units: Vec<FileUnit> = files
        .iter()
        .filter(|f| !is_test_path(&f.rel))
        .map(|f| {
            let lexed = lexer::lex(&f.text);
            let items = parse::parse_items(&lexed.toks, &f.rel);
            FileUnit {
                rel: f.rel.clone(),
                lexed,
                items,
            }
        })
        .collect();

    let const_inputs: Vec<(usize, &[lexer::Tok], &[parse::ConstItem])> = units
        .iter()
        .enumerate()
        .map(|(i, u)| (i, u.lexed.toks.as_slice(), u.items.consts.as_slice()))
        .collect();
    let consts = consts::ConstTable::build(&const_inputs);

    let mut raw = Vec::new();
    raw.extend(protocol::check(&units, &consts));
    raw.extend(spmd::check(&units));
    raw.extend(determinism::check(&units));
    raw.extend(errs::check(&units));
    raw.extend(transport::check(&units));

    let allows: Vec<(String, Vec<lexer::Allow>)> = units
        .iter()
        .map(|u| (u.rel.clone(), u.lexed.allows.clone()))
        .collect();
    let mut s = report::apply_suppressions(raw, &allows);
    report::sort_findings(&mut s.findings);
    Analysis {
        findings: s.findings,
        suppressed: s.suppressed,
        files_scanned: units.len(),
    }
}

/// True for paths the analyzer skips wholesale (integration tests and
/// benches may use ad-hoc protocols).
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.starts_with("benches/")
        || rel.contains("/benches/")
}

/// Analyzes the workspace rooted at `root` (see [`workspace_root`]).
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    for path in rust_sources(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path)?;
        files.push(SourceFile { rel, text });
    }
    Ok(analyze_files(&files))
}

/// Finds the workspace root by walking up from the current directory until
/// a `Cargo.toml` with a `crates/` sibling appears.
///
/// # Panics
///
/// Panics when invoked outside the workspace.
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|e| panic!("cannot read cwd: {e}"));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            panic!("not inside the workspace (no Cargo.toml with crates/ found)");
        }
    }
}

/// All first-party `.rs` files (crates/* plus top-level src/ and tests/),
/// excluding the vendored stand-in crates, analyzer fixtures, and build
/// output.
pub fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut out);
    }
    out.retain(|p| {
        !p.components()
            .any(|c| c.as_os_str() == "vendor" || c.as_os_str() == "fixtures")
    });
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, text: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            text: text.to_string(),
        }
    }

    #[test]
    fn clean_input_produces_no_findings() {
        let a = analyze_files(&[file(
            "crates/x/src/lib.rs",
            "pub mod tags { pub const DATA: u64 = 0x01; }\n\
             fn s(comm: &Comm) { let tag = comm.fresh_tag_block() + tags::DATA; \
             comm.send_counted::<Vec<u64>>(0, tag, Vec::new(), 0); }\n\
             fn r(comm: &Comm) { let tag = comm.fresh_tag_block() + tags::DATA; \
             let v: Vec<u64> = comm.recv(0, tag); let _ = v; }",
        )]);
        assert_eq!(a.findings, Vec::new());
        assert_eq!(a.files_scanned, 1);
    }

    #[test]
    fn tests_dirs_are_skipped() {
        let a = analyze_files(&[file(
            "crates/x/tests/proto.rs",
            "fn s(comm: &Comm) { comm.send(0, 7, 1u64); }",
        )]);
        assert_eq!(a.files_scanned, 0);
        assert_eq!(a.findings, Vec::new());
    }

    #[test]
    fn json_shape_is_stable() {
        let a = analyze_files(&[file("crates/x/src/lib.rs", "fn ok() {}")]);
        let j = a.to_json();
        assert!(j.contains("\"schema\": \"pgp-analyze/v1\""));
        assert!(j.contains("\"files_scanned\": 1"));
    }
}
