//! Findings, the rule catalog, suppression handling, and JSON output.

use crate::lexer::Allow;

/// Rule: send/recv payload types disagree for one tag.
pub const RULE_TYPE_MISMATCH: &str = "protocol-type-mismatch";
/// Rule: a tag is sent but never received (mailbox leak).
pub const RULE_UNRECEIVED_TAG: &str = "protocol-unreceived-tag";
/// Rule: a user-level tag value collides with the collective tag block.
pub const RULE_COLLECTIVE_COLLISION: &str = "protocol-collective-collision";
/// Rule: a collective call is lexically guarded by a rank-dependent branch.
pub const RULE_RANK_GUARDED_COLLECTIVE: &str = "spmd-rank-guarded-collective";
/// Rule: iteration over a std `HashMap`/`HashSet` in a determinism-critical
/// crate.
pub const RULE_HASH_ITER: &str = "det-unordered-hash-iter";
/// Rule: floating-point reduction over an unordered hash iteration.
pub const RULE_FLOAT_REDUCE: &str = "det-unordered-float-reduce";
/// Rule: a worker-pool function in `pgp-lp` iterates a hash container —
/// the cross-thread merge must go by chunk index, not map order.
pub const RULE_CHUNK_MERGE: &str = "det-unordered-chunk-merge";
/// Rule: a `Result<_, CommError>` unwrapped/expected/discarded outside the
/// runner's terminal collection point.
pub const RULE_ERR_SWALLOWED: &str = "err-swallowed-commerror";
/// Rule: a transport-layer internal (mailbox machinery, socket endpoints,
/// the frame codec, raw OS stream types) named outside comm.rs/transport/.
pub const RULE_TRANSPORT_CONFINED: &str = "transport-confined";
/// Rule: an `analyze:allow` marker that suppressed nothing.
pub const RULE_UNUSED_ALLOW: &str = "unused-allow";

/// The full rule catalog: `(id, one-line description)`. Order here is the
/// order rules are documented in `--list-rules` style output.
pub const RULES: &[(&str, &str)] = &[
    (
        RULE_TYPE_MISMATCH,
        "send sites and recv sites for one tag use different payload types (unpack would panic at runtime)",
    ),
    (
        RULE_UNRECEIVED_TAG,
        "a tag has send sites but no recv/drain site anywhere in the workspace (messages pile up in the mailbox)",
    ),
    (
        RULE_COLLECTIVE_COLLISION,
        "a user-level tag value or offset collides with the collective tag block layout",
    ),
    (
        RULE_RANK_GUARDED_COLLECTIVE,
        "a collective operation is called under a rank-dependent condition reachable from an SPMD entry point (deadlock: not all PEs participate)",
    ),
    (
        RULE_HASH_ITER,
        "iteration over std HashMap/HashSet in a determinism-critical crate (RandomState makes order run-dependent)",
    ),
    (
        RULE_FLOAT_REDUCE,
        "floating-point accumulation over an unordered hash iteration (result depends on iteration order)",
    ),
    (
        RULE_CHUNK_MERGE,
        "a worker-pool function in pgp-lp iterates a hash container (Fx or std): per-worker insertion order depends on chunk claiming, so cross-thread merges must go by chunk index",
    ),
    (
        RULE_ERR_SWALLOWED,
        "a Result<_, CommError> is unwrapped, expected, or discarded with `let _ =` outside the runner's terminal collection point (the structured fault the recovery supervisor needs is swallowed)",
    ),
    (
        RULE_TRANSPORT_CONFINED,
        "a transport-layer internal (mailbox machinery, socket endpoints, frame codec, raw OS streams) is named outside comm.rs/transport/ — the backend seam is breached and cross-backend golden equivalence no longer covers the caller",
    ),
    (
        RULE_UNUSED_ALLOW,
        "an `// analyze:allow(...)` marker that did not suppress any finding",
    ),
];

/// Returns true when `rule` is a known rule id.
pub fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|(id, _)| *id == rule)
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Repo-relative path of the file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of this specific instance.
    pub message: String,
}

/// Result of applying suppressions to a raw finding list.
#[derive(Debug, Default)]
pub struct Suppressed {
    /// Findings that survived (including any `unused-allow` findings).
    pub findings: Vec<Finding>,
    /// How many findings were suppressed by `analyze:allow` markers.
    pub suppressed: usize,
}

/// Applies `// analyze:allow(rule-id)` markers: a marker suppresses
/// matching findings on its own line or the line directly below it.
/// Markers that suppress nothing become `unused-allow` findings (which are
/// themselves not suppressible — delete the stale marker instead).
pub fn apply_suppressions(raw: Vec<Finding>, allows: &[(String, Vec<Allow>)]) -> Suppressed {
    let mut used = vec![Vec::new(); allows.len()];
    for (fi, (_, file_allows)) in allows.iter().enumerate() {
        used[fi] = vec![false; file_allows.len()];
    }
    let mut out = Suppressed::default();
    'finding: for f in raw {
        for (fi, (file, file_allows)) in allows.iter().enumerate() {
            if *file != f.file {
                continue;
            }
            for (ai, a) in file_allows.iter().enumerate() {
                let covers_line = a.line == f.line || a.line + 1 == f.line;
                if covers_line && a.rules.iter().any(|r| r == f.rule) {
                    used[fi][ai] = true;
                    out.suppressed += 1;
                    continue 'finding;
                }
            }
        }
        out.findings.push(f);
    }
    for (fi, (file, file_allows)) in allows.iter().enumerate() {
        for (ai, a) in file_allows.iter().enumerate() {
            if used[fi][ai] {
                continue;
            }
            for rule in &a.rules {
                if !known_rule(rule) {
                    out.findings.push(Finding {
                        rule: RULE_UNUSED_ALLOW,
                        file: file.clone(),
                        line: a.line,
                        message: format!("allow names unknown rule `{rule}`"),
                    });
                } else {
                    out.findings.push(Finding {
                        rule: RULE_UNUSED_ALLOW,
                        file: file.clone(),
                        line: a.line,
                        message: format!(
                            "allow for `{rule}` suppressed nothing; delete the stale marker"
                        ),
                    });
                }
            }
        }
    }
    sort_findings(&mut out.findings);
    out
}

/// Sorts findings by `(file, line, rule, message)` and drops exact
/// duplicates, so output is deterministic regardless of rule order.
pub fn sort_findings(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    findings.dedup();
}

/// Renders the analysis result as stable machine-readable JSON
/// (`pgp-analyze/v1` schema).
pub fn to_json(findings: &[Finding], suppressed: usize, files_scanned: usize) -> String {
    let mut s = String::from("{\n  \"schema\": \"pgp-analyze/v1\",\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(f.rule),
            escape(&f.file),
            f.line,
            escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!(
        "],\n  \"suppressed\": {suppressed},\n  \"files_scanned\": {files_scanned}\n}}\n"
    ));
    s
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    fn allow(line: u32, rule: &str) -> Allow {
        Allow {
            line,
            rules: vec![rule.to_string()],
        }
    }

    #[test]
    fn allow_suppresses_same_line_and_line_below() {
        let allows = vec![(
            "a.rs".to_string(),
            vec![allow(10, RULE_HASH_ITER), allow(20, RULE_HASH_ITER)],
        )];
        let raw = vec![
            finding(RULE_HASH_ITER, "a.rs", 10), // same line
            finding(RULE_HASH_ITER, "a.rs", 21), // line below marker
            finding(RULE_HASH_ITER, "a.rs", 30), // uncovered
        ];
        let s = apply_suppressions(raw, &allows);
        assert_eq!(s.suppressed, 2);
        assert_eq!(s.findings.len(), 1);
        assert_eq!(s.findings[0].line, 30);
    }

    #[test]
    fn wrong_rule_does_not_suppress() {
        let allows = vec![("a.rs".to_string(), vec![allow(10, RULE_FLOAT_REDUCE)])];
        let raw = vec![finding(RULE_HASH_ITER, "a.rs", 10)];
        let s = apply_suppressions(raw, &allows);
        assert_eq!(s.suppressed, 0);
        // The original finding survives AND the allow is reported unused.
        assert_eq!(s.findings.len(), 2);
        assert!(s.findings.iter().any(|f| f.rule == RULE_UNUSED_ALLOW));
    }

    #[test]
    fn unused_and_unknown_allows_are_flagged() {
        let allows = vec![(
            "a.rs".to_string(),
            vec![allow(5, RULE_HASH_ITER), allow(7, "not-a-rule")],
        )];
        let s = apply_suppressions(Vec::new(), &allows);
        assert_eq!(s.findings.len(), 2);
        assert!(s.findings.iter().all(|f| f.rule == RULE_UNUSED_ALLOW));
        assert!(s.findings[1].message.contains("unknown rule"));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let findings = vec![Finding {
            rule: RULE_TYPE_MISMATCH,
            file: "crates/a/src/lib.rs".to_string(),
            line: 3,
            message: "types \"A\" vs \"B\"".to_string(),
        }];
        let j = to_json(&findings, 2, 40);
        assert!(j.contains("\"schema\": \"pgp-analyze/v1\""));
        assert!(j.contains("\\\"A\\\""));
        assert!(j.contains("\"suppressed\": 2"));
        assert!(j.contains("\"files_scanned\": 40"));
    }

    #[test]
    fn empty_findings_render_empty_array() {
        let j = to_json(&[], 0, 1);
        assert!(j.contains("\"findings\": []"));
    }
}
