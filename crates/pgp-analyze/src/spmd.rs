//! Rule family (b): SPMD conformance.
//!
//! Collectives are cooperative: every PE in the group must call them at
//! the same point, or the ones that do call park forever waiting for the
//! ones that don't. The classic way to break this is a rank-dependent
//! branch (`if comm.rank() == 0 { ... barrier(comm) ... }`), which is
//! purely lexical — exactly what a static walk can catch.
//!
//! The rule walks the name-based call graph from the SPMD entry points
//! (`partition_parallel*`, `parhip_distributed*`), taints identifiers
//! derived from `rank`, and flags any collective-set call that sits inside
//! the branches of a rank-tainted `if`/`else`.
//!
//! `if let`-conditions are never rank-dependent and are skipped. The
//! point-to-point internals of the collectives themselves (`gather`'s
//! `if rank == root { recv } else { send }`) are naturally exempt: `send`
//! and `recv` are not in the collective set.

use crate::lexer::{Tok, TokKind};
use crate::parse::skip_group;
use crate::report::{Finding, RULE_RANK_GUARDED_COLLECTIVE};
use crate::FileUnit;
use std::collections::{HashMap, HashSet};

/// Function-name prefixes that start an SPMD region.
const ENTRY_PREFIXES: &[&str] = &["partition_parallel", "parhip_distributed"];

/// Group-cooperative operations: calling these on a strict subset of PEs
/// deadlocks the group. Includes `fresh_tag_block` (the tag counter is
/// advanced group-wide) and the exchange phase boundaries.
const COLLECTIVES: &[&str] = &[
    "barrier",
    "try_barrier",
    "broadcast",
    "reduce",
    "allreduce",
    "allreduce_sum",
    "allreduce_sum_vec",
    "allreduce_sum_vec_i64",
    "allreduce_min_with_rank",
    "try_allreduce_sum",
    "exscan_sum",
    "gather",
    "allgather",
    "allgatherv",
    "try_allgather",
    "try_allgatherv",
    "alltoallv",
    "try_alltoallv",
    "fresh_tag_block",
    "flush_sync",
    "flush_sync_with",
    "flush_overlap",
    "flush_overlap_with",
    "finish",
    "finish_with",
];

/// Runs the SPMD divergence rule.
pub fn check(units: &[FileUnit]) -> Vec<Finding> {
    // Name-based call graph: fn name -> called fn names.
    let mut edges: HashMap<&str, HashSet<&str>> = HashMap::new();
    for unit in units {
        for f in &unit.items.fns {
            let callees = edges.entry(f.name.as_str()).or_default();
            let toks = &unit.lexed.toks;
            for i in f.body.0..f.body.1 {
                if toks[i].kind == TokKind::Ident
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                {
                    callees.insert(toks[i].text.as_str());
                }
            }
        }
    }
    // Reachability from the entry points.
    let mut reach: HashSet<&str> = HashSet::new();
    let mut queue: Vec<&str> = edges
        .keys()
        .filter(|n| ENTRY_PREFIXES.iter().any(|p| n.starts_with(p)))
        .copied()
        .collect();
    while let Some(n) = queue.pop() {
        if !reach.insert(n) {
            continue;
        }
        if let Some(cs) = edges.get(n) {
            for c in cs {
                if edges.contains_key(c) && !reach.contains(c) {
                    queue.push(c);
                }
            }
        }
    }

    let mut findings = Vec::new();
    for unit in units {
        for f in &unit.items.fns {
            if !reach.contains(f.name.as_str()) {
                continue;
            }
            check_fn(unit, f.body, &mut findings);
        }
    }
    findings
}

/// Checks one reachable function body.
fn check_fn(unit: &FileUnit, body: (usize, usize), findings: &mut Vec<Finding>) {
    let toks = &unit.lexed.toks;
    let (start, end) = body;

    // Pass 1: rank-tainted locals. `rank` itself (parameter, method call,
    // field) taints, and taint propagates through `let` initializers.
    let mut tainted: HashSet<String> = HashSet::new();
    let mut i = start;
    while i < end {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            while j < end && toks[j].is_ident("mut") {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                let stmt = stmt_extent(toks, j + 1, end);
                let init_tainted = toks[j + 1..stmt].iter().any(|t| {
                    t.is_ident("rank") || (t.kind == TokKind::Ident && tainted.contains(&t.text))
                });
                if init_tainted {
                    tainted.insert(name.text.clone());
                }
            }
        }
        i += 1;
    }

    // Pass 2: rank-guarded `if` regions (condition + all branch blocks of
    // the `else`/`else if` chain).
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut i = start;
    while i < end {
        if toks[i].is_ident("if") && !toks.get(i + 1).is_some_and(|t| t.is_ident("let")) {
            // Condition: up to the first `{` at delimiter depth 0.
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < end {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if t.is_punct('{') && depth == 0 {
                    break;
                }
                j += 1;
            }
            if j >= end {
                break;
            }
            let cond_tainted = toks[i + 1..j].iter().any(|t| {
                t.is_ident("rank") || (t.kind == TokKind::Ident && tainted.contains(&t.text))
            });
            if cond_tainted {
                // Extent: this block plus the whole else/else-if chain.
                let mut ext = skip_group(toks, j, '{', '}');
                while toks.get(ext).is_some_and(|t| t.is_ident("else")) {
                    if toks.get(ext + 1).is_some_and(|t| t.is_ident("if")) {
                        // `else if cond {`: find that block.
                        let mut d = 0i32;
                        let mut k = ext + 2;
                        while k < end {
                            let t = &toks[k];
                            if t.is_punct('(') || t.is_punct('[') {
                                d += 1;
                            } else if t.is_punct(')') || t.is_punct(']') {
                                d -= 1;
                            } else if t.is_punct('{') && d == 0 {
                                break;
                            }
                            k += 1;
                        }
                        if k >= end {
                            break;
                        }
                        ext = skip_group(toks, k, '{', '}');
                    } else if toks.get(ext + 1).is_some_and(|t| t.is_punct('{')) {
                        ext = skip_group(toks, ext + 1, '{', '}');
                        break;
                    } else {
                        break;
                    }
                }
                regions.push((j, ext));
            }
        }
        i += 1;
    }

    // Pass 3: collective calls inside a tainted region.
    for &(lo, hi) in &regions {
        for k in lo..hi.min(end) {
            let t = &toks[k];
            if t.kind == TokKind::Ident
                && COLLECTIVES.contains(&t.text.as_str())
                && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
            {
                findings.push(Finding {
                    rule: RULE_RANK_GUARDED_COLLECTIVE,
                    file: unit.rel.clone(),
                    line: t.line,
                    message: format!(
                        "collective `{}` is called under a rank-dependent condition; \
                         PEs that skip the branch never join and the group deadlocks",
                        t.text
                    ),
                });
            }
        }
    }
}

/// Statement extent: index of the terminating `;` (or closing brace) at
/// delimiter depth 0.
fn stmt_extent(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return i;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return i;
        }
        i += 1;
    }
    end
}
