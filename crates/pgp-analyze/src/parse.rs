//! Item-level parse over the token stream.
//!
//! Extracts what the rules need: function items (name, generic parameters,
//! parameter list, body token range), `const` items with their initializer
//! token range (so the evaluator can resolve tag constants), `use`
//! declarations, and module structure (to know which constants live in a
//! `tags` module and which items are `#[cfg(test)]`-gated).
//!
//! Brace matching happens in *token space* — string literals and char
//! literals are single tokens by the time we see them, so a `{` inside a
//! string can never unbalance an extent, the failure mode line-based
//! scanners have to hack around.

use crate::lexer::{Tok, TokKind};

/// One function parameter (self receivers are recorded via
/// [`FnItem::has_self`], not here).
#[derive(Clone, Debug)]
pub struct Param {
    /// Parameter name; empty for destructuring patterns.
    pub name: String,
    /// The parameter's type, as written (token texts joined).
    pub ty: String,
}

/// One `fn` item with a body.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// Generic *type* parameter names (lifetimes excluded).
    pub generics: Vec<String>,
    /// Parameters, excluding any self receiver.
    pub params: Vec<Param>,
    /// Whether the first parameter is a self receiver.
    pub has_self: bool,
    /// Token index range of the body, *inside* the braces: `[start, end)`.
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// One `const` (or `static`) item.
#[derive(Clone, Debug)]
pub struct ConstItem {
    /// The constant's name.
    pub name: String,
    /// Token index range of the initializer expression: `[start, end)`.
    pub expr: (usize, usize),
    /// 1-based line.
    pub line: u32,
    /// True when declared inside a module named `tags` (or a file
    /// `tags.rs`): these are the tag-protocol ground truth.
    pub in_tags_module: bool,
}

/// One `use` declaration, flattened to text.
#[derive(Clone, Debug)]
pub struct UseItem {
    /// The joined path text (`std::collections::{HashMap,HashSet}`).
    pub path: String,
    /// 1-based line.
    pub line: u32,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct Items {
    /// Functions with bodies (test-gated ones excluded).
    pub fns: Vec<FnItem>,
    /// Constants (test-gated ones excluded).
    pub consts: Vec<ConstItem>,
    /// Use declarations.
    pub uses: Vec<UseItem>,
}

/// Parses the items of a lexed file. `rel` is the repo-relative path (used
/// to treat `tags.rs` files as tags modules).
pub fn parse_items(toks: &[Tok], rel: &str) -> Items {
    let mut items = Items::default();
    let file_is_tags = rel.ends_with("/tags.rs") || rel == "tags.rs";
    scan_items(toks, 0, toks.len(), file_is_tags, &mut items);
    items
}

/// Advances past one balanced delimiter group starting at `i` (which must
/// point at the opening delimiter). Returns the index just past the close.
pub fn skip_group(toks: &[Tok], i: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Finds the body `{ ... }` starting at or after `i`; returns the token
/// range inside the braces and the index past the closing brace, or `None`
/// if a `;` (bodyless item) arrives first at angle/paren depth 0.
fn find_body(toks: &[Tok], mut i: usize) -> Option<((usize, usize), usize)> {
    let mut angle = 0i32;
    let mut paren = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct(';') && angle <= 0 && paren <= 0 {
            return None;
        } else if t.is_punct('{') && paren <= 0 {
            let end = skip_group(toks, i, '{', '}');
            return Some(((i + 1, end.saturating_sub(1)), end));
        } else if t.is_punct('-') && i + 1 < toks.len() && toks[i + 1].is_punct('>') {
            // `->`: the `>` is not closing an angle bracket.
            i += 2;
            continue;
        }
        i += 1;
    }
    None
}

/// The recursive item scanner. `[i, end)` is the token window; `in_tags`
/// marks whether the surrounding module is a tags module.
fn scan_items(toks: &[Tok], mut i: usize, end: usize, in_tags: bool, out: &mut Items) {
    while i < end {
        // Attributes: consume, remembering whether this item is test-gated.
        let mut test_gated = false;
        while i < end && toks[i].is_punct('#') {
            let mut j = i + 1;
            if j < end && toks[j].is_punct('!') {
                j += 1;
            }
            if j < end && toks[j].is_punct('[') {
                let close = skip_group(toks, j, '[', ']');
                let attr = &toks[j..close];
                let is_cfg_test = attr
                    .windows(3)
                    .any(|w| w[0].is_ident("cfg") && w[1].is_punct('(') && w[2].is_ident("test"));
                let is_test_attr =
                    attr.len() == 3 && attr[1].is_ident("test") && attr[0].is_punct('[');
                if is_cfg_test || is_test_attr {
                    test_gated = true;
                }
                i = close;
            } else {
                i += 1;
            }
        }
        if i >= end {
            break;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "pub" => {
                // Visibility: skip `pub` and an optional `(crate)` group.
                i += 1;
                if i < end && toks[i].is_punct('(') {
                    i = skip_group(toks, i, '(', ')');
                }
                if test_gated {
                    // Re-run the item head with the attr flag: simplest is
                    // to skip the whole item below; fall through by backing
                    // the flag into a skip of the next item.
                    i = skip_item(toks, i, end);
                }
            }
            "fn" => {
                if test_gated {
                    i = skip_item(toks, i, end);
                    continue;
                }
                let (item, next) = parse_fn(toks, i, end);
                if let Some(f) = item {
                    out.fns.push(f);
                }
                i = next;
            }
            "unsafe" | "async" | "extern" => {
                // Prefix keywords before `fn`; just advance (a following
                // string ABI like "C" is a Str token and gets skipped too).
                i += 1;
            }
            "const" | "static" => {
                // `const fn` is a function; `const NAME: Ty = expr;` is a
                // constant.
                if i + 1 < end && toks[i + 1].is_ident("fn") {
                    if test_gated {
                        i = skip_item(toks, i + 1, end);
                        continue;
                    }
                    let (item, next) = parse_fn(toks, i + 1, end);
                    if let Some(f) = item {
                        out.fns.push(f);
                    }
                    i = next;
                    continue;
                }
                if test_gated {
                    i = skip_item(toks, i, end);
                    continue;
                }
                let (item, next) = parse_const(toks, i, end, in_tags);
                if let Some(c) = item {
                    out.consts.push(c);
                }
                i = next;
            }
            "use" => {
                let line = toks[i].line;
                let mut j = i + 1;
                let mut path = String::new();
                while j < end && !toks[j].is_punct(';') {
                    path.push_str(&toks[j].text);
                    j += 1;
                }
                out.uses.push(UseItem { path, line });
                i = j + 1;
            }
            "mod" => {
                let name = toks
                    .get(i + 1)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                match find_body(toks, i + 1) {
                    Some(((bs, be), next)) => {
                        if !test_gated {
                            scan_items(toks, bs, be, in_tags || name == "tags", out);
                        }
                        i = next;
                    }
                    None => {
                        // `mod name;` — skip past the semicolon.
                        while i < end && !toks[i].is_punct(';') {
                            i += 1;
                        }
                        i += 1;
                    }
                }
            }
            "impl" | "trait" => match find_body(toks, i + 1) {
                Some(((bs, be), next)) => {
                    if !test_gated {
                        scan_items(toks, bs, be, in_tags, out);
                    }
                    i = next;
                }
                None => i += 1,
            },
            "struct" | "enum" | "union" | "type" => {
                i = skip_item(toks, i, end);
            }
            "macro_rules" => {
                // `macro_rules! name { ... }`
                let mut j = i + 1;
                while j < end && !toks[j].is_punct('{') {
                    j += 1;
                }
                i = if j < end {
                    skip_group(toks, j, '{', '}')
                } else {
                    end
                };
            }
            _ => i += 1,
        }
    }
}

/// Skips one item starting at `i` (keyword position): to its balanced body
/// or terminating semicolon. Used for test-gated items.
fn skip_item(toks: &[Tok], i: usize, end: usize) -> usize {
    match find_body(toks, i) {
        Some((_, next)) => next,
        None => {
            let mut j = i;
            while j < end && !toks[j].is_punct(';') {
                j += 1;
            }
            (j + 1).min(end)
        }
    }
}

/// Parses `fn name<G>(params) -> Ret { body }` starting at the `fn`
/// keyword. Returns the item (if it has a body) and the index to resume at.
fn parse_fn(toks: &[Tok], i: usize, end: usize) -> (Option<FnItem>, usize) {
    let line = toks[i].line;
    let mut j = i + 1;
    let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
        return (None, i + 1);
    };
    let name = name_tok.text.clone();
    j += 1;

    // Generic parameters.
    let mut generics = Vec::new();
    if j < end && toks[j].is_punct('<') {
        let close = skip_angle_group(toks, j);
        let mut depth = 0i32;
        let mut expect_param = true;
        let mut k = j;
        while k < close {
            let t = &toks[k];
            if t.is_punct('<') {
                depth += 1;
                if depth == 1 {
                    expect_param = true;
                }
            } else if t.is_punct('>') {
                depth -= 1;
            } else if depth == 1 {
                if t.is_punct(',') {
                    expect_param = true;
                } else if expect_param && t.kind == TokKind::Ident {
                    if t.text == "const" {
                        // `const N: usize`: the next ident is the parameter.
                        if let Some(n) = toks.get(k + 1).filter(|t| t.kind == TokKind::Ident) {
                            generics.push(n.text.clone());
                            k += 1;
                        }
                    } else {
                        generics.push(t.text.clone());
                    }
                    expect_param = false;
                } else if t.kind == TokKind::Lifetime {
                    // Lifetimes are not type parameters; keep waiting for
                    // an ident in this slot.
                } else {
                    expect_param = false;
                }
            }
            k += 1;
        }
        j = close;
    }

    // Parameters.
    let mut params = Vec::new();
    let mut has_self = false;
    if j < end && toks[j].is_punct('(') {
        let close = skip_group(toks, j, '(', ')');
        let inner = &toks[j + 1..close.saturating_sub(1)];
        for piece in split_top_level(inner, ',') {
            if piece.is_empty() {
                continue;
            }
            let texts: Vec<&str> = piece.iter().map(|t| t.text.as_str()).collect();
            if texts.contains(&"self") && !texts.contains(&":") {
                has_self = true;
                continue;
            }
            if let [only] = texts.as_slice() {
                if *only == "self" {
                    has_self = true;
                    continue;
                }
            }
            // `mut name: Ty` / `name: Ty` / pattern params.
            let colon = piece.iter().position(|t| t.is_punct(':'));
            let Some(c) = colon else { continue };
            // Reject `::` at the found position.
            if piece.get(c + 1).is_some_and(|t| t.is_punct(':')) {
                continue;
            }
            let name_tok = piece[..c]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref");
            let pname = if piece[..c]
                .iter()
                .any(|t| t.is_punct('(') || t.is_punct('['))
            {
                String::new() // destructuring pattern
            } else {
                name_tok.map(|t| t.text.clone()).unwrap_or_default()
            };
            let ty: String = join_tokens(&piece[c + 1..]);
            if pname == "self" {
                has_self = true;
            } else {
                params.push(Param { name: pname, ty });
            }
        }
        j = close;
    }

    match find_body(toks, j) {
        Some((body, next)) => (
            Some(FnItem {
                name,
                generics,
                params,
                has_self,
                body,
                line,
            }),
            next,
        ),
        None => {
            // Trait method declaration without a body.
            let mut k = j;
            while k < end && !toks[k].is_punct(';') {
                k += 1;
            }
            (None, (k + 1).min(end))
        }
    }
}

/// Skips a `< ... >` group starting at `i`, tolerating nested angles and
/// shifts inside const-generic expressions.
pub fn skip_angle_group(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            // Delimited groups hide their angles.
            let (open, close) = match t.text.as_bytes()[0] {
                b'(' => ('(', ')'),
                b'[' => ('[', ']'),
                _ => ('{', '}'),
            };
            j = skip_group(toks, j, open, close);
            continue;
        }
        j += 1;
    }
    toks.len()
}

/// Parses `const NAME: Ty = expr;` starting at the keyword.
fn parse_const(toks: &[Tok], i: usize, end: usize, in_tags: bool) -> (Option<ConstItem>, usize) {
    let line = toks[i].line;
    let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
        return (None, i + 1);
    };
    let name = name_tok.text.clone();
    // Find `=` then capture to the `;` at delimiter depth 0.
    let mut j = i + 2;
    let mut depth = 0i32;
    let mut eq = None;
    while j < end {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct('=') && depth == 0 {
            // Exclude `==`, `=>`, `<=`... by checking neighbors.
            let prev_cmp = j > 0
                && (toks[j - 1].is_punct('=')
                    || toks[j - 1].is_punct('<')
                    || toks[j - 1].is_punct('>')
                    || toks[j - 1].is_punct('!'));
            let next_cmp = toks.get(j + 1).is_some_and(|t| t.is_punct('='));
            if !prev_cmp && !next_cmp {
                eq = Some(j);
                break;
            }
        } else if t.is_punct(';') && depth == 0 {
            // `const NAME: Ty;` in traits.
            return (None, j + 1);
        }
        j += 1;
    }
    let Some(eq) = eq else {
        return (None, (j + 1).min(end));
    };
    let mut k = eq + 1;
    let mut depth = 0i32;
    while k < end {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            break;
        }
        k += 1;
    }
    (
        Some(ConstItem {
            name,
            expr: (eq + 1, k),
            line,
            in_tags_module: in_tags,
        }),
        (k + 1).min(end),
    )
}

/// Splits the absolute token range `[lo, hi)` at top-level occurrences of
/// punct `sep`, returning absolute `(start, end)` ranges. Empty pieces are
/// dropped (e.g. a trailing comma).
pub fn split_ranges(toks: &[Tok], lo: usize, hi: usize, sep: char) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = lo;
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct('<') {
            if i > lo && (toks[i - 1].kind == TokKind::Ident || toks[i - 1].is_punct(':')) {
                angle += 1;
            }
        } else if t.is_punct('>') && angle > 0 {
            if !(i > lo && toks[i - 1].is_punct('-')) {
                angle -= 1;
            }
        } else if t.is_punct(sep) && depth == 0 && angle == 0 {
            if start < i {
                out.push((start, i));
            }
            start = i + 1;
        }
        i += 1;
    }
    if start < hi {
        out.push((start, hi));
    }
    out
}

/// Splits a token slice at top-level occurrences of punct `sep`
/// (delimiters and angle brackets shield their contents).
pub fn split_top_level(toks: &[Tok], sep: char) -> Vec<&[Tok]> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct('<') {
            // Heuristic: `<` after an ident or `::` opens a type list.
            if i > 0 && (toks[i - 1].kind == TokKind::Ident || toks[i - 1].is_punct(':')) {
                angle += 1;
            }
        } else if t.is_punct('>') && angle > 0 {
            // `->` does not close a type list.
            if !(i > 0 && toks[i - 1].is_punct('-')) {
                angle -= 1;
            }
        } else if t.is_punct(sep) && depth == 0 && angle == 0 {
            out.push(&toks[start..i]);
            start = i + 1;
        }
        i += 1;
    }
    out.push(&toks[start..]);
    out
}

/// Joins token texts into a canonical, whitespace-free string.
pub fn join_tokens(toks: &[Tok]) -> String {
    let mut s = String::new();
    for t in toks {
        match t.kind {
            TokKind::Str => {
                s.push('"');
                s.push_str(&t.text);
                s.push('"');
            }
            TokKind::Lifetime => {
                s.push('\'');
                s.push_str(&t.text);
            }
            _ => s.push_str(&t.text),
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Items {
        parse_items(&lex(src).toks, "crates/x/src/lib.rs")
    }

    #[test]
    fn fn_extraction_with_generics_and_params() {
        let it = items("pub fn send_counted<T: Send + 'static>(&self, dst: usize, tag: Tag, msg: T, elements: u64) { body(); }");
        assert_eq!(it.fns.len(), 1);
        let f = &it.fns[0];
        assert_eq!(f.name, "send_counted");
        assert_eq!(f.generics, vec!["T"]);
        assert!(f.has_self);
        let names: Vec<_> = f.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["dst", "tag", "msg", "elements"]);
        assert_eq!(f.params[1].ty, "Tag");
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let it = items(
            "fn live() { a(); }\n#[cfg(test)]\nmod tests { fn dead() { b(); } }\n#[test]\nfn also_dead() {}\nfn live2() {}",
        );
        let names: Vec<_> = it.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["live", "live2"]);
    }

    #[test]
    fn consts_in_tags_modules_are_marked() {
        let it = items("pub mod tags { pub const RUMOR: u64 = 0x52; }\nconst OTHER: u64 = 7;");
        assert_eq!(it.consts.len(), 2);
        let rumor = it.consts.iter().find(|c| c.name == "RUMOR").expect("rumor");
        assert!(rumor.in_tags_module);
        let other = it.consts.iter().find(|c| c.name == "OTHER").expect("other");
        assert!(!other.in_tags_module);
    }

    #[test]
    fn tags_rs_files_mark_their_consts() {
        let it = parse_items(
            &lex("pub const GHOST_LABELS: Tag = 0x01;").toks,
            "crates/pgp-dmp/src/tags.rs",
        );
        assert!(it.consts[0].in_tags_module);
    }

    #[test]
    fn impl_methods_are_found() {
        let it = items("impl Foo { fn a(&self) { x(); } pub fn b(v: u32) -> u32 { v } }");
        let names: Vec<_> = it.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn braces_in_strings_do_not_unbalance_bodies() {
        let it = items(r#"fn a() { let s = "unbalanced { brace"; x(); } fn b() {}"#);
        assert_eq!(it.fns.len(), 2);
    }

    #[test]
    fn return_types_with_angles_parse() {
        let it = items("fn f(v: Vec<(u32, u32)>) -> Option<Vec<u64>> { g() }");
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].params[0].ty, "Vec<(u32,u32)>");
    }

    #[test]
    fn use_paths_are_flattened() {
        let it = items("use std::collections::{HashMap, HashSet};\nuse crate::tags;");
        assert_eq!(it.uses.len(), 2);
        assert!(it.uses[0]
            .path
            .contains("std::collections::{HashMap,HashSet}"));
    }
}
