//! Rule family (a): message-protocol conformance.
//!
//! Builds a send/recv site table keyed by *tag* and checks it:
//!
//! - `protocol-type-mismatch` — the set of concrete payload types used at a
//!   tag's send sites differs from its recv sites (runtime `unpack` panic).
//! - `protocol-unreceived-tag` — a tag with send sites but no recv site
//!   anywhere (messages accumulate in the mailbox forever).
//! - `protocol-collective-collision` — a user tag value or tags-module
//!   offset that collides with the collective tag block layout.
//!
//! Tag keys are resolved through several layers, in order: a tags-module
//! constant named in the expression; `self.tag` (resolved through struct
//! literal `tag:` initializers in the same file); a local `let` binding
//! whose initializer resolved; a parameter of the enclosing function
//! (resolved depth-1 through its call sites); a constant-evaluable literal.
//! Anything else is skipped — unresolvable tags are out of scope, not
//! errors.

use crate::consts::{eval, ConstTable};
use crate::lexer::{Tok, TokKind};
use crate::parse::{join_tokens, skip_angle_group, skip_group, split_ranges, FnItem};
use crate::report::{Finding, RULE_COLLECTIVE_COLLISION, RULE_TYPE_MISMATCH, RULE_UNRECEIVED_TAG};
use crate::FileUnit;
use std::collections::{BTreeMap, HashMap};

/// Default collective block base when the tags module is absent
/// (fixtures): matches `pgp_dmp::tags::COLLECTIVE_TAG_BASE`.
const DEFAULT_BASE: u64 = 1 << 48;
/// Default block span, `pgp_dmp::tags::BLOCK_SPAN`.
const DEFAULT_SPAN: u64 = 1 << 16;
/// User tag offsets must stay below the op-code range (bits 8..16).
const USER_OFFSET_LIMIT: u64 = 0x100;

/// Mailbox methods that are protocol sites:
/// `(name, is_send, tag_arg_index, payload_arg_index)`.
/// A payload index of `usize::MAX` means the payload type can only come
/// from a turbofish or `let` annotation (receives).
const METHODS: &[(&str, bool, usize, usize)] = &[
    ("send", true, 1, 2),
    ("send_counted", true, 1, 2),
    ("recv", false, 1, usize::MAX),
    ("try_recv", false, 1, usize::MAX),
    ("recv_deadline", false, 1, usize::MAX),
    ("recv_any", false, 0, usize::MAX),
    ("drain", false, 0, usize::MAX),
];

/// A fully-resolved tag identity.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum TagKey {
    /// Named tags-module constant (by name).
    Named(String),
    /// Constant-evaluable literal tag value.
    Lit(u64),
}

impl TagKey {
    fn display(&self) -> String {
        match self {
            TagKey::Named(n) => format!("`{n}`"),
            TagKey::Lit(v) => format!("literal tag {v}"),
        }
    }
}

/// Partially-resolved tag expression.
#[derive(Clone, Debug)]
enum KeyRes {
    Known(TagKey),
    /// `self.tag` — resolved via the file's struct-literal tag initializers.
    SelfTag,
    /// Names the enclosing function's parameter at this non-self index;
    /// resolved through call sites afterwards.
    Param(usize),
    Skip,
}

/// One protocol call site.
struct Site {
    unit: usize,
    line: u32,
    is_send: bool,
    key: KeyRes,
    /// Global function index (into `ctxs`) of the enclosing fn.
    fn_id: usize,
    /// Normalized concrete payload type; `None` = unknown or generic.
    ty: Option<String>,
}

/// One non-protocol call expression, used for depth-1 param propagation.
struct Call {
    unit: usize,
    callee: String,
    /// Absolute token ranges of the arguments.
    args: Vec<(usize, usize)>,
    /// Global fn index of the *calling* function (for its bindings).
    caller: usize,
}

/// Per-function resolution context retained for propagation.
struct FnCtx {
    name: String,
    /// Names of non-self parameters, in order.
    param_names: Vec<String>,
    /// Local `let` bindings that resolved to a tag key.
    bindings: HashMap<String, KeyRes>,
}

/// Runs the protocol rule family.
pub fn check(units: &[FileUnit], consts: &ConstTable) -> Vec<Finding> {
    let base = consts
        .get("COLLECTIVE_TAG_BASE")
        .map(|c| c.value)
        .unwrap_or(DEFAULT_BASE);
    let span = consts
        .get("BLOCK_SPAN")
        .map(|c| c.value)
        .unwrap_or(DEFAULT_SPAN);

    let mut sites: Vec<Site> = Vec::new();
    let mut calls: Vec<Call> = Vec::new();
    let mut ctxs: Vec<FnCtx> = Vec::new();
    // Tag keys assigned to struct `tag:` fields, per file.
    let mut self_keys: Vec<Vec<TagKey>> = vec![Vec::new(); units.len()];

    for (ui, unit) in units.iter().enumerate() {
        for f in &unit.items.fns {
            let fn_id = ctxs.len();
            ctxs.push(FnCtx {
                name: f.name.clone(),
                param_names: f.params.iter().map(|p| p.name.clone()).collect(),
                bindings: HashMap::new(),
            });
            scan_body(
                unit,
                ui,
                f,
                fn_id,
                consts,
                &mut ctxs,
                &mut sites,
                &mut calls,
                &mut self_keys[ui],
            );
        }
    }

    // Depth-1 propagation: resolve Param sites through call sites, SelfTag
    // sites through the file's struct-literal keys.
    let mut resolved: Vec<(usize, u32, bool, TagKey, Option<String>)> = Vec::new();
    for s in &sites {
        match &s.key {
            KeyRes::Known(k) => resolved.push((s.unit, s.line, s.is_send, k.clone(), s.ty.clone())),
            KeyRes::SelfTag => {
                for k in &self_keys[s.unit] {
                    resolved.push((s.unit, s.line, s.is_send, k.clone(), s.ty.clone()));
                }
            }
            KeyRes::Param(pidx) => {
                let fname = &ctxs[s.fn_id].name;
                let mut keys: Vec<TagKey> = Vec::new();
                for c in calls.iter().filter(|c| &c.callee == fname) {
                    let Some(&(a0, a1)) = c.args.get(*pidx) else {
                        continue;
                    };
                    let caller = &ctxs[c.caller];
                    let arg = &units[c.unit].lexed.toks[a0..a1];
                    match resolve_key(arg, caller, consts) {
                        KeyRes::Known(k) if !keys.contains(&k) => keys.push(k),
                        KeyRes::SelfTag => {
                            for k in &self_keys[c.unit] {
                                if !keys.contains(k) {
                                    keys.push(k.clone());
                                }
                            }
                        }
                        _ => {}
                    }
                }
                for k in keys {
                    resolved.push((s.unit, s.line, s.is_send, k, s.ty.clone()));
                }
            }
            KeyRes::Skip => {}
        }
    }

    // Build the tag table. One recorded site: (unit index, line, optional
    // normalized payload type).
    type SiteRec = (usize, u32, Option<String>);
    #[derive(Default)]
    struct Entry {
        sends: Vec<SiteRec>,
        recvs: Vec<SiteRec>,
    }
    let mut table: BTreeMap<TagKey, Entry> = BTreeMap::new();
    for (unit, line, is_send, key, ty) in resolved {
        let e = table.entry(key).or_default();
        if is_send {
            e.sends.push((unit, line, ty));
        } else {
            e.recvs.push((unit, line, ty));
        }
    }

    let mut findings = Vec::new();
    for (key, e) in &table {
        // (b) senders with no receiver: mailbox leak.
        if e.recvs.is_empty() {
            let &(unit, line, _) = e
                .sends
                .first()
                .expect("table entries have at least one site");
            findings.push(Finding {
                rule: RULE_UNRECEIVED_TAG,
                file: units[unit].rel.clone(),
                line,
                message: format!(
                    "{} is sent here but no recv/drain site exists for it anywhere; \
                     messages pile up in the mailbox",
                    key.display()
                ),
            });
        }
        // (a) concrete payload type disagreement across sites.
        let mut types: Vec<(&str, &SiteRec)> = Vec::new();
        for s in &e.sends {
            if let Some(t) = &s.2 {
                types.push((t, s));
            }
        }
        for r in &e.recvs {
            if let Some(t) = &r.2 {
                types.push((t, r));
            }
        }
        let mut distinct: Vec<&str> = types.iter().map(|(t, _)| *t).collect();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() >= 2 {
            // Anchor the finding at the first recv site (that is where the
            // unpack panic would fire), falling back to the first site.
            let &(unit, line, _) = e.recvs.first().or(e.sends.first()).expect("non-empty");
            findings.push(Finding {
                rule: RULE_TYPE_MISMATCH,
                file: units[unit].rel.clone(),
                line,
                message: format!(
                    "{} is used with {} different payload types: {}; \
                     unpack panics at runtime when they meet",
                    key.display(),
                    distinct.len(),
                    distinct.join(" vs ")
                ),
            });
        }
        // (c) literal tags inside the collective block.
        if let TagKey::Lit(v) = key {
            if *v >= base {
                for (unit, line, _) in e.sends.iter().chain(e.recvs.iter()) {
                    findings.push(Finding {
                        rule: RULE_COLLECTIVE_COLLISION,
                        file: units[*unit].rel.clone(),
                        line: *line,
                        message: format!(
                            "literal tag {v} lies inside the collective tag block \
                             (>= COLLECTIVE_TAG_BASE); use fresh_tag_block() + offset"
                        ),
                    });
                }
            }
        }
    }

    // (c) audit the tags-module constants themselves.
    findings.extend(audit_tag_consts(units, consts, base, span));
    findings
}

/// Checks tags-module constants against the block layout: op codes live in
/// bits 8..16 with a zero low byte, user offsets below 0x100, no duplicate
/// values, nothing user-defined at or above the collective base.
fn audit_tag_consts(units: &[FileUnit], consts: &ConstTable, base: u64, span: u64) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut offsets: Vec<(u64, &str, usize, u32)> = Vec::new();
    for (name, c) in consts.iter() {
        if !c.in_tags_module {
            continue;
        }
        let at = |msg: String| Finding {
            rule: RULE_COLLECTIVE_COLLISION,
            file: units[c.file].rel.clone(),
            line: c.line,
            message: msg,
        };
        if c.value >= base && name != "COLLECTIVE_TAG_BASE" {
            findings.push(at(format!(
                "tag constant `{name}` = {} lies inside the collective tag block",
                c.value
            )));
            continue;
        }
        if c.value >= span {
            // Block-structure constants (the base, the span) — not offsets.
            continue;
        }
        if name.starts_with("OP_") {
            if c.value == 0 || c.value & 0xFF != 0 {
                findings.push(at(format!(
                    "op code `{name}` = {} must be a nonzero multiple of 0x100 \
                     (the low byte carries the round counter)",
                    c.value
                )));
            }
        } else if c.value >= USER_OFFSET_LIMIT {
            findings.push(at(format!(
                "user tag offset `{name}` = {} overlaps the op-code range; \
                 user offsets must stay below 0x100",
                c.value
            )));
        }
        offsets.push((c.value, name, c.file, c.line));
    }
    offsets.sort_unstable();
    for w in offsets.windows(2) {
        if w[0].0 == w[1].0 {
            findings.push(Finding {
                rule: RULE_COLLECTIVE_COLLISION,
                file: units[w[1].2].rel.clone(),
                line: w[1].3,
                message: format!(
                    "tag offsets `{}` and `{}` share the value {}; \
                     messages on one tag would be delivered to the other",
                    w[0].1, w[1].1, w[0].0
                ),
            });
        }
    }
    findings
}

/// Scans one function body: records protocol sites, tag `let` bindings,
/// ordinary calls (for propagation), and struct-literal `tag:` keys.
#[allow(clippy::too_many_arguments)]
fn scan_body(
    unit: &FileUnit,
    ui: usize,
    f: &FnItem,
    fn_id: usize,
    consts: &ConstTable,
    ctxs: &mut [FnCtx],
    sites: &mut Vec<Site>,
    calls: &mut Vec<Call>,
    self_keys: &mut Vec<TagKey>,
) {
    let toks = &unit.lexed.toks;
    let (start, end) = f.body;
    // Local variable type annotations (param types seed the map).
    let mut let_types: HashMap<String, String> = f
        .params
        .iter()
        .filter(|p| !p.name.is_empty())
        .map(|p| (p.name.clone(), normalize_type_str(&p.ty)))
        .collect();
    // Active `let` statement: (bound name, annotation, end-of-stmt index).
    let mut cur_let: Option<(String, Option<String>, usize)> = None;

    let mut i = start;
    while i < end {
        if let Some((_, _, semi)) = &cur_let {
            if i > *semi {
                cur_let = None;
            }
        }
        let t = &toks[i];
        // `let [mut] name [: Ty] = init ;`
        if t.is_ident("let") {
            let mut j = i + 1;
            while j < end && toks[j].is_ident("mut") {
                j += 1;
            }
            let name = toks
                .get(j)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
            let Some(name) = name else {
                i += 1;
                continue;
            };
            j += 1;
            // Optional annotation.
            let mut ann: Option<(usize, usize)> = None;
            if j < end && toks[j].is_punct(':') && !toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            {
                let ty_start = j + 1;
                let mut depth = 0i32;
                let mut k = ty_start;
                while k < end {
                    let t = &toks[k];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
                        depth += 1;
                    } else if t.is_punct(')')
                        || t.is_punct(']')
                        || t.is_punct('}')
                        || t.is_punct('>')
                    {
                        depth -= 1;
                    } else if (t.is_punct('=') || t.is_punct(';')) && depth <= 0 {
                        break;
                    }
                    k += 1;
                }
                ann = Some((ty_start, k));
                j = k;
            }
            let ty_str = ann.map(|(a, b)| normalize_type(&toks[a..b]));
            if let Some(ty) = &ty_str {
                let_types.insert(name.clone(), ty.clone());
            }
            // Optional initializer: resolve it as a tag key.
            if j < end && toks[j].is_punct('=') {
                let init_start = j + 1;
                let semi = stmt_end(toks, init_start, end);
                let res = resolve_key(&toks[init_start..semi], &ctxs[fn_id], consts);
                if matches!(res, KeyRes::Known(_) | KeyRes::SelfTag) {
                    ctxs[fn_id].bindings.insert(name.clone(), res);
                }
                cur_let = Some((name, ty_str, semi));
                i = init_start; // keep scanning inside the initializer
                continue;
            }
            i = j;
            continue;
        }
        // Struct-literal `tag: <expr>` field initializer.
        if t.is_ident("tag")
            && i > start
            && (toks[i - 1].is_punct('{') || toks[i - 1].is_punct(','))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            let expr_start = i + 2;
            let mut depth = 0i32;
            let mut k = expr_start;
            while k < end {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if t.is_punct('}') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if t.is_punct(',') && depth == 0 {
                    break;
                }
                k += 1;
            }
            if let KeyRes::Known(key) = resolve_key(&toks[expr_start..k], &ctxs[fn_id], consts) {
                if !self_keys.contains(&key) {
                    self_keys.push(key);
                }
            }
            i = expr_start;
            continue;
        }
        // Method call: `.name` [`::<T>`] `(args)`.
        if t.is_punct('.') && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let mname = toks[i + 1].text.clone();
            if let Some(&(method, is_send, tag_idx, payload_idx)) =
                METHODS.iter().find(|(m, ..)| *m == mname)
            {
                let line = toks[i + 1].line;
                let mut j = i + 2;
                // Turbofish.
                let mut turbofish: Option<(usize, usize)> = None;
                if toks.get(j).is_some_and(|t| t.is_punct(':'))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(j + 2).is_some_and(|t| t.is_punct('<'))
                {
                    let close = skip_angle_group(toks, j + 2);
                    turbofish = Some((j + 3, close.saturating_sub(1)));
                    j = close;
                }
                if toks.get(j).is_some_and(|t| t.is_punct('(')) {
                    let close = skip_group(toks, j, '(', ')');
                    let args = split_ranges(toks, j + 1, close.saturating_sub(1), ',');
                    if args.len() > tag_idx {
                        let key = resolve_key(
                            &toks[args[tag_idx].0..args[tag_idx].1],
                            &ctxs[fn_id],
                            consts,
                        );
                        let ty = site_type(
                            toks,
                            turbofish,
                            &args,
                            payload_idx,
                            method,
                            is_send,
                            &let_types,
                            &cur_let,
                            f,
                        );
                        sites.push(Site {
                            unit: ui,
                            line,
                            is_send,
                            key,
                            fn_id,
                            ty,
                        });
                    }
                    i = j; // continue into the argument list for nested calls
                    continue;
                }
            }
        }
        // Ordinary call expression (for param propagation): `name(args)`.
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !METHODS.iter().any(|(m, ..)| *m == t.text)
            && !matches!(
                t.text.as_str(),
                "if" | "while" | "for" | "match" | "return" | "let"
            )
        {
            let close = skip_group(toks, i + 1, '(', ')');
            let args = split_ranges(toks, i + 2, close.saturating_sub(1), ',');
            calls.push(Call {
                unit: ui,
                callee: t.text.clone(),
                args,
                caller: fn_id,
            });
            i += 2; // scan inside the argument list too
            continue;
        }
        i += 1;
    }
}

/// Determines the concrete payload type of a site, or `None` when unknown
/// or generic over the enclosing function's type parameters.
#[allow(clippy::too_many_arguments)]
fn site_type(
    toks: &[Tok],
    turbofish: Option<(usize, usize)>,
    args: &[(usize, usize)],
    payload_idx: usize,
    method: &str,
    is_send: bool,
    let_types: &HashMap<String, String>,
    cur_let: &Option<(String, Option<String>, usize)>,
    f: &FnItem,
) -> Option<String> {
    let raw = if let Some((a, b)) = turbofish {
        Some(normalize_type(&toks[a..b]))
    } else if is_send {
        // Payload argument: a single identifier can be looked up.
        let (a, b) = *args.get(payload_idx)?;
        let arg = &toks[a..b];
        if arg.len() == 1 && arg[0].kind == TokKind::Ident {
            let_types.get(&arg[0].text).cloned()
        } else {
            None
        }
    } else if matches!(method, "recv" | "try_recv" | "recv_deadline") {
        // `let x: Ty = comm.recv(...)` — use the active annotation.
        let (_, ty, _) = cur_let.as_ref()?;
        let mut ty = ty.clone()?;
        if matches!(method, "try_recv" | "recv_deadline") {
            // These return Option<T> / Result-wrapped payloads.
            ty = strip_wrapper(&ty, "Option").to_string();
        }
        Some(ty)
    } else {
        // recv_any / drain without turbofish: tuple/iterator shapes are
        // not worth guessing.
        None
    }?;
    // Generic over the fn's type parameters => not a concrete type.
    if mentions_generic(&raw, &f.generics) {
        return None;
    }
    Some(raw)
}

/// True when the normalized type string uses any of `generics` as a whole
/// identifier.
fn mentions_generic(ty: &str, generics: &[String]) -> bool {
    if generics.is_empty() {
        return false;
    }
    let mut ident = String::new();
    let mut idents = Vec::new();
    for c in ty.chars() {
        if c.is_alphanumeric() || c == '_' {
            ident.push(c);
        } else if !ident.is_empty() {
            idents.push(std::mem::take(&mut ident));
        }
    }
    if !ident.is_empty() {
        idents.push(ident);
    }
    idents.iter().any(|i| generics.iter().any(|g| g == i))
}

/// Strips one `Wrapper<...>` layer if present.
fn strip_wrapper<'a>(ty: &'a str, wrapper: &str) -> &'a str {
    ty.strip_prefix(wrapper)
        .and_then(|r| r.strip_prefix('<'))
        .and_then(|r| r.strip_suffix('>'))
        .unwrap_or(ty)
}

/// Normalizes a type token slice: strips references and path prefixes
/// (`pgp_graph::Node` -> `Node`), drops whitespace.
pub(crate) fn normalize_type(toks: &[Tok]) -> String {
    let mut keep: Vec<&Tok> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('&') || (t.is_ident("mut") && keep.is_empty()) {
            i += 1;
            continue;
        }
        // `ident :: ident` — drop the prefix segment.
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Ident)
        {
            i += 3;
            continue;
        }
        // `ident :: <` (turbofish in type position) — keep ident, drop `::`.
        if t.is_punct(':')
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('<'))
        {
            i += 2;
            continue;
        }
        keep.push(t);
        i += 1;
    }
    let texts: Vec<Tok> = keep.into_iter().cloned().collect();
    join_tokens(&texts)
}

/// Normalizes a type already rendered as a string (re-lexes it).
fn normalize_type_str(ty: &str) -> String {
    normalize_type(&crate::lexer::lex(ty).toks)
}

/// Finds the end of the current statement (`;` at delimiter depth 0, or
/// the closing brace of the surrounding block).
fn stmt_end(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return i;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return i;
        }
        i += 1;
    }
    end
}

/// Resolves a tag expression to a key within a function context.
fn resolve_key(expr: &[Tok], ctx: &FnCtx, consts: &ConstTable) -> KeyRes {
    if expr.is_empty() {
        return KeyRes::Skip;
    }
    // 1. A tags-module constant named in the expression. Prefer offset
    //    constants (value below the block span) over the base.
    let mut best: Option<(&str, u64)> = None;
    for t in expr {
        if t.kind != TokKind::Ident {
            continue;
        }
        if let Some(c) = consts.get(&t.text) {
            if c.in_tags_module {
                let better = match best {
                    None => true,
                    Some((_, v)) => c.value < v,
                };
                if better {
                    best = Some((&t.text, c.value));
                }
            }
        }
    }
    if let Some((name, _)) = best {
        return KeyRes::Known(TagKey::Named(name.to_string()));
    }
    // 2. `self.tag`.
    if expr
        .windows(3)
        .any(|w| w[0].is_ident("self") && w[1].is_punct('.') && w[2].is_ident("tag"))
    {
        return KeyRes::SelfTag;
    }
    // 3. A local binding that already resolved.
    for t in expr {
        if t.kind == TokKind::Ident {
            if let Some(b) = ctx.bindings.get(&t.text) {
                return b.clone();
            }
        }
    }
    // 4. A parameter of the enclosing function.
    for t in expr {
        if t.kind == TokKind::Ident {
            if let Some(idx) = ctx.param_names.iter().position(|p| p == &t.text) {
                return KeyRes::Param(idx);
            }
        }
    }
    // 5. A constant-evaluable expression (literals, non-tags consts).
    if let Some(v) = eval(expr, consts.known()) {
        return KeyRes::Known(TagKey::Lit(v));
    }
    KeyRes::Skip
}
