//! Rule family (d): error handling.
//!
//! `err-swallowed-commerror` — a call to a function returning
//! `Result<_, CommError>` (or a collection thereof) whose structured fault
//! is swallowed at the call site: `.unwrap()` / `.expect(..)` chained
//! directly on the call, or the whole result discarded with `let _ =`.
//!
//! `CommError` is the substrate's *structured* fault channel: `PeerDead` /
//! `Timeout` values carry the failure-consensus coordinates (who died,
//! who observed it) that the recovery supervisor needs. Unwrapping turns
//! a recoverable fault into an opaque panic from an arbitrary PE thread;
//! discarding it loses the fault entirely and the run silently diverges.
//! The only legitimate terminal collection point is the runner
//! (`crates/pgp-dmp/src/runner.rs`), where per-PE results are folded into
//! the supervisor's verdict — that file is exempt. Test code may unwrap
//! freely (test-gated items and `tests/` dirs are already excluded).
//!
//! The fn set is collected *workspace-wide* in a first pass (return-type
//! token window between the parameter list and the body mentions
//! `CommError`), so a call in one crate to a fallible fn declared in
//! another is still seen.

use crate::lexer::{Tok, TokKind};
use crate::parse::skip_group;
use crate::report::{Finding, RULE_ERR_SWALLOWED};
use crate::FileUnit;
use std::collections::BTreeSet;

/// The terminal collection point: the runner folds per-PE
/// `Result<_, CommError>` values into the supervisor's failure verdict,
/// which is exactly the non-swallowing treatment the rule demands.
const EXEMPT_FILES: &[&str] = &["crates/pgp-dmp/src/runner.rs"];

/// Runs the error-handling rules.
pub fn check(units: &[FileUnit]) -> Vec<Finding> {
    let fallible = collect_commerror_fns(units);
    let mut findings = Vec::new();
    for unit in units {
        if EXEMPT_FILES.contains(&unit.rel.as_str()) {
            continue;
        }
        for f in &unit.items.fns {
            check_body(unit, f.body, &fallible, &mut findings);
        }
    }
    findings
}

/// Pass 1: names of all fns whose declared return type mentions
/// `CommError`, across every scanned file.
fn collect_commerror_fns(units: &[FileUnit]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for unit in units {
        let toks = &unit.lexed.toks;
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("fn") {
                if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    if let Some(window) = return_type_window(toks, i + 2) {
                        if window_names_commerror(&toks[window.0..window.1]) {
                            out.insert(name.text.clone());
                        }
                    }
                }
            }
            i += 1;
        }
    }
    out
}

/// The token window of the return type (and where clause) of a fn whose
/// name token ends at `after_name`: from past the parameter list to the
/// body `{` or terminating `;`. `None` for malformed heads.
fn return_type_window(toks: &[Tok], after_name: usize) -> Option<(usize, usize)> {
    let mut i = after_name;
    // Optional generic parameter list.
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        i = crate::parse::skip_angle_group(toks, i);
    }
    // Parameter list.
    if !toks.get(i).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let start = skip_group(toks, i, '(', ')');
    // To the body or the semicolon (trait declarations / extern fns).
    let mut j = start;
    let mut paren = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if (t.is_punct('{') || t.is_punct(';')) && paren <= 0 {
            return Some((start, j));
        }
        j += 1;
    }
    None
}

/// True when a return-type window names `Result` carrying `CommError`.
fn window_names_commerror(window: &[Tok]) -> bool {
    window.iter().any(|t| t.is_ident("CommError")) && window.iter().any(|t| t.is_ident("Result"))
}

/// Pass 2: swallowing call sites inside one fn body.
fn check_body(
    unit: &FileUnit,
    body: (usize, usize),
    fallible: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let toks = &unit.lexed.toks;
    let (start, end) = body;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        // `let _ = <stmt containing a fallible call>;`
        if t.is_ident("let")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
            && !toks.get(i + 3).is_some_and(|t| t.is_punct('='))
        {
            let stmt_end = stmt_extent(toks, i + 3, end);
            if let Some(name) = first_fallible_call(&toks[i + 3..stmt_end], fallible) {
                findings.push(Finding {
                    rule: RULE_ERR_SWALLOWED,
                    file: unit.rel.clone(),
                    line: t.line,
                    message: format!(
                        "`let _ =` discards the Result<_, CommError> of `{name}`: the \
                         structured fault (PeerDead/Timeout coordinates) is lost; \
                         propagate it with `?` or fold it into the runner's verdict"
                    ),
                });
            }
            i = stmt_end;
            continue;
        }
        // `name(..).unwrap()` / `name::<T>(..).expect(..)` on a fallible fn.
        if t.kind == TokKind::Ident && fallible.contains(&t.text) {
            let mut j = i + 1;
            // Turbofish between name and call parens.
            if toks.get(j).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 2).is_some_and(|t| t.is_punct('<'))
            {
                j = crate::parse::skip_angle_group(toks, j + 2);
            }
            if toks.get(j).is_some_and(|t| t.is_punct('(')) {
                let after_call = skip_group(toks, j, '(', ')');
                if toks.get(after_call).is_some_and(|t| t.is_punct('.')) {
                    if let Some(m) = toks
                        .get(after_call + 1)
                        .filter(|t| t.is_ident("unwrap") || t.is_ident("expect"))
                    {
                        findings.push(Finding {
                            rule: RULE_ERR_SWALLOWED,
                            file: unit.rel.clone(),
                            line: t.line,
                            message: format!(
                                "`.{}()` on the Result<_, CommError> of `{}` turns a \
                                 recoverable fault into a panic; propagate it with `?` \
                                 or fold it into the runner's verdict",
                                m.text, t.text
                            ),
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

/// The first fallible fn called (`name(` or `name::<..>(`) in a token
/// window, if any.
fn first_fallible_call(window: &[Tok], fallible: &BTreeSet<String>) -> Option<String> {
    let mut i = 0;
    while i < window.len() {
        let t = &window[i];
        if t.kind == TokKind::Ident && fallible.contains(&t.text) {
            let mut j = i + 1;
            if window.get(j).is_some_and(|t| t.is_punct(':'))
                && window.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && window.get(j + 2).is_some_and(|t| t.is_punct('<'))
            {
                j = crate::parse::skip_angle_group(window, j + 2);
            }
            if window.get(j).is_some_and(|t| t.is_punct('(')) {
                return Some(t.text.clone());
            }
        }
        i += 1;
    }
    None
}

/// Statement extent: index of the terminating `;` at delimiter depth 0
/// (or the end of the surrounding block).
fn stmt_extent(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            if depth == 0 {
                return i;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return i;
        }
        i += 1;
    }
    end
}
