//! Rule family (c): determinism.
//!
//! RunReports and trace goldens are compared across runs and across PE
//! counts, so every crate feeding them must be bit-deterministic. Two
//! classic leaks of nondeterminism are flagged:
//!
//! - `det-unordered-hash-iter` — iterating a std `HashMap`/`HashSet`:
//!   `RandomState` seeds differently every run, so iteration order (and
//!   anything derived from it) changes run to run.
//! - `det-unordered-float-reduce` — accumulating floats out of such an
//!   iteration: float addition is not associative, so even a *fixed* set
//!   of values sums to different results in different orders.
//! - `det-unordered-chunk-merge` — a `pgp-lp` function that drives the
//!   intra-PE worker pool (calls `run_chunks` or spawns scoped threads)
//!   iterating *any* hash container, including the deterministic-hasher
//!   `FxHashMap`/`FxHashSet`. A fixed hasher makes iteration order a
//!   function of insertion order — but in a pool function insertion order
//!   depends on which chunks each worker claimed, so the only
//!   deterministic merge is by chunk index (DESIGN.md §13).
//!
//! The rule is scoped to the determinism-critical crates (everything that
//! feeds cut/balance accounting, RunReport, or the trace goldens); tools
//! like `xtask` and the benches may hash freely.

use crate::lexer::{Tok, TokKind};
use crate::report::{Finding, RULE_CHUNK_MERGE, RULE_FLOAT_REDUCE, RULE_HASH_ITER};
use crate::FileUnit;
use std::collections::HashSet;

/// Crates whose sources must be deterministic.
const SCOPED_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/pgp-lp/src/",
    "crates/pgp-dmp/src/",
    "crates/pgp-obs/src/",
    "crates/pgp-graph/src/",
    "crates/pgp-seq/src/",
];

/// Methods whose call on a hash container observes its iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Runs the determinism rules.
pub fn check(units: &[FileUnit]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for unit in units {
        if !SCOPED_PREFIXES.iter().any(|p| unit.rel.starts_with(p)) {
            continue;
        }
        // Are std hash containers even in scope in this file?
        let std_hash_imported = unit.items.uses.iter().any(|u| {
            u.path.contains("std::collections")
                && (u.path.contains("HashMap") || u.path.contains("HashSet"))
        });
        for f in &unit.items.fns {
            check_fn(unit, f.body, std_hash_imported, &mut findings);
            if unit.rel.starts_with("crates/pgp-lp/src/") && is_pool_fn(&unit.lexed.toks, f.body) {
                check_pool_fn(unit, f.body, &mut findings);
            }
        }
    }
    findings
}

/// True when a function body drives the intra-PE worker pool: it calls
/// `chunk::run_chunks` or spawns scoped threads itself.
fn is_pool_fn(toks: &[Tok], body: (usize, usize)) -> bool {
    let (start, end) = body;
    (start..end).any(|i| {
        (toks[i].is_ident("run_chunks") || toks[i].is_ident("spawn"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
    })
}

/// True when a type window names any hash container — std or the
/// deterministic-hasher Fx variants. Inside a pool function even a fixed
/// hasher is unordered across threads (insertion order is schedule-
/// dependent), so the matcher is wider than [`is_hash_type`].
fn is_any_hash_type(ty: &[Tok]) -> bool {
    ty.iter().any(|t| {
        t.is_ident("HashMap")
            || t.is_ident("HashSet")
            || t.is_ident("FxHashMap")
            || t.is_ident("FxHashSet")
    })
}

/// `det-unordered-chunk-merge`: flags iteration over any hash-container
/// local inside a worker-pool function. Structured like `check_fn`, but
/// with the wider hasher-agnostic matcher and without the float pass —
/// in a pool function the order leak itself is already the bug.
fn check_pool_fn(unit: &FileUnit, body: (usize, usize), findings: &mut Vec<Finding>) {
    let toks = &unit.lexed.toks;
    let (start, end) = body;

    // Pass 1: locals of any hash type (annotation or constructor call).
    let mut hash_locals: HashSet<String> = HashSet::new();
    let mut i = start;
    while i < end {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            while j < end && toks[j].is_ident("mut") {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                let stmt = stmt_extent(toks, j + 1, end);
                // Stop at the first closure or block delimiter: a hash
                // container mentioned inside `run_chunks(.., |..| { .. })`
                // types a *worker-local*, not this binding.
                let ty_end = (j + 1..stmt)
                    .find(|&idx| toks[idx].is_punct('{') || toks[idx].is_punct('|'))
                    .unwrap_or(stmt);
                if is_any_hash_type(&toks[j + 1..ty_end]) {
                    hash_locals.insert(name.text.clone());
                }
            }
        }
        i += 1;
    }

    // Pass 2: iteration sites (method form and direct `for .. in` form).
    let mut i = start;
    while i < end {
        let t = &toks[i];
        let method_site = t.kind == TokKind::Ident
            && hash_locals.contains(&t.text)
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('));
        // Direct iteration only (`for x in [&]map {`); chained calls hit
        // the method-site pattern instead, avoiding double reports.
        let mut for_name: Option<String> = None;
        if t.is_ident("for") {
            if let Some((name, after)) = name_and_next_after_in(toks, i, end) {
                if hash_locals.contains(&name) && after.is_some_and(|t| t.is_punct('{')) {
                    for_name = Some(name);
                }
            }
        }
        if method_site || for_name.is_some() {
            let name = for_name.unwrap_or_else(|| t.text.clone());
            findings.push(Finding {
                rule: RULE_CHUNK_MERGE,
                file: unit.rel.clone(),
                line: t.line,
                message: format!(
                    "worker-pool function iterates hash container `{name}`: per-worker \
                     insertion order depends on chunk claiming, so this order is \
                     schedule-dependent even with a fixed hasher; merge by chunk index \
                     (or sort) instead"
                ),
            });
        }
        i += 1;
    }
}

/// True when a type annotation names a std hash container (either imported
/// from std in this file, or written with an explicit `std::collections`
/// path).
fn is_hash_type(ty: &[Tok], std_imported: bool) -> bool {
    for (i, t) in ty.iter().enumerate() {
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            if std_imported {
                return true;
            }
            // Explicit path: `std :: collections :: HashMap`.
            if i >= 6 && ty[i - 6].is_ident("std") && ty[i - 4].is_ident("collections") {
                return true;
            }
        }
    }
    false
}

/// Checks one function body.
fn check_fn(
    unit: &FileUnit,
    body: (usize, usize),
    std_imported: bool,
    findings: &mut Vec<Finding>,
) {
    let toks = &unit.lexed.toks;
    let (start, end) = body;

    // Pass 1: locals of std hash type (annotation or constructor call).
    let mut hash_locals: HashSet<String> = HashSet::new();
    let mut float_locals: HashSet<String> = HashSet::new();
    let mut i = start;
    while i < end {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            while j < end && toks[j].is_ident("mut") {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                let stmt = stmt_extent(toks, j + 1, end);
                let rest = &toks[j + 1..stmt];
                // Annotation or initializer mentioning the container type.
                if is_hash_type(rest, std_imported) {
                    hash_locals.insert(name.text.clone());
                }
                if rest.iter().any(|t| t.is_ident("f64") || t.is_ident("f32"))
                    || rest
                        .iter()
                        .any(|t| t.kind == TokKind::Number && is_float_literal(&t.text))
                {
                    float_locals.insert(name.text.clone());
                }
            }
        }
        i += 1;
    }

    // Pass 2: iteration sites.
    let mut i = start;
    while i < end {
        let t = &toks[i];
        // `X.iter()` / `X.keys()` / ... where X is a hash local.
        let method_site = t.kind == TokKind::Ident
            && hash_locals.contains(&t.text)
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('));
        // `for pat in [&[mut]] X {` over a hash local.
        let mut for_site = false;
        if t.is_ident("for") {
            // Find `in` at depth 0 before the block.
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < end {
                let u = &toks[j];
                if u.is_punct('(') || u.is_punct('[') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    depth -= 1;
                } else if u.is_ident("in") && depth == 0 {
                    break;
                } else if u.is_punct('{') && depth == 0 {
                    j = end;
                }
                j += 1;
            }
            if j < end {
                let mut k = j + 1;
                while k < end && (toks[k].is_punct('&') || toks[k].is_ident("mut")) {
                    k += 1;
                }
                if toks
                    .get(k)
                    .is_some_and(|t| t.kind == TokKind::Ident && hash_locals.contains(&t.text))
                {
                    // Direct iteration only: `for x in map {` or
                    // `for x in &map {`. Chained calls are caught by the
                    // method-site pattern instead.
                    let next = toks.get(k + 1);
                    if next.is_some_and(|t| t.is_punct('{'))
                        || next.is_some_and(|t| t.is_punct('.'))
                    {
                        for_site = next.is_some_and(|t| t.is_punct('{'));
                    }
                }
            }
        }
        if method_site || for_site {
            findings.push(Finding {
                rule: RULE_HASH_ITER,
                file: unit.rel.clone(),
                line: t.line,
                message: format!(
                    "iteration over std hash container `{}`: RandomState makes the \
                     order differ between runs; use BTreeMap/BTreeSet or sort first",
                    if for_site {
                        // name is after `for .. in`
                        hash_name_after_in(toks, i, end).unwrap_or_else(|| t.text.clone())
                    } else {
                        t.text.clone()
                    }
                ),
            });
            // Float accumulation fed by this iteration?
            if method_site {
                let stmt = stmt_extent(toks, i, end);
                let window = &toks[i..stmt];
                if float_sink(window) {
                    findings.push(Finding {
                        rule: RULE_FLOAT_REDUCE,
                        file: unit.rel.clone(),
                        line: t.line,
                        message: format!(
                            "floating-point reduction over unordered `{}` iteration: \
                             float addition is not associative, so the result depends \
                             on iteration order",
                            t.text
                        ),
                    });
                }
            }
            if for_site {
                // Body of the for loop: does it accumulate into a float?
                let mut j = i;
                while j < end && !toks[j].is_punct('{') {
                    j += 1;
                }
                if j < end {
                    let close = crate::parse::skip_group(toks, j, '{', '}');
                    let body = &toks[j..close];
                    let accumulates = body.windows(3).any(|w| {
                        w[0].kind == TokKind::Ident
                            && float_locals.contains(&w[0].text)
                            && w[1].is_punct('+')
                            && w[2].is_punct('=')
                    });
                    if accumulates {
                        findings.push(Finding {
                            rule: RULE_FLOAT_REDUCE,
                            file: unit.rel.clone(),
                            line: t.line,
                            message: "floating-point accumulation inside an unordered hash \
                                      iteration: the sum depends on iteration order"
                                .to_string(),
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

/// Extracts the iterated identifier of a `for .. in X {` loop.
fn hash_name_after_in(toks: &[Tok], for_idx: usize, end: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut j = for_idx + 1;
    while j < end {
        let u = &toks[j];
        if u.is_punct('(') || u.is_punct('[') {
            depth += 1;
        } else if u.is_punct(')') || u.is_punct(']') {
            depth -= 1;
        } else if u.is_ident("in") && depth == 0 {
            let mut k = j + 1;
            while k < end && (toks[k].is_punct('&') || toks[k].is_ident("mut")) {
                k += 1;
            }
            return toks.get(k).map(|t| t.text.clone());
        }
        j += 1;
    }
    None
}

/// As [`hash_name_after_in`], also yielding the token following the
/// iterated identifier (to distinguish `for x in map {` from chains).
fn name_and_next_after_in(
    toks: &[Tok],
    for_idx: usize,
    end: usize,
) -> Option<(String, Option<&Tok>)> {
    let mut depth = 0i32;
    let mut j = for_idx + 1;
    while j < end {
        let u = &toks[j];
        if u.is_punct('(') || u.is_punct('[') {
            depth += 1;
        } else if u.is_punct(')') || u.is_punct(']') {
            depth -= 1;
        } else if u.is_ident("in") && depth == 0 {
            let mut k = j + 1;
            while k < end && (toks[k].is_punct('&') || toks[k].is_ident("mut")) {
                k += 1;
            }
            return toks.get(k).map(|t| (t.text.clone(), toks.get(k + 1)));
        } else if u.is_punct('{') && depth == 0 {
            return None;
        }
        j += 1;
    }
    None
}

/// True when the statement window contains a float-typed reduction sink
/// (`.sum::<f64>()`, `.fold(0.0, ..)`).
fn float_sink(window: &[Tok]) -> bool {
    for (i, t) in window.iter().enumerate() {
        if t.is_ident("sum") || t.is_ident("product") {
            // `.sum::<f64>()`
            if window[i..]
                .iter()
                .take(8)
                .any(|t| t.is_ident("f64") || t.is_ident("f32"))
            {
                return true;
            }
        }
        if t.is_ident("fold")
            && window.get(i + 1).is_some_and(|t| t.is_punct('('))
            && window[i..]
                .iter()
                .take(6)
                .any(|t| t.kind == TokKind::Number && is_float_literal(&t.text))
        {
            return true;
        }
    }
    false
}

/// True for float literal token texts (`0.0`, `1e-3`, `2f64`).
fn is_float_literal(text: &str) -> bool {
    !text.starts_with("0x")
        && !text.starts_with("0b")
        && !text.starts_with("0o")
        && (text.contains('.') || text.contains("f3") || text.contains("f6") || text.contains('e'))
}

/// Statement extent: index of the terminating `;` at delimiter depth 0
/// (or the closing brace of the surrounding block).
fn stmt_extent(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return i;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return i;
        }
        i += 1;
    }
    end
}
