//! A small but real Rust lexer.
//!
//! Produces a flat token stream with line numbers — identifiers, literals,
//! string/char literals (contents preserved but *typed*, so rules can never
//! match identifiers inside strings, the classic line-regex failure mode),
//! lifetimes, and single-character punctuation. Comments are consumed here;
//! `// analyze:allow(rule-id)` markers are extracted into a side table with
//! their line numbers for the suppression pass.
//!
//! Multi-character operators (`::`, `<<`, `->`) are left as adjacent
//! single-character punct tokens; the parser and rule matchers consume them
//! as sequences, which keeps the lexer trivially correct.

/// Token categories. The lexer never fails: unknown bytes become punct
/// tokens and flow through harmlessly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `comm`, `send`, ...).
    Ident,
    /// An integer or float literal, suffix included (`42u64`, `0x52`).
    Number,
    /// A string or byte-string literal (quotes stripped, escapes raw).
    Str,
    /// A char or byte literal.
    Char,
    /// A lifetime (`'a`), without the quote.
    Lifetime,
    /// A single punctuation character (`.`, `:`, `<`, `{`, ...).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (for [`TokKind::Punct`], exactly one character).
    pub text: String,
    /// 1-based line number.
    pub line: u32,
}

impl Tok {
    /// True if this token is the punct character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// One `// analyze:allow(rule, ...)` suppression marker.
#[derive(Clone, Debug)]
pub struct Allow {
    /// 1-based line of the comment.
    pub line: u32,
    /// The rule identifiers inside the parentheses.
    pub rules: Vec<String>,
}

/// A lexed file: tokens plus the suppression markers found in comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream.
    pub toks: Vec<Tok>,
    /// Suppression markers, in line order.
    pub allows: Vec<Allow>,
}

/// Lexes `text`. Infallible: malformed input degrades to punct tokens.
pub fn lex(text: &str) -> Lexed {
    let b = text.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                // Doc comments (`///`, `//!`) are documentation: a marker
                // *mentioned* there must not suppress anything.
                let is_doc = matches!(b.get(i + 2), Some(b'/') | Some(b'!'));
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                if !is_doc {
                    scan_allow(&text[start..i], line, &mut out.allows);
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comments nest in Rust.
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (tok, ni, nl) = lex_string(text, i, line);
                out.toks.push(tok);
                i = ni;
                line = nl;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let (tok, ni, nl) = lex_raw_or_byte(text, i, line);
                out.toks.push(tok);
                i = ni;
                line = nl;
            }
            b'\'' => {
                let (tok, ni) = lex_char_or_lifetime(text, i, line);
                out.toks.push(tok);
                i = ni;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // Float continuation: `1.5`, `1e9` handled by the alnum run;
                // a `.` followed by a digit extends the literal.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Number,
                    text: text[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: text[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True when position `i` starts `r"`, `r#`-raw, `b"`, `br"` or `br#`.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    let after_prefix = |mut j: usize| -> bool {
        // Optional run of #'s, then a quote.
        while j < rest.len() && rest[j] == b'#' {
            j += 1;
        }
        j < rest.len() && rest[j] == b'"'
    };
    match rest {
        [b'r', ..] => after_prefix(1),
        [b'b', b'"', ..] => true,
        [b'b', b'r', ..] => after_prefix(2),
        _ => false,
    }
}

/// Lexes a normal `"..."` string starting at `i`. Returns (token, next
/// index, next line).
fn lex_string(text: &str, i: usize, mut line: u32) -> (Tok, usize, u32) {
    let b = text.as_bytes();
    let tok_line = line;
    let mut j = i + 1;
    let start = j;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                line += 1;
                j += 1;
            }
            b'"' => break,
            _ => j += 1,
        }
    }
    let end = j.min(b.len());
    (
        Tok {
            kind: TokKind::Str,
            text: text[start..end].to_string(),
            line: tok_line,
        },
        (end + 1).min(b.len()),
        line,
    )
}

/// Lexes `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` starting at `i`.
fn lex_raw_or_byte(text: &str, i: usize, mut line: u32) -> (Tok, usize, u32) {
    let b = text.as_bytes();
    let tok_line = line;
    let mut j = i;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    // Opening quote.
    j += 1;
    let start = j;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    while j < b.len() {
        if b[j] == b'\n' {
            line += 1;
            j += 1;
        } else if b[j] == b'"' && b[j..].starts_with(&closer) {
            break;
        } else if b[j] == b'\\' && hashes == 0 {
            j += 2;
        } else {
            j += 1;
        }
    }
    let end = j.min(b.len());
    (
        Tok {
            kind: TokKind::Str,
            text: text[start..end].to_string(),
            line: tok_line,
        },
        (end + closer.len()).min(b.len()),
        line,
    )
}

/// Disambiguates `'a` (lifetime) from `'x'` (char literal) at `i`.
fn lex_char_or_lifetime(text: &str, i: usize, line: u32) -> (Tok, usize) {
    let b = text.as_bytes();
    // Lifetime: quote, ident start, ident run, and *no* closing quote.
    if i + 1 < b.len() && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_') {
        let mut j = i + 1;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        if j >= b.len() || b[j] != b'\'' {
            return (
                Tok {
                    kind: TokKind::Lifetime,
                    text: text[i + 1..j].to_string(),
                    line,
                },
                j,
            );
        }
    }
    // Char literal: consume until the closing quote, honoring one escape.
    let mut j = i + 1;
    if j < b.len() && b[j] == b'\\' {
        j += 2;
    } else if j < b.len() {
        j += 1;
    }
    // Multibyte chars: walk to the quote defensively.
    while j < b.len() && b[j] != b'\'' {
        j += 1;
    }
    (
        Tok {
            kind: TokKind::Char,
            text: text[i + 1..j.min(b.len())].to_string(),
            line,
        },
        (j + 1).min(b.len()),
    )
}

/// Extracts `analyze:allow(rule-a, rule-b)` markers from a line comment.
fn scan_allow(comment: &str, line: u32, allows: &mut Vec<Allow>) {
    let Some(pos) = comment.find("analyze:allow(") else {
        return;
    };
    let after = &comment[pos + "analyze:allow(".len()..];
    let Some(close) = after.find(')') else {
        return;
    };
    let rules: Vec<String> = after[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if !rules.is_empty() {
        allows.push(Allow { line, rules });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn identifiers_in_strings_are_not_ident_tokens() {
        let toks = kinds(r#"let x = "comm.send(0, 1, v)";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| !(*k == TokKind::Ident && t == "send")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("send")));
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let l = lex("a /* x /* y */ z */ b\nc");
        let idents: Vec<_> = l.toks.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(
            idents,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 1),
                ("c".to_string(), 2)
            ]
        );
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let l = lex(r##"let s = r#"a "quoted" b"#; done"##);
        assert!(l.toks.iter().any(|t| t.is_ident("done")));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("quoted")));
    }

    #[test]
    fn allow_markers_are_collected_with_lines() {
        let src = "fn f() {}\n// analyze:allow(det-unordered-hash-iter, spmd-rank-guarded-collective)\nfn g() {}\n";
        let l = lex(src);
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].line, 2);
        assert_eq!(
            l.allows[0].rules,
            vec!["det-unordered-hash-iter", "spmd-rank-guarded-collective"]
        );
    }

    #[test]
    fn numbers_keep_suffixes_and_radix() {
        let toks = kinds("let a = 0x52u64 + 1_000 << 8;");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Number)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(nums, vec!["0x52u64", "1_000", "8"]);
    }
}
