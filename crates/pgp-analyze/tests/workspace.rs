//! Whole-tree checks: the workspace itself must analyze clean, and a
//! seeded mutation of a real protocol site must be caught — the analyzer
//! equivalent of a tripwire test, proving the rules see the *actual*
//! protocol code and not just the fixtures.

use pgp_analyze::{analyze_files, analyze_workspace, workspace_root, SourceFile};

#[test]
fn workspace_analyzes_clean() {
    let a = analyze_workspace(&workspace_root()).expect("workspace sources readable");
    assert!(
        a.files_scanned > 50,
        "walker found only {}",
        a.files_scanned
    );
    assert!(
        a.findings.is_empty(),
        "unsuppressed findings:\n{}",
        a.findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// A real protocol file together with the tags module, as the analyzer
/// input set.
fn real_pair(rel: &str) -> Vec<SourceFile> {
    let root = workspace_root();
    let read = |r: &str| -> SourceFile {
        SourceFile {
            rel: r.to_string(),
            text: std::fs::read_to_string(root.join(r))
                .unwrap_or_else(|e| panic!("cannot read {r}: {e}")),
        }
    };
    vec![read("crates/pgp-dmp/src/tags.rs"), read(rel)]
}

/// One candidate mutation: file, the exact text a recv site must contain,
/// and the broken replacement.
struct Mutation {
    rel: &'static str,
    needle: &'static str,
    replacement: &'static str,
}

const MUTATIONS: &[Mutation] = &[
    // Ghost-label exchange: flip the recv annotation away from the sent
    // `Vec<(Node, Node)>`.
    Mutation {
        rel: "crates/pgp-dmp/src/exchange.rs",
        needle: "let mut updates: Vec<(Node, Node)> = comm.recv",
        replacement: "let mut updates: Vec<u64> = comm.recv",
    },
    // Rumor spreading: flip the drain turbofish away from the sent
    // `(Weight, Vec<BlockId>)`.
    Mutation {
        rel: "crates/pgp-evo/src/rumor.rs",
        needle: "comm.drain::<(Weight, Vec<BlockId>)>(self.tag)",
        replacement: "comm.drain::<Vec<u64>>(self.tag)",
    },
];

#[test]
fn real_protocol_files_are_clean_unmutated() {
    for m in MUTATIONS {
        let a = analyze_files(&real_pair(m.rel));
        assert!(
            a.findings.is_empty(),
            "{} should be clean: {:?}",
            m.rel,
            a.findings
        );
    }
}

#[test]
fn seeded_mutation_is_caught() {
    // Deterministic LCG over a handful of seeds; both mutation sites get
    // picked at least once across the seed range.
    let mut covered = [false; 2];
    for seed in 0u64..8 {
        let x = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = ((x >> 33) as usize) % MUTATIONS.len();
        covered[idx] = true;
        let m = &MUTATIONS[idx];
        let mut files = real_pair(m.rel);
        let site = &mut files[1];
        assert!(
            site.text.contains(m.needle),
            "{} no longer contains the expected recv site `{}` — update the \
             mutation table",
            m.rel,
            m.needle
        );
        site.text = site.text.replace(m.needle, m.replacement);
        let a = analyze_files(&files);
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == "protocol-type-mismatch"),
            "seed {seed}: mutated {} but protocol-type-mismatch did not fire: {:?}",
            m.rel,
            a.findings
        );
    }
    assert_eq!(
        covered,
        [true, true],
        "seed range must exercise every mutation"
    );
}
