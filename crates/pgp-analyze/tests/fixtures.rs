//! Per-rule fixture tests: every rule has a positive fixture that must
//! trip it and a negative fixture that must stay silent.

use pgp_analyze::{analyze_files, Analysis, SourceFile};
use std::path::Path;

/// Reads a fixture from `crates/pgp-analyze/fixtures/`.
fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Analyzes one fixture under the given repo-relative path (the path
/// decides rule scoping, e.g. determinism only fires under the
/// determinism-critical crates).
fn analyze_one(rel: &str, name: &str) -> Analysis {
    analyze_files(&[SourceFile {
        rel: rel.to_string(),
        text: fixture(name),
    }])
}

/// The distinct rule ids present in an analysis.
fn rules(a: &Analysis) -> Vec<&'static str> {
    let mut r: Vec<&'static str> = a.findings.iter().map(|f| f.rule).collect();
    r.sort_unstable();
    r.dedup();
    r
}

const PROTO_REL: &str = "crates/fix/src/lib.rs";
const DET_REL: &str = "crates/core/src/fix.rs";

#[test]
fn type_mismatch_trips() {
    let a = analyze_one(PROTO_REL, "protocol_type_mismatch_trip.rs");
    assert_eq!(rules(&a), vec!["protocol-type-mismatch"]);
    let f = &a.findings[0];
    assert!(f.message.contains("Vec<u32>") && f.message.contains("Vec<u64>"));
    // Anchored at the recv site.
    assert_eq!(f.line, 16);
}

#[test]
fn type_mismatch_passes_when_types_agree() {
    let a = analyze_one(PROTO_REL, "protocol_type_mismatch_pass.rs");
    assert_eq!(a.findings, Vec::new());
}

#[test]
fn unreceived_tag_trips() {
    let a = analyze_one(PROTO_REL, "protocol_unreceived_tag_trip.rs");
    assert_eq!(rules(&a), vec!["protocol-unreceived-tag"]);
    assert!(a.findings[0].message.contains("ORPHAN"));
}

#[test]
fn unreceived_tag_passes_via_self_tag_field() {
    let a = analyze_one(PROTO_REL, "protocol_unreceived_tag_pass.rs");
    assert_eq!(a.findings, Vec::new());
}

#[test]
fn collective_collision_trips_on_all_layout_violations() {
    let a = analyze_one(PROTO_REL, "protocol_collective_collision_trip.rs");
    assert_eq!(rules(&a), vec!["protocol-collective-collision"]);
    let msgs: String = a
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(msgs.contains("OP_BAD"), "op-code low byte: {msgs}");
    assert!(msgs.contains("TOO_HIGH"), "offset in op range: {msgs}");
    assert!(msgs.contains("DUP_B"), "duplicate value: {msgs}");
    assert!(msgs.contains("ABSOLUTE"), "const in block: {msgs}");
    assert!(msgs.contains("literal tag"), "literal in block: {msgs}");
}

#[test]
fn collective_collision_passes_on_wellformed_module() {
    let a = analyze_one(PROTO_REL, "protocol_collective_collision_pass.rs");
    assert_eq!(a.findings, Vec::new());
}

#[test]
fn rank_guarded_collective_trips() {
    let a = analyze_one(PROTO_REL, "spmd_rank_guarded_trip.rs");
    assert_eq!(rules(&a), vec!["spmd-rank-guarded-collective"]);
    let msgs: String = a
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(msgs.contains("`barrier`"), "if-branch collective: {msgs}");
    assert!(
        msgs.contains("`fresh_tag_block`"),
        "else-branch collective: {msgs}"
    );
}

#[test]
fn rank_guarded_collective_passes() {
    let a = analyze_one(PROTO_REL, "spmd_rank_guarded_pass.rs");
    assert_eq!(a.findings, Vec::new());
}

#[test]
fn hash_iter_trips_in_scoped_crate() {
    let a = analyze_one(DET_REL, "det_hash_iter_trip.rs");
    assert_eq!(rules(&a), vec!["det-unordered-hash-iter"]);
    assert_eq!(
        a.findings.len(),
        2,
        "method form and for form: {:?}",
        a.findings
    );
}

#[test]
fn hash_iter_ignores_unscoped_crates() {
    // Same source under a tooling path: out of determinism scope.
    let a = analyze_one("crates/xtask/src/fix.rs", "det_hash_iter_trip.rs");
    assert_eq!(a.findings, Vec::new());
}

#[test]
fn hash_iter_passes_on_ordered_or_noniterated() {
    let a = analyze_one(DET_REL, "det_hash_iter_pass.rs");
    assert_eq!(a.findings, Vec::new());
}

#[test]
fn float_reduce_trips_both_forms() {
    let a = analyze_one(DET_REL, "det_float_reduce_trip.rs");
    assert!(
        rules(&a).contains(&"det-unordered-float-reduce"),
        "{:?}",
        a.findings
    );
    let n = a
        .findings
        .iter()
        .filter(|f| f.rule == "det-unordered-float-reduce")
        .count();
    assert_eq!(n, 2, "chain form and loop form: {:?}", a.findings);
}

#[test]
fn float_reduce_passes_on_ordered_container() {
    let a = analyze_one(DET_REL, "det_float_reduce_pass.rs");
    assert_eq!(a.findings, Vec::new());
}

const LP_REL: &str = "crates/pgp-lp/src/fix.rs";

#[test]
fn chunk_merge_trips_both_forms_in_pool_fns() {
    let a = analyze_one(LP_REL, "det_chunk_merge_trip.rs");
    assert_eq!(rules(&a), vec!["det-unordered-chunk-merge"]);
    assert_eq!(
        a.findings.len(),
        2,
        "method form and for form: {:?}",
        a.findings
    );
    assert!(a.findings.iter().any(|f| f.message.contains("`deltas`")));
    assert!(a.findings.iter().any(|f| f.message.contains("`moved`")));
}

#[test]
fn chunk_merge_scoped_to_pgp_lp() {
    // The same source outside pgp-lp: the pool rule does not apply, and
    // Fx containers do not trip the std hash-iter rule either.
    let a = analyze_one(DET_REL, "det_chunk_merge_trip.rs");
    assert_eq!(a.findings, Vec::new());
}

#[test]
fn chunk_merge_passes_on_chunk_order_merge_and_nonpool_fns() {
    let a = analyze_one(LP_REL, "det_chunk_merge_pass.rs");
    assert_eq!(a.findings, Vec::new());
}

#[test]
fn err_swallowed_commerror_trips_all_forms() {
    let a = analyze_one(PROTO_REL, "err_swallowed_commerror_trip.rs");
    assert_eq!(rules(&a), vec!["err-swallowed-commerror"]);
    assert_eq!(
        a.findings.len(),
        4,
        "unwrap, expect, let _, turbofish: {:?}",
        a.findings
    );
    let msgs: String = a
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(msgs.contains(".unwrap()"), "{msgs}");
    assert!(msgs.contains(".expect()"), "{msgs}");
    assert!(msgs.contains("`let _ =` discards"), "{msgs}");
    assert!(msgs.contains("`helper`"), "turbofish call: {msgs}");
}

#[test]
fn err_swallowed_commerror_exempts_runner_terminal_point() {
    let a = analyze_one(
        "crates/pgp-dmp/src/runner.rs",
        "err_swallowed_commerror_trip.rs",
    );
    assert_eq!(a.findings, Vec::new());
}

#[test]
fn err_swallowed_commerror_passes_on_handled_faults() {
    let a = analyze_one(PROTO_REL, "err_swallowed_commerror_pass.rs");
    assert_eq!(a.findings, Vec::new());
}

#[test]
fn transport_confined_trips_on_every_breach_kind() {
    let a = analyze_one(PROTO_REL, "transport_confined_trip.rs");
    assert_eq!(rules(&a), vec!["transport-confined"]);
    assert_eq!(
        a.findings.len(),
        8,
        "use, mailbox, socket types, frame codec, raw streams: {:?}",
        a.findings
    );
    let msgs: String = a
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(msgs.contains("`Mailbox`"), "mailbox internal: {msgs}");
    assert!(msgs.contains("`SocketEndpoint`"), "socket type: {msgs}");
    assert!(msgs.contains("`write_frame`"), "frame codec: {msgs}");
    assert!(msgs.contains("`UnixStream`"), "raw OS stream: {msgs}");
}

#[test]
fn transport_confined_exempts_the_owning_layer() {
    // The identical breaches inside the transport layer itself: silent.
    for owner in [
        "crates/pgp-dmp/src/comm.rs",
        "crates/pgp-dmp/src/transport/socket.rs",
        "crates/pgp-dmp/src/transport/frame.rs",
    ] {
        let a = analyze_one(owner, "transport_confined_trip.rs");
        assert_eq!(a.findings, Vec::new(), "owner file {owner} is exempt");
    }
}

#[test]
fn transport_confined_passes_on_comm_api_usage() {
    let a = analyze_one(PROTO_REL, "transport_confined_pass.rs");
    assert_eq!(a.findings, Vec::new());
}

#[test]
fn telemetry_side_channel_trips_on_every_breach_kind() {
    let a = analyze_one(PROTO_REL, "transport_telemetry_confined_trip.rs");
    assert_eq!(rules(&a), vec!["transport-confined"]);
    assert_eq!(
        a.findings.len(),
        6,
        "frame path x2, decoder, post-mortem reader, encoder, env knob: {:?}",
        a.findings
    );
    let msgs: String = a
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        msgs.contains("`telemetry_frame_path`"),
        "file layout: {msgs}"
    );
    assert!(msgs.contains("`read_telemetry_frames`"), "decoder: {msgs}");
    assert!(
        msgs.contains("`read_last_telemetry_snapshot`"),
        "post-mortem reader: {msgs}"
    );
    assert!(msgs.contains("`write_telemetry_frame`"), "encoder: {msgs}");
    assert!(msgs.contains("`ENV_TELEMETRY_DIR`"), "env knob: {msgs}");
}

#[test]
fn telemetry_side_channel_exempts_its_owning_layers() {
    // The identical uses inside pgp-obs (codec home) and the transport
    // layer (publish + post-mortem call sites): silent.
    for owner in [
        "crates/pgp-obs/src/live.rs",
        "crates/pgp-obs/src/recorder.rs",
        "crates/pgp-dmp/src/comm.rs",
        "crates/pgp-dmp/src/transport/process.rs",
    ] {
        let a = analyze_one(owner, "transport_telemetry_confined_trip.rs");
        assert_eq!(a.findings, Vec::new(), "owner file {owner} is exempt");
    }
}

#[test]
fn telemetry_side_channel_passes_on_sanctioned_surface() {
    let a = analyze_one(PROTO_REL, "transport_telemetry_confined_pass.rs");
    assert_eq!(a.findings, Vec::new());
}

#[test]
fn unused_allow_trips_for_stale_and_unknown_markers() {
    let a = analyze_one(DET_REL, "unused_allow_trip.rs");
    assert_eq!(rules(&a), vec!["unused-allow"]);
    assert_eq!(a.findings.len(), 2, "{:?}", a.findings);
    assert!(a
        .findings
        .iter()
        .any(|f| f.message.contains("unknown rule")));
}

#[test]
fn allow_marker_suppresses_and_is_counted() {
    let a = analyze_one(DET_REL, "suppression_pass.rs");
    assert_eq!(a.findings, Vec::new());
    assert_eq!(a.suppressed, 1);
}
