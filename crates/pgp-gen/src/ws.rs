//! Watts–Strogatz small-world graphs: a ring lattice with random rewiring.

use pgp_graph::{CsrGraph, GraphBuilder, Node};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Watts–Strogatz: `n` nodes on a ring, each connected to its `k/2` nearest
/// neighbours per side, each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!(n > k, "n must exceed k");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * k / 2);
    for u in 0..n {
        for j in 1..=k / 2 {
            let v = (u + j) % n;
            let (mut uu, mut vv) = (u as Node, v as Node);
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint to a random node.
                let mut w = rng.gen_range(0..n as Node);
                let mut tries = 0;
                while w == uu && tries < 16 {
                    w = rng.gen_range(0..n as Node);
                    tries += 1;
                }
                if w != uu {
                    vv = w;
                }
            }
            if uu != vv {
                if uu > vv {
                    std::mem::swap(&mut uu, &mut vv);
                }
                b.push_edge(uu, vv, 1);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 1);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 40);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        g.validate().unwrap();
    }

    #[test]
    fn rewiring_keeps_count_roughly() {
        let g = watts_strogatz(500, 6, 0.2, 3);
        // Dedup after rewiring can only lose a few edges.
        assert!(g.m() >= 500 * 3 - 60);
        assert!(g.m() <= 1500);
    }

    #[test]
    fn deterministic() {
        assert_eq!(watts_strogatz(64, 4, 0.3, 5), watts_strogatz(64, 4, 0.3, 5));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_k() {
        watts_strogatz(10, 3, 0.1, 1);
    }
}
