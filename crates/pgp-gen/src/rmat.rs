//! R-MAT (recursive matrix) generator — the standard model for web-graph
//! stand-ins: skewed degrees, self-similar community structure.

use pgp_graph::{CsrGraph, GraphBuilder, Node};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// R-MAT quadrant probabilities. Must sum to 1.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant (dense core).
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Bottom-right.
    pub d: f64,
}

impl RmatParams {
    /// The classic web-graph parameterisation (Graph500-like).
    pub fn web() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }

    /// A flatter social-network-like parameterisation.
    pub fn social() -> Self {
        Self {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            d: 0.11,
        }
    }
}

/// Generates an R-MAT graph with `2^scale` nodes and (up to) `m` distinct
/// undirected edges; duplicate samples and self loops are dropped, so the
/// realized edge count is somewhat below `m` — the hallmark skewed degree
/// structure is what matters for the experiments.
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> CsrGraph {
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "quadrant probabilities must sum to 1"
    );
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            b.push_edge(u as Node, v as Node, 1);
        }
    }
    b.build()
}

/// Web-graph stand-in at `2^scale` nodes with average degree `avg_deg`.
pub fn rmat_web(scale: u32, avg_deg: usize, seed: u64) -> CsrGraph {
    let n = 1usize << scale;
    rmat(scale, n * avg_deg / 2, RmatParams::web(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_skewed() {
        let g = rmat(12, 40_000, RmatParams::web(), 3);
        assert_eq!(g.n(), 4096);
        assert!(g.m() > 20_000, "too many duplicates: m = {}", g.m());
        // Heavy head: max degree far above average.
        assert!((g.max_degree() as f64) > 10.0 * g.avg_degree());
        g.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        let a = rmat(10, 5000, RmatParams::social(), 8);
        let b = rmat(10, 5000, RmatParams::social(), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn rmat_web_density() {
        let g = rmat_web(11, 8, 1);
        // Realized average degree is below the target due to dedup, but in
        // the right ballpark.
        assert!(
            g.avg_degree() > 3.0 && g.avg_degree() <= 8.0,
            "{}",
            g.avg_degree()
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_params() {
        rmat(
            4,
            10,
            RmatParams {
                a: 0.9,
                b: 0.2,
                c: 0.1,
                d: 0.1,
            },
            1,
        );
    }
}
