//! Stochastic block model with power-law community sizes — the social-
//! network stand-in whose *planted community structure* is exactly what the
//! paper's cluster-contraction coarsening exploits.

use pgp_graph::{CsrGraph, GraphBuilder, Node};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for the planted-community generator.
#[derive(Clone, Copy, Debug)]
pub struct SbmParams {
    /// Expected intra-community degree per node.
    pub intra_degree: f64,
    /// Expected inter-community degree per node.
    pub inter_degree: f64,
    /// Pareto shape for community sizes (smaller = heavier tail).
    pub size_exponent: f64,
    /// Minimum community size.
    pub min_community: usize,
}

impl Default for SbmParams {
    fn default() -> Self {
        Self {
            intra_degree: 8.0,
            inter_degree: 2.0,
            size_exponent: 2.0,
            min_community: 16,
        }
    }
}

/// Generates an SBM graph of `n` nodes and returns it together with the
/// ground-truth community of every node.
pub fn sbm(n: usize, params: SbmParams, seed: u64) -> (CsrGraph, Vec<Node>) {
    assert!(
        n >= 2 * params.min_community,
        "n too small for two communities"
    );
    let mut rng = SmallRng::seed_from_u64(seed);

    // Draw power-law community sizes until n is covered.
    let mut sizes: Vec<usize> = Vec::new();
    let mut covered = 0usize;
    let max_size = (n / 2).max(params.min_community + 1);
    while covered < n {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        // Pareto(min, alpha) truncated at max_size.
        let s = (params.min_community as f64 / u.powf(1.0 / params.size_exponent)) as usize;
        let s = s.clamp(params.min_community, max_size).min(n - covered);
        sizes.push(s);
        covered += s;
    }
    // Absorb a tiny trailing community into its predecessor.
    if sizes.len() >= 2 && sizes[sizes.len() - 1] < params.min_community {
        let last = sizes.pop().expect("len >= 2 guarantees a tail element");
        *sizes.last_mut().expect("still non-empty after one pop") += last;
    }

    let mut community = vec![0 as Node; n];
    let mut starts = Vec::with_capacity(sizes.len());
    let mut at = 0usize;
    for (c, &s) in sizes.iter().enumerate() {
        starts.push(at);
        for slot in community.iter_mut().skip(at).take(s) {
            *slot = c as Node;
        }
        at += s;
    }

    let mut b = GraphBuilder::new(n);
    // Intra-community edges: per community of size s, expected s*intra/2.
    for (c, &s) in sizes.iter().enumerate() {
        if s < 2 {
            continue;
        }
        let start = starts[c] as Node;
        let want = ((s as f64) * params.intra_degree / 2.0).round() as usize;
        let possible = s * (s - 1) / 2;
        let want = want.min(possible);
        for _ in 0..want {
            let u = start + rng.gen_range(0..s as Node);
            let mut v = start + rng.gen_range(0..s as Node);
            if u == v {
                v = start + (v - start + 1) % s as Node;
            }
            b.push_edge(u, v, 1);
        }
    }
    // Inter-community edges: expected n*inter/2 random cross pairs.
    let want_inter = ((n as f64) * params.inter_degree / 2.0).round() as usize;
    for _ in 0..want_inter {
        let u = rng.gen_range(0..n as Node);
        let v = rng.gen_range(0..n as Node);
        if community[u as usize] != community[v as usize] {
            b.push_edge(u, v, 1);
        }
    }
    (crate::ensure_connected(b.build()), community)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgp_graph::metrics::modularity;

    #[test]
    fn ground_truth_has_high_modularity() {
        let (g, truth) = sbm(2000, SbmParams::default(), 1);
        assert_eq!(g.n(), 2000);
        assert!(g.is_connected());
        let q = modularity(&g, &truth);
        assert!(q > 0.3, "planted structure should be strong, Q = {q}");
        g.validate().unwrap();
    }

    #[test]
    fn sizes_respect_minimum() {
        let (_, truth) = sbm(
            1000,
            SbmParams {
                min_community: 32,
                ..Default::default()
            },
            2,
        );
        let k = *truth.iter().max().unwrap() as usize + 1;
        let mut counts = vec![0usize; k];
        for &c in &truth {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c >= 32), "{counts:?}");
    }

    #[test]
    fn deterministic() {
        let (a, ta) = sbm(500, SbmParams::default(), 3);
        let (b, tb) = sbm(500, SbmParams::default(), 3);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn multiple_communities_exist() {
        let (_, truth) = sbm(3000, SbmParams::default(), 4);
        let k = *truth.iter().max().unwrap() as usize + 1;
        assert!(k >= 10, "expected many communities, got {k}");
    }
}
