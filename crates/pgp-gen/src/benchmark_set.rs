//! Scaled stand-ins for the paper's benchmark set (Table I).
//!
//! The original instances are real web crawls, social networks and FEM
//! meshes up to 3.3 G edges. We reproduce the *class* of every instance
//! with a synthetic generator of matching character (degree distribution,
//! community structure, locality) at laptop scale — see DESIGN.md §2 for
//! the substitution argument. Relative sizes between instances are kept.

use crate::{delaunay, ensure_connected, mesh, rgg, sbm};
use pgp_graph::CsrGraph;

/// Rough instance classification from Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphClass {
    /// Social networks and web graphs ("S").
    Social,
    /// Mesh-type networks ("M").
    Mesh,
}

/// A named benchmark instance.
pub struct Instance {
    /// The paper's instance name this stands in for.
    pub name: &'static str,
    /// S or M (drives the size-constraint factor `f`).
    pub class: GraphClass,
    /// The graph.
    pub graph: CsrGraph,
}

/// Size tier: shifts every instance's log₂ size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// ~0.5–2 K nodes per instance: integration tests.
    Tiny,
    /// ~4–16 K nodes: default benchmark harness tier.
    Small,
    /// ~16–64 K nodes: slower, closer shapes.
    Medium,
}

impl Tier {
    fn shift(self) -> i32 {
        match self {
            Tier::Tiny => -3,
            Tier::Small => 0,
            Tier::Medium => 2,
        }
    }
}

fn sc(base: u32, tier: Tier) -> u32 {
    (base as i32 + tier.shift()).max(6) as u32
}

/// Builds one named stand-in instance. Panics on unknown names; see
/// [`MAIN_SET`] and [`LARGE_WEB_SET`] for the available names.
pub fn instance(name: &str, tier: Tier, seed: u64) -> Instance {
    use GraphClass::*;
    let (class, graph) = match name {
        // ---- Large Graphs (Table I, upper block) -----------------------
        // amazon: co-purchase network, mild communities, low degree.
        "amazon" => (Social, {
            let (g, _) = sbm::sbm(
                1usize << sc(12, tier),
                sbm::SbmParams {
                    intra_degree: 8.0,
                    inter_degree: 3.0,
                    ..Default::default()
                },
                seed,
            );
            g
        }),
        // eu-2005: web crawl, dense, very skewed.
        "eu-2005" => (Social, web(sc(13, tier), 24, seed)),
        // youtube: social network, low average degree, giant hubs, but
        // still community-structured (user groups/channels).
        "youtube" => (Social, {
            let (g, _) = crate::webgraph::web_graph(
                1usize << sc(13, tier),
                crate::webgraph::WebGraphParams {
                    intra_degree: 4.0,
                    inter_degree: 1.6,
                    min_community: 24,
                    ..Default::default()
                },
                seed,
            );
            g
        }),
        // in-2004: web crawl, moderately dense.
        "in-2004" => (Social, web(sc(13, tier), 16, seed)),
        // packing: 3D mesh.
        "packing" => (Mesh, mesh3d(sc(13, tier))),
        // enwiki: dense link graph.
        "enwiki" => (Social, web(sc(13, tier), 32, seed)),
        // channel: 3D mesh, denser.
        "channel" => (Mesh, mesh3d(sc(13, tier) + 1)),
        // hugebubble-10: 2D mesh, very sparse (avg degree 3).
        "hugebubbles" => (Mesh, mesh2d(sc(14, tier))),
        // nlpkkt240: 3D-structured optimization matrix, dense mesh.
        "nlpkkt240" => (Mesh, mesh3d(sc(14, tier))),
        // uk-2002: large web crawl.
        "uk-2002" => (Social, web(sc(14, tier), 24, seed)),
        // del26 / rgg26: the synthetic families, directly reproduced.
        "del26" => (Mesh, delaunay::delaunay_x(sc(14, tier), seed)),
        "rgg26" => (Mesh, ensure_connected(rgg::rgg_x(sc(14, tier), seed))),
        // ---- Larger Web Graphs (Table I, lower block) -------------------
        "arabic-2005" => (Social, web(sc(15, tier), 32, seed)),
        "sk-2005" => (Social, web(sc(16, tier), 40, seed)),
        "uk-2007" => (Social, web(sc(17, tier), 32, seed)),
        other => panic!("unknown benchmark instance '{other}'"),
    };
    Instance {
        name: match name {
            "amazon" => "amazon",
            "eu-2005" => "eu-2005",
            "youtube" => "youtube",
            "in-2004" => "in-2004",
            "packing" => "packing",
            "enwiki" => "enwiki",
            "channel" => "channel",
            "hugebubbles" => "hugebubbles",
            "nlpkkt240" => "nlpkkt240",
            "uk-2002" => "uk-2002",
            "del26" => "del26",
            "rgg26" => "rgg26",
            "arabic-2005" => "arabic-2005",
            "sk-2005" => "sk-2005",
            _ => "uk-2007",
        },
        class,
        graph,
    }
}

fn web(scale: u32, avg_deg: usize, seed: u64) -> CsrGraph {
    // Web crawls combine hub pages with very strong site-level community
    // structure; see `crate::webgraph` for why pure R-MAT is not a
    // faithful stand-in here.
    let (g, _) = crate::webgraph::web_graph(
        1usize << scale,
        crate::webgraph::WebGraphParams {
            intra_degree: avg_deg as f64 * 0.85,
            inter_degree: avg_deg as f64 * 0.15,
            ..Default::default()
        },
        seed,
    );
    g
}

fn mesh3d(log_n: u32) -> CsrGraph {
    // Factor 2^log_n into three near-equal dimensions.
    let nx = 1usize << (log_n / 3 + (log_n % 3).min(1));
    let ny = 1usize << (log_n / 3 + if log_n % 3 == 2 { 1 } else { 0 });
    let nz = 1usize << (log_n / 3);
    mesh::grid3d(nx, ny, nz)
}

fn mesh2d(log_n: u32) -> CsrGraph {
    let nx = 1usize << (log_n / 2 + log_n % 2);
    let ny = 1usize << (log_n / 2);
    mesh::grid2d(nx, ny)
}

/// The instance names of Table I's upper block (the per-instance quality
/// comparison of Tables II/III).
pub const MAIN_SET: [&str; 12] = [
    "amazon",
    "eu-2005",
    "youtube",
    "in-2004",
    "packing",
    "enwiki",
    "channel",
    "hugebubbles",
    "nlpkkt240",
    "uk-2002",
    "del26",
    "rgg26",
];

/// Table I's lower block — the graphs ParMetis fails on.
pub const LARGE_WEB_SET: [&str; 3] = ["arabic-2005", "sk-2005", "uk-2007"];

/// Builds the full main benchmark set at a tier.
pub fn main_set(tier: Tier, seed: u64) -> Vec<Instance> {
    MAIN_SET
        .iter()
        .map(|name| instance(name, tier, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_instances_build_at_tiny_tier() {
        for name in MAIN_SET {
            let inst = instance(name, Tier::Tiny, 1);
            assert!(inst.graph.n() >= 64, "{name} too small: {}", inst.graph.n());
            assert!(inst.graph.m() > 0, "{name} has no edges");
            inst.graph.validate().unwrap();
        }
    }

    #[test]
    fn classes_match_table1() {
        assert_eq!(instance("youtube", Tier::Tiny, 1).class, GraphClass::Social);
        assert_eq!(instance("channel", Tier::Tiny, 1).class, GraphClass::Mesh);
        assert_eq!(instance("rgg26", Tier::Tiny, 1).class, GraphClass::Mesh);
        assert_eq!(instance("uk-2002", Tier::Tiny, 1).class, GraphClass::Social);
    }

    #[test]
    fn social_instances_are_skewed_mesh_instances_are_not() {
        // Hub sizes grow with the instance (BA hubs scale like sqrt of the
        // community size), so measure at the benchmark default tier.
        let web = instance("eu-2005", Tier::Small, 3);
        let m = instance("channel", Tier::Tiny, 3);
        let web_skew = web.graph.max_degree() as f64 / web.graph.avg_degree();
        let mesh_skew = m.graph.max_degree() as f64 / m.graph.avg_degree();
        assert!(web_skew > 5.0, "web skew {web_skew}");
        assert!(mesh_skew < 2.0, "mesh skew {mesh_skew}");
    }

    #[test]
    fn larger_webs_are_larger() {
        let small = instance("arabic-2005", Tier::Tiny, 1);
        let big = instance("uk-2007", Tier::Tiny, 1);
        assert!(big.graph.n() > small.graph.n());
    }

    #[test]
    #[should_panic(expected = "unknown benchmark instance")]
    fn unknown_name_panics() {
        instance("orkut", Tier::Tiny, 1);
    }

    #[test]
    fn tiers_scale_sizes() {
        let t = instance("youtube", Tier::Tiny, 1).graph.n();
        let s = instance("youtube", Tier::Small, 1).graph.n();
        assert!(s >= 8 * t / 2, "small {s} vs tiny {t}");
    }
}
