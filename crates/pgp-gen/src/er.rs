//! Erdős–Rényi random graphs.

use pgp_graph::{CsrGraph, GraphBuilder, Node};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `G(n, m)`: exactly `m` distinct random edges (after deduplication the
/// count can be marginally lower on dense inputs; resampling keeps it
/// exact for `m ≤ n(n−1)/4`).
pub fn gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2 || m == 0, "need at least two nodes for edges");
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_m, "m = {m} exceeds the {max_m} possible edges");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.gen_range(0..n as Node);
        let v = rng.gen_range(0..n as Node);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.push_edge(u, v, 1);
        }
    }
    b.build()
}

/// `G(n, p)`: every pair independently with probability `p`. Uses geometric
/// skipping, `O(n + m)` expected time.
pub fn gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    let log1mp = (1.0 - p).ln();
    let mut idx: u64 = 0;
    // Iterate over selected pair indices by geometric jumps.
    loop {
        let skip = if p >= 1.0 {
            1
        } else {
            let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            1 + (r.ln() / log1mp).floor() as u64
        };
        idx = idx.saturating_add(skip);
        if idx > total_pairs {
            break;
        }
        let (u, v) = pair_of_index(idx - 1, n as u64);
        b.push_edge(u as Node, v as Node, 1);
    }
    b.build()
}

/// Maps a linear index in `0..n(n−1)/2` to the lexicographic pair `(u, v)`,
/// `u < v`. Row `u` starts at offset `u(2n−u−1)/2`.
fn pair_of_index(k: u64, n: u64) -> (u64, u64) {
    let row_start = |u: u64| u * (2 * n - u - 1) / 2;
    // Quadratic initial guess, then fix up floating-point drift.
    let kf = k as f64;
    let nf = n as f64;
    let disc = ((2.0 * nf - 1.0).powi(2) - 8.0 * kf).max(0.0);
    let mut u = (((2.0 * nf - 1.0 - disc.sqrt()) / 2.0) as u64).min(n - 2);
    loop {
        if u > 0 && k < row_start(u) {
            u -= 1;
        } else if u + 2 < n && k >= row_start(u + 1) {
            u += 1;
        } else {
            let v = u + 1 + (k - row_start(u));
            return (u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(50, 200, 1);
        assert_eq!(g.n(), 50);
        assert_eq!(g.m(), 200);
        g.validate().unwrap();
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(gnm(30, 60, 9), gnm(30, 60, 9));
        assert_ne!(gnm(30, 60, 9), gnm(30, 60, 10));
    }

    #[test]
    fn gnm_complete_graph() {
        let g = gnm(5, 10, 3);
        assert_eq!(g.m(), 10);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn gnp_edge_count_in_expected_range() {
        let n = 200;
        let p = 0.05;
        let g = gnp(n, p, 7);
        let expect = (n * (n - 1) / 2) as f64 * p;
        assert!(
            (g.m() as f64) > expect * 0.7 && (g.m() as f64) < expect * 1.3,
            "m = {} vs expected {expect}",
            g.m()
        );
        g.validate().unwrap();
    }

    #[test]
    fn gnp_p_zero_and_small_n() {
        assert_eq!(gnp(10, 0.0, 1).m(), 0);
        assert_eq!(gnp(1, 0.5, 1).m(), 0);
        assert_eq!(gnp(0, 0.5, 1).n(), 0);
    }

    #[test]
    fn pair_of_index_is_bijective() {
        let n = 9u64;
        let mut seen = std::collections::HashSet::new();
        for k in 0..n * (n - 1) / 2 {
            let (u, v) = pair_of_index(k, n);
            assert!(u < v && v < n, "k={k} -> ({u},{v})");
            assert!(seen.insert((u, v)));
        }
    }
}
