//! Delaunay triangulations — the paper's `delX` family: the graph of the
//! Delaunay triangulation of `2^X` random points in the unit square.
//!
//! From-scratch Bowyer–Watson implementation:
//! * points are inserted in Morton (Z-curve) order, so the *walking* point
//!   location starts from a nearby triangle and takes O(1) expected steps;
//! * the insertion cavity (all triangles whose circumcircle contains the
//!   point) is grown by BFS and retriangulated as a fan;
//! * a super-triangle far outside the unit square bounds the construction
//!   and is removed at extraction time.
//!
//! Expected `O(n log n)` (sorting) + `O(n)` (insertion) time for random
//! points.

use pgp_graph::{CsrGraph, GraphBuilder, Node};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NONE: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Tri {
    /// Vertices, counter-clockwise.
    v: [u32; 3],
    /// `nbr[i]` is the triangle across the edge opposite `v[i]`.
    nbr: [u32; 3],
    alive: bool,
}

/// `delX`: Delaunay triangulation of `2^x` uniform random points.
pub fn delaunay_x(x: u32, seed: u64) -> CsrGraph {
    delaunay_random(1usize << x, seed)
}

/// Delaunay triangulation graph of `n` uniform random points in the unit
/// square.
pub fn delaunay_random(n: usize, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    delaunay_graph(&points)
}

/// Delaunay triangulation graph of explicit points (all coordinates must be
/// finite and within a bounded region; the unit square is the intended
/// domain).
pub fn delaunay_graph(points: &[(f64, f64)]) -> CsrGraph {
    let n = points.len();
    if n < 2 {
        return GraphBuilder::new(n).build();
    }
    if n == 2 {
        return GraphBuilder::new(2).add_edge(0, 1).build();
    }
    let t = Triangulator::run(points);
    t.extract_graph(n)
}

struct Triangulator {
    /// Input points followed by the 3 super-triangle vertices.
    pts: Vec<(f64, f64)>,
    tris: Vec<Tri>,
    /// Hint triangle for the next point location walk.
    last: u32,
}

impl Triangulator {
    fn run(points: &[(f64, f64)]) -> Self {
        let n = points.len();
        let mut pts = points.to_vec();
        // Super-triangle comfortably containing the data's bounding box.
        let (mut lo_x, mut lo_y, mut hi_x, mut hi_y) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
        for &(x, y) in points {
            assert!(x.is_finite() && y.is_finite(), "non-finite coordinate");
            lo_x = lo_x.min(x);
            lo_y = lo_y.min(y);
            hi_x = hi_x.max(x);
            hi_y = hi_y.max(y);
        }
        let span = (hi_x - lo_x).max(hi_y - lo_y).max(1.0);
        let (cx, cy) = ((lo_x + hi_x) / 2.0, (lo_y + hi_y) / 2.0);
        let s = 64.0 * span;
        let a = (cx - s, cy - s);
        let b = (cx + s, cy - s);
        let c = (cx, cy + s);
        pts.push(a);
        pts.push(b);
        pts.push(c);
        let (sa, sb, sc) = (n as u32, n as u32 + 1, n as u32 + 2);

        let mut t = Self {
            pts,
            tris: vec![Tri {
                v: [sa, sb, sc],
                nbr: [NONE, NONE, NONE],
                alive: true,
            }],
            last: 0,
        };

        // Morton-order insertion for walk locality.
        let mut order: Vec<u32> = (0..n as u32).collect();
        let morton = |p: (f64, f64)| -> u64 {
            let qx = (((p.0 - lo_x) / span).clamp(0.0, 1.0) * 65535.0) as u64;
            let qy = (((p.1 - lo_y) / span).clamp(0.0, 1.0) * 65535.0) as u64;
            interleave16(qx) | (interleave16(qy) << 1)
        };
        order.sort_by_key(|&i| morton(points[i as usize]));

        for &i in &order {
            t.insert(i);
        }
        t
    }

    /// Inserts point `p` via cavity retriangulation.
    fn insert(&mut self, p: u32) {
        let start = self.locate(p);
        // Grow the cavity: all triangles whose circumcircle contains p.
        let mut cavity: Vec<u32> = vec![start];
        let mut stack = vec![start];
        self.tris[start as usize].alive = false; // reuse `alive` as "visited"
                                                 // Boundary edges as (a, b, outside_tri) with the cavity to the left.
        let mut boundary: Vec<(u32, u32, u32)> = Vec::new();
        while let Some(ti) = stack.pop() {
            let tri = self.tris[ti as usize];
            for i in 0..3 {
                let nb = tri.nbr[i];
                let (ea, eb) = (tri.v[(i + 1) % 3], tri.v[(i + 2) % 3]);
                if nb == NONE {
                    boundary.push((ea, eb, NONE));
                } else if self.tris[nb as usize].alive {
                    if self.in_circumcircle(nb, p) {
                        self.tris[nb as usize].alive = false;
                        cavity.push(nb);
                        stack.push(nb);
                    } else {
                        boundary.push((ea, eb, nb));
                    }
                }
                // Dead neighbours are interior cavity edges: skip.
            }
        }

        // Fan retriangulation: one new triangle (a, b, p) per boundary edge.
        let mut edge_links: std::collections::HashMap<u32, (u32, u8)> =
            std::collections::HashMap::with_capacity(boundary.len() * 2);
        let mut first_new = NONE;
        for &(a, b, outside) in &boundary {
            let ti = self.alloc(Tri {
                v: [a, b, p],
                nbr: [NONE, NONE, outside],
                alive: true,
            });
            if first_new == NONE {
                first_new = ti;
            }
            // Hook the outside triangle back to us.
            if outside != NONE {
                let o = &mut self.tris[outside as usize];
                for j in 0..3 {
                    let (oa, ob) = (o.v[(j + 1) % 3], o.v[(j + 2) % 3]);
                    if (oa == b && ob == a) || (oa == a && ob == b) {
                        o.nbr[j] = ti;
                    }
                }
            }
            // Internal edges {p,a} (slot 1: opposite b) and {b,p} (slot 0:
            // opposite a): each boundary vertex joins exactly two new
            // triangles; link them when the partner appears.
            for (vertex, slot) in [(a, 1u8), (b, 0u8)] {
                match edge_links.remove(&vertex) {
                    Some((other_ti, other_slot)) => {
                        self.tris[ti as usize].nbr[slot as usize] = other_ti;
                        self.tris[other_ti as usize].nbr[other_slot as usize] = ti;
                    }
                    None => {
                        edge_links.insert(vertex, (ti, slot));
                    }
                }
            }
        }
        debug_assert!(edge_links.is_empty(), "cavity boundary was not a cycle");
        let _ = cavity;
        self.last = first_new;
    }

    /// Allocates a triangle slot (no free-list: dead triangles are simply
    /// abandoned; memory is O(total insertions), fine at our scales).
    fn alloc(&mut self, t: Tri) -> u32 {
        self.tris.push(t);
        (self.tris.len() - 1) as u32
    }

    /// Walking point location from the hint triangle.
    fn locate(&self, p: u32) -> u32 {
        let pp = self.pts[p as usize];
        let mut cur = self.last;
        if !self.tris[cur as usize].alive {
            cur = self
                .tris
                .iter()
                .rposition(|t| t.alive)
                .expect("triangulation non-empty") as u32;
        }
        let mut steps = 0usize;
        let max_steps = 4 * self.tris.len() + 64;
        'walk: loop {
            let tri = &self.tris[cur as usize];
            for i in 0..3 {
                let a = self.pts[tri.v[(i + 1) % 3] as usize];
                let b = self.pts[tri.v[(i + 2) % 3] as usize];
                if orient2d(a, b, pp) < 0.0 {
                    let nb = tri.nbr[i];
                    if nb != NONE {
                        cur = nb;
                        steps += 1;
                        if steps > max_steps {
                            break 'walk;
                        }
                        continue 'walk;
                    }
                }
            }
            // Not strictly right of any edge: p is inside (or on) `cur`.
            return cur;
        }
        // Pathological float case: fall back to scanning all triangles for
        // one whose circumcircle contains p (always exists).
        for (ti, t) in self.tris.iter().enumerate() {
            if t.alive && self.in_circumcircle(ti as u32, p) {
                return ti as u32;
            }
        }
        unreachable!("point {p} not locatable");
    }

    fn in_circumcircle(&self, ti: u32, p: u32) -> bool {
        let t = &self.tris[ti as usize];
        incircle(
            self.pts[t.v[0] as usize],
            self.pts[t.v[1] as usize],
            self.pts[t.v[2] as usize],
            self.pts[p as usize],
        ) > 0.0
    }

    /// Extracts the triangulation edges among the `n` real points. Interior
    /// edges belong to two triangles, so deduplicate before building (the
    /// builder would otherwise sum the unit weights).
    fn extract_graph(&self, n: usize) -> CsrGraph {
        let mut pairs: Vec<(Node, Node)> = Vec::with_capacity(6 * n);
        for t in &self.tris {
            if !t.alive {
                continue;
            }
            for i in 0..3 {
                let (u, v) = (t.v[i], t.v[(i + 1) % 3]);
                if (u as usize) < n && (v as usize) < n && u < v {
                    pairs.push((u, v));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut b = GraphBuilder::with_capacity(n, pairs.len());
        for (u, v) in pairs {
            b.push_edge(u, v, 1);
        }
        b.build()
    }
}

/// Sign of the area of triangle `(a, b, c)`: > 0 iff counter-clockwise.
fn orient2d(a: (f64, f64), b: (f64, f64), c: (f64, f64)) -> f64 {
    (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0)
}

/// Classic incircle determinant: > 0 iff `d` lies strictly inside the
/// circumcircle of CCW triangle `(a, b, c)`.
fn incircle(a: (f64, f64), b: (f64, f64), c: (f64, f64), d: (f64, f64)) -> f64 {
    let (adx, ady) = (a.0 - d.0, a.1 - d.1);
    let (bdx, bdy) = (b.0 - d.0, b.1 - d.1);
    let (cdx, cdy) = (c.0 - d.0, c.1 - d.1);
    let ad = adx * adx + ady * ady;
    let bd = bdx * bdx + bdy * bdy;
    let cd = cdx * cdx + cdy * cdy;
    adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) + ad * (bdx * cdy - bdy * cdx)
}

/// Spreads the low 16 bits of `x` to even bit positions.
fn interleave16(mut x: u64) -> u64 {
    x &= 0xFFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_gives_four_or_five_edges() {
        // A unit square triangulates into 2 triangles: 4 hull edges + 1
        // diagonal.
        let pts = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
        let g = delaunay_graph(&pts);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        assert!(g.is_connected());
        g.validate().unwrap();
    }

    #[test]
    fn delaunay_of_grid_points_has_expected_density() {
        // For n points in general position: m = 3n − 3 − h where h is the
        // hull size. Perturb a grid to be in general position.
        let mut rng = SmallRng::seed_from_u64(5);
        let mut pts = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                pts.push((
                    i as f64 / 12.0 + rng.gen::<f64>() * 1e-3,
                    j as f64 / 12.0 + rng.gen::<f64>() * 1e-3,
                ));
            }
        }
        let g = delaunay_graph(&pts);
        let n = g.n() as i64;
        let m = g.m() as i64;
        assert!(m <= 3 * n - 6, "m = {m} exceeds planar bound");
        assert!(m >= 2 * n, "m = {m} too sparse for a triangulation");
        assert!(g.is_connected());
    }

    #[test]
    fn random_delaunay_is_planar_connected_and_triangular() {
        for seed in [1, 2, 3] {
            let g = delaunay_random(600, seed);
            let n = g.n() as i64;
            let m = g.m() as i64;
            assert!(m <= 3 * n - 6);
            // Random points have small hulls: expect close to 3n edges.
            assert!(m >= 3 * n - 100, "m = {m} for n = {n}");
            assert!(g.is_connected());
            g.validate().unwrap();
        }
    }

    /// Empty-circle property cross-check on a small instance: no point may
    /// lie strictly inside the circumcircle of any output triangle. We
    /// verify via edge flips instead: every Delaunay edge must be locally
    /// Delaunay. Cheap proxy: compare against the O(n^3) brute force
    /// triangle set.
    #[test]
    fn matches_brute_force_delaunay_edges() {
        let mut rng = SmallRng::seed_from_u64(42);
        let pts: Vec<(f64, f64)> = (0..40).map(|_| (rng.gen(), rng.gen())).collect();
        let g = delaunay_graph(&pts);
        // Brute force: edge (i,j) is Delaunay iff some circle through i,j
        // is empty — equivalently iff (i,j) appears in a triangle (a,b)
        // whose circumcircle is empty, or n < 3. Build all empty-circumcircle
        // triangles.
        let n = pts.len();
        let mut pairs: Vec<(Node, Node)> = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                for k in j + 1..n {
                    let (a, b, c) = if orient2d(pts[i], pts[j], pts[k]) > 0.0 {
                        (pts[i], pts[j], pts[k])
                    } else {
                        (pts[i], pts[k], pts[j])
                    };
                    let empty = (0..n)
                        .filter(|&l| l != i && l != j && l != k)
                        .all(|l| incircle(a, b, c, pts[l]) <= 0.0);
                    if empty {
                        pairs.push((i as Node, j as Node));
                        pairs.push((j as Node, k as Node));
                        pairs.push((i as Node, k as Node));
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut expect = GraphBuilder::new(n);
        for (u, v) in pairs {
            expect.push_edge(u, v, 1);
        }
        assert_eq!(g, expect.build());
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(delaunay_graph(&[]).n(), 0);
        assert_eq!(delaunay_graph(&[(0.5, 0.5)]).m(), 0);
        assert_eq!(delaunay_graph(&[(0.0, 0.0), (1.0, 1.0)]).m(), 1);
        let g = delaunay_graph(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)]);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(delaunay_random(200, 9), delaunay_random(200, 9));
        assert_ne!(delaunay_random(200, 9), delaunay_random(200, 10));
    }

    #[test]
    fn delaunay_x_sizes() {
        let g = delaunay_x(9, 1);
        assert_eq!(g.n(), 512);
        assert!(g.is_connected());
    }
}
