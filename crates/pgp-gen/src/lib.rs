//! Graph generators for the ParHIP reproduction.
//!
//! Two families come straight from the paper's evaluation (Section V-A):
//!
//! * [`rgg`] — `rggX`: random geometric graphs of `2^X` points in the unit
//!   square with connection radius `0.55·sqrt(ln n / n)`.
//! * [`delaunay`] — `delX`: Delaunay triangulations of `2^X` random points
//!   in the unit square (a from-scratch Bowyer–Watson implementation).
//!
//! The remaining generators produce *stand-ins* for the paper's real-world
//! benchmark graphs (which are not redistributable): [`rmat`] and
//! [`ba`] for web/social graphs with heavy-tailed degrees, [`sbm`] for
//! social networks with planted community structure, [`mesh`] for the
//! mesh-type instances, [`er`] and [`ws`] as classical references.
//! [`benchmark_set`] assembles scaled versions of Table I from these.
//!
//! All generators are deterministic functions of their seed.

pub mod ba;
pub mod benchmark_set;
pub mod delaunay;
pub mod er;
pub mod mesh;
pub mod rgg;
pub mod rmat;
pub mod sbm;
pub mod webgraph;
pub mod ws;

use pgp_graph::{CsrGraph, GraphBuilder, Node};

/// Connects a possibly disconnected graph by linking one representative of
/// each connected component to a representative of the next (chain of
/// bridges). Returns the input unchanged when already connected.
///
/// The paper's rgg radius is chosen so the graph is "almost certainly
/// connected"; at our scaled-down sizes stragglers occasionally appear, and
/// several partitioners (region growing in particular) behave better on
/// connected inputs.
pub fn ensure_connected(graph: CsrGraph) -> CsrGraph {
    let n = graph.n();
    if n == 0 {
        return graph;
    }
    let mut comp = vec![usize::MAX; n];
    let mut reps: Vec<Node> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        let c = reps.len();
        reps.push(s as Node);
        comp[s] = c;
        queue.push_back(s as Node);
        while let Some(u) = queue.pop_front() {
            for v in graph.neighbors(u) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = c;
                    queue.push_back(v);
                }
            }
        }
    }
    if reps.len() <= 1 {
        return graph;
    }
    let mut b = GraphBuilder::with_capacity(n, graph.m() + reps.len());
    for (u, v, w) in graph.edges() {
        b.push_edge(u, v, w);
    }
    for w in reps.windows(2) {
        b.push_edge(w[0], w[1], 1);
    }
    b.node_weights(graph.node_weights().to_vec()).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgp_graph::builder::from_edges;

    #[test]
    fn ensure_connected_bridges_components() {
        let g = from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        assert!(!g.is_connected());
        let c = ensure_connected(g);
        assert!(c.is_connected());
        assert_eq!(c.m(), 5);
    }

    #[test]
    fn ensure_connected_is_identity_on_connected() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let c = ensure_connected(g.clone());
        assert_eq!(c, g);
    }

    #[test]
    fn ensure_connected_handles_empty() {
        let g = CsrGraph::empty();
        assert_eq!(ensure_connected(g).n(), 0);
    }
}
