//! Barabási–Albert preferential attachment — a social-network stand-in
//! with a heavy-tailed degree distribution (hubs are exactly what makes
//! matching-based coarsening stall, per the paper's ParMetis analysis).

use pgp_graph::{CsrGraph, GraphBuilder, Node};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// BA graph: starts from a small clique of `m0 = m_attach` nodes, then each
/// new node attaches `m_attach` edges to existing nodes with probability
/// proportional to their degree (repeated-endpoint sampling).
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> CsrGraph {
    assert!(m_attach >= 1, "need at least one attachment per node");
    assert!(n > m_attach, "n must exceed the seed clique size");
    let mut rng = SmallRng::seed_from_u64(seed);
    // `targets` holds each edge endpoint twice: sampling uniformly from it
    // is degree-proportional sampling.
    let mut targets: Vec<Node> = Vec::with_capacity(2 * n * m_attach);
    let mut b = GraphBuilder::with_capacity(n, n * m_attach);
    let m0 = m_attach.max(2);
    for u in 0..m0 {
        for v in (u + 1)..m0 {
            b.push_edge(u as Node, v as Node, 1);
            targets.push(u as Node);
            targets.push(v as Node);
        }
    }
    let mut chosen: Vec<Node> = Vec::with_capacity(m_attach);
    for u in m0..n {
        chosen.clear();
        // Sample m distinct targets (retry duplicates).
        while chosen.len() < m_attach {
            let t = targets[rng.gen_range(0..targets.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.push_edge(u as Node, t, 1);
            targets.push(u as Node);
            targets.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_connectivity() {
        let g = barabasi_albert(500, 3, 1);
        assert_eq!(g.n(), 500);
        // clique(3) + 497 * 3
        assert_eq!(g.m(), 3 + 497 * 3);
        assert!(g.is_connected());
        g.validate().unwrap();
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let g = barabasi_albert(2000, 2, 7);
        let max = g.max_degree() as f64;
        let avg = g.avg_degree();
        // BA hubs grow like sqrt(n): max degree far above average.
        assert!(max > 8.0 * avg, "max {max} vs avg {avg}");
    }

    #[test]
    fn min_degree_is_m() {
        let g = barabasi_albert(300, 4, 3);
        assert!(g.nodes().all(|v| g.degree(v) >= 4));
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(100, 2, 5), barabasi_albert(100, 2, 5));
        assert_ne!(barabasi_albert(100, 2, 5), barabasi_albert(100, 2, 6));
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn rejects_tiny_n() {
        barabasi_albert(2, 2, 1);
    }
}
