//! Regular mesh generators — stand-ins for the paper's mesh-type ("M")
//! instances (packing, channel, hugebubbles, nlpkkt240): bounded degree,
//! strong locality, no community structure.

use pgp_graph::{CsrGraph, GraphBuilder, Node};

/// An `nx × ny` 4-neighbour grid.
pub fn grid2d(nx: usize, ny: usize) -> CsrGraph {
    let n = nx * ny;
    let id = |x: usize, y: usize| (y * nx + x) as Node;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                b.push_edge(id(x, y), id(x + 1, y), 1);
            }
            if y + 1 < ny {
                b.push_edge(id(x, y), id(x, y + 1), 1);
            }
        }
    }
    b.build()
}

/// An `nx × ny` grid with wrap-around edges (torus).
pub fn torus2d(nx: usize, ny: usize) -> CsrGraph {
    assert!(
        nx >= 3 && ny >= 3,
        "torus needs at least 3 nodes per dimension"
    );
    let n = nx * ny;
    let id = |x: usize, y: usize| (y * nx + x) as Node;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for y in 0..ny {
        for x in 0..nx {
            b.push_edge(id(x, y), id((x + 1) % nx, y), 1);
            b.push_edge(id(x, y), id(x, (y + 1) % ny), 1);
        }
    }
    b.build()
}

/// An `nx × ny × nz` 6-neighbour grid.
pub fn grid3d(nx: usize, ny: usize, nz: usize) -> CsrGraph {
    let n = nx * ny * nz;
    let id = |x: usize, y: usize, z: usize| ((z * ny + y) * nx + x) as Node;
    let mut b = GraphBuilder::with_capacity(n, 3 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    b.push_edge(id(x, y, z), id(x + 1, y, z), 1);
                }
                if y + 1 < ny {
                    b.push_edge(id(x, y, z), id(x, y + 1, z), 1);
                }
                if z + 1 < nz {
                    b.push_edge(id(x, y, z), id(x, y, z + 1), 1);
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_counts() {
        let g = grid2d(4, 3);
        assert_eq!(g.n(), 12);
        // horizontal: 3*3, vertical: 4*2
        assert_eq!(g.m(), 9 + 8);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 4);
        g.validate().unwrap();
    }

    #[test]
    fn grid2d_degenerate_path() {
        let g = grid2d(5, 1);
        assert_eq!(g.m(), 4);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn torus_is_regular() {
        let g = torus2d(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 40);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        g.validate().unwrap();
    }

    #[test]
    fn grid3d_counts() {
        let g = grid3d(3, 3, 3);
        assert_eq!(g.n(), 27);
        // 3 directions * 2*3*3 internal links each
        assert_eq!(g.m(), 54);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn grid_bisection_cut_is_sqrt_like() {
        // The optimal vertical bisection of a 16x16 grid cuts 16 edges; a
        // good partitioner relies on this structure existing.
        let g = grid2d(16, 16);
        let assign: Vec<u32> = (0..256).map(|i| if i % 16 < 8 { 0 } else { 1 }).collect();
        let p = pgp_graph::Partition::from_assignment(&g, 2, assign);
        assert_eq!(p.edge_cut(&g), 16);
        assert!(p.is_balanced(&g, 0.0));
    }
}
