//! Random geometric graphs — the paper's `rggX` family (Section V-A):
//! `2^X` points uniform in the unit square, an edge whenever the Euclidean
//! distance is below `0.55·sqrt(ln n / n)` (chosen by the paper so the
//! graph is almost certainly connected).
//!
//! Generation uses grid bucketing with cell size = radius, so only the 3×3
//! cell neighbourhood must be scanned per point: `O(n + m)` expected.

use pgp_graph::{CsrGraph, GraphBuilder, Node};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The paper's connection radius for `n` points.
pub fn paper_radius(n: usize) -> f64 {
    assert!(n >= 2);
    0.55 * ((n as f64).ln() / n as f64).sqrt()
}

/// `rggX`: `2^x` points with the paper's radius.
pub fn rgg_x(x: u32, seed: u64) -> CsrGraph {
    let n = 1usize << x;
    rgg(n, paper_radius(n), seed)
}

/// Random geometric graph over `n` uniform points with connection radius
/// `radius`. Node `i` corresponds to point `i`; points are also returned by
/// [`rgg_with_points`] when coordinates are needed.
pub fn rgg(n: usize, radius: f64, seed: u64) -> CsrGraph {
    rgg_with_points(n, radius, seed).0
}

/// As [`rgg`], additionally returning the point coordinates (used by the
/// Delaunay tests for cross-checking and by geometric examples).
pub fn rgg_with_points(n: usize, radius: f64, seed: u64) -> (CsrGraph, Vec<(f64, f64)>) {
    assert!(radius > 0.0, "radius must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let g = geometric_graph(&points, radius);
    (g, points)
}

/// Builds the geometric graph of explicit points (edge iff distance <
/// radius). Grid-bucketed.
pub fn geometric_graph(points: &[(f64, f64)], radius: f64) -> CsrGraph {
    let n = points.len();
    let cells = ((1.0 / radius).floor() as usize).clamp(1, 1 << 14);
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    // Bucket points.
    let mut bucket_head = vec![u32::MAX; cells * cells];
    let mut bucket_next = vec![u32::MAX; n];
    for (i, &(x, y)) in points.iter().enumerate() {
        let c = cell_of(y) * cells + cell_of(x);
        bucket_next[i] = bucket_head[c];
        bucket_head[c] = i as u32;
    }
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        let x_lo = cx.saturating_sub(1);
        let y_lo = cy.saturating_sub(1);
        for gy in y_lo..=(cy + 1).min(cells - 1) {
            for gx in x_lo..=(cx + 1).min(cells - 1) {
                let mut j = bucket_head[gy * cells + gx];
                while j != u32::MAX {
                    // Each pair once: only link to larger indices.
                    if (j as usize) > i {
                        let (px, py) = points[j as usize];
                        let (dx, dy) = (px - x, py - y);
                        if dx * dx + dy * dy < r2 {
                            b.push_edge(i as Node, j, 1);
                        }
                    }
                    j = bucket_next[j as usize];
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgg_matches_brute_force() {
        let n = 300;
        let r = 0.08;
        let (g, pts) = rgg_with_points(n, r, 11);
        let mut expect = GraphBuilder::new(n);
        for i in 0..n {
            for j in i + 1..n {
                let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                if dx * dx + dy * dy < r * r {
                    expect.push_edge(i as Node, j as Node, 1);
                }
            }
        }
        assert_eq!(g, expect.build());
    }

    #[test]
    fn rgg_x_is_reasonably_dense_and_nearly_connected() {
        let g = rgg_x(10, 3);
        assert_eq!(g.n(), 1024);
        // Paper radius targets avg degree ~ 0.55^2 * pi * ln n ≈ 6.6.
        let avg = g.avg_degree();
        assert!(avg > 4.0 && avg < 10.0, "avg degree {avg}");
        // The paper's radius gives asymptotic connectivity; at this scaled-
        // down n a handful of stragglers are expected — the giant component
        // must still dominate.
        let mut dsu = pgp_graph::dsu::Dsu::new(g.n());
        for (u, v, _) in g.edges() {
            dsu.union(u, v);
        }
        let giant = g.nodes().map(|v| dsu.set_size(v)).max().unwrap() as usize;
        assert!(
            giant > g.n() * 95 / 100,
            "giant component {giant} of {}",
            g.n()
        );
        g.validate().unwrap();
    }

    #[test]
    fn rgg_deterministic_per_seed() {
        assert_eq!(rgg(500, 0.05, 4), rgg(500, 0.05, 4));
        assert_ne!(rgg(500, 0.05, 4), rgg(500, 0.05, 5));
    }

    #[test]
    fn radius_formula() {
        let r = paper_radius(1 << 15);
        let n = (1u64 << 15) as f64;
        assert!((r - 0.55 * (n.ln() / n).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn tiny_instances() {
        let g = rgg(2, 2.0, 1); // radius covers the whole square
        assert_eq!(g.m(), 1);
        let g0 = geometric_graph(&[], 0.1);
        assert_eq!(g0.n(), 0);
    }
}
