//! Web-crawl stand-in generator.
//!
//! Real web graphs (eu-2005, uk-2002, arabic-2005, sk-2005, uk-2007 …)
//! combine two properties that drive the paper's results:
//!
//! 1. **heavy-tailed degrees** (hub pages) — these make matching-based
//!    coarsening stall, ParMetis's failure mode;
//! 2. **very strong community structure** (host-/site-level locality:
//!    most links stay within a site) — this is what cluster contraction
//!    exploits to shrink the graph by orders of magnitude.
//!
//! Pure R-MAT reproduces (1) but not (2) — it is essentially a scale-free
//! random graph, on which *no* partitioner can find a small cut. This
//! generator produces both: power-law-sized communities ("sites"), a
//! Barabási–Albert preferential-attachment graph *inside* each community
//! (hub pages), and degree-proportional inter-community edges (links to
//! popular pages of other sites).

use pgp_graph::{CsrGraph, GraphBuilder, Node};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`web_graph`].
#[derive(Clone, Copy, Debug)]
pub struct WebGraphParams {
    /// Average intra-community degree (site-internal links).
    pub intra_degree: f64,
    /// Average inter-community degree (cross-site links).
    pub inter_degree: f64,
    /// Pareto shape for community ("site") sizes.
    pub size_exponent: f64,
    /// Minimum community size.
    pub min_community: usize,
}

impl Default for WebGraphParams {
    fn default() -> Self {
        Self {
            intra_degree: 14.0,
            inter_degree: 2.0,
            size_exponent: 1.8,
            min_community: 32,
        }
    }
}

/// Generates a web-crawl stand-in with `n` nodes. Returns the graph and
/// the ground-truth community (site) of every node.
pub fn web_graph(n: usize, params: WebGraphParams, seed: u64) -> (CsrGraph, Vec<Node>) {
    assert!(n >= 2 * params.min_community, "n too small for two sites");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Power-law community sizes.
    let mut sizes: Vec<usize> = Vec::new();
    let mut covered = 0usize;
    let max_size = (n / 2).max(params.min_community + 1);
    while covered < n {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let s = (params.min_community as f64 / u.powf(1.0 / params.size_exponent)) as usize;
        let s = s.clamp(params.min_community, max_size).min(n - covered);
        sizes.push(s);
        covered += s;
    }
    if sizes.len() >= 2 && sizes[sizes.len() - 1] < params.min_community {
        let last = sizes.pop().expect("len >= 2 guarantees a tail element");
        *sizes.last_mut().expect("still non-empty after one pop") += last;
    }

    let mut community = vec![0 as Node; n];
    let mut b = GraphBuilder::new(n);
    // Degree-proportional sampling pool per community (BA target trick) and
    // a global pool for inter-community preferential endpoints.
    let mut global_pool: Vec<Node> = Vec::with_capacity(2 * n);
    let mut start = 0usize;
    let m_attach = ((params.intra_degree / 2.0).round() as usize).max(1);
    for (c, &s) in sizes.iter().enumerate() {
        for slot in community.iter_mut().skip(start).take(s) {
            *slot = c as Node;
        }
        // BA inside the community.
        let mut pool: Vec<Node> = Vec::with_capacity(2 * s * m_attach);
        let m0 = (m_attach + 1).min(s);
        for u in 0..m0 {
            for v in (u + 1)..m0 {
                b.push_edge((start + u) as Node, (start + v) as Node, 1);
                pool.push((start + u) as Node);
                pool.push((start + v) as Node);
            }
        }
        let mut chosen: Vec<Node> = Vec::with_capacity(m_attach);
        for u in m0..s {
            chosen.clear();
            let want = m_attach.min(u);
            let mut guard = 0;
            while chosen.len() < want && guard < 64 {
                let t = pool[rng.gen_range(0..pool.len())];
                if !chosen.contains(&t) {
                    chosen.push(t);
                }
                guard += 1;
            }
            for &t in &chosen {
                b.push_edge((start + u) as Node, t, 1);
                pool.push((start + u) as Node);
                pool.push(t);
            }
        }
        global_pool.extend_from_slice(&pool);
        start += s;
    }

    // Inter-community links: both endpoints degree-proportional (links
    // point at popular pages), endpoints in different communities.
    let want_inter = ((n as f64) * params.inter_degree / 2.0).round() as usize;
    let mut made = 0usize;
    let mut guard = 0usize;
    while made < want_inter && guard < want_inter * 20 {
        guard += 1;
        let u = global_pool[rng.gen_range(0..global_pool.len())];
        let v = global_pool[rng.gen_range(0..global_pool.len())];
        if community[u as usize] != community[v as usize] {
            b.push_edge(u, v, 1);
            made += 1;
        }
    }
    (crate::ensure_connected(b.build()), community)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgp_graph::metrics::{coverage, modularity};

    #[test]
    fn has_hubs_and_communities() {
        let (g, truth) = web_graph(8000, WebGraphParams::default(), 1);
        assert_eq!(g.n(), 8000);
        // Heavy tail: hubs far above average. The exact skew of one
        // instance depends on the RNG stream (seeds 1..8 span ≈ 4.8–13×);
        // 4× is the robust lower bound that still rules out Erdős–Rényi-
        // like degree distributions (which concentrate near 2–2.5×).
        let skew = g.max_degree() as f64 / g.avg_degree();
        assert!(skew > 4.0, "degree skew {skew}");
        // Strong community structure.
        let q = modularity(&g, &truth);
        assert!(q > 0.4, "modularity {q}");
        let cov = coverage(&g, &truth);
        assert!(cov > 0.75, "coverage {cov}");
        assert!(g.is_connected());
        g.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        let (a, ta) = web_graph(2000, WebGraphParams::default(), 5);
        let (b, tb) = web_graph(2000, WebGraphParams::default(), 5);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn density_matches_parameters() {
        let params = WebGraphParams {
            intra_degree: 10.0,
            inter_degree: 2.0,
            ..Default::default()
        };
        let (g, _) = web_graph(5000, params, 3);
        let avg = g.avg_degree();
        // Dedup losses make it land below the target but in the ballpark.
        assert!(avg > 6.0 && avg < 13.0, "avg degree {avg}");
    }

    #[test]
    fn community_sizes_are_heavy_tailed() {
        let (_, truth) = web_graph(20_000, WebGraphParams::default(), 7);
        let k = *truth.iter().max().unwrap() as usize + 1;
        let mut counts = vec![0usize; k];
        for &c in &truth {
            counts[c as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(k > 20, "expected many sites, got {k}");
        assert!(max > 4 * min, "sizes too uniform: {min}..{max}");
    }
}
