//! Deterministic fault injection for the simulated PE universe.
//!
//! This crate is the user-facing half of the fault model (DESIGN.md §9):
//! it builds seed-driven [`FaultPlan`]s — message delay/reorder across
//! tags, send drops, induced stalls, and PE kill-at-phase — and installs
//! them into a run via [`pgp_dmp::RunConfig`]. The comm layer consults the
//! plan as a pure decision oracle ([`pgp_dmp::FaultHook`]); payloads and
//! mailbox internals never cross into this crate, and the xtask lint keeps
//! it that way.
//!
//! Every decision is a pure function of `(plan seed, src, dst, tag, seq)`,
//! so replaying the same plan against the same program yields the same
//! faults — chaos runs are reproducible, bisectable, and usable in tests
//! that assert *bit-identical* results against a fault-free run.

use pgp_dmp::runner::{run_config, RunConfig};
use pgp_dmp::{mix_seed, Comm, CommError, FaultHook, SendFault, Tag};
use pgp_graph::ids;
use std::sync::Arc;
use std::time::Duration;

/// Probabilities are expressed per mille (0..=1000) of send events.
const PER_MILLE: u64 = 1000;

/// A deterministic, seed-driven fault plan. Build one with the fluent
/// methods, then install it with [`FaultPlan::into_config`] or run
/// directly via [`chaos_run`].
///
/// Delay injection alone never changes program results on this substrate:
/// the comm layer preserves FIFO per `(src, tag)` and every receive is
/// selective, so reordering *across* tags is invisible to correct
/// protocols — which is exactly what the bit-identical chaos tests prove.
/// Drops and kills, by contrast, are fatal faults: they surface as
/// [`CommError::Timeout`] / [`CommError::PeerDead`] through the watchdog.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Per-mille probability that a send event is delayed.
    delay_per_mille: u64,
    /// Maximum number of send events a delayed message is held across
    /// (the actual hold count is seeded in `1..=max`).
    delay_max_holds: u32,
    /// Per-mille probability that a send event is dropped.
    drop_per_mille: u64,
    /// Per-mille probability that a send event stalls the sender.
    stall_per_mille: u64,
    /// Stall duration in microseconds.
    stall_micros: u64,
    /// `(rank, phase)` pairs: kill `rank` when it starts `phase`.
    kills: Vec<(usize, u64)>,
    /// When set, only send events originating from this rank are faulted
    /// (kills are unaffected — they are already per-rank).
    only_src: Option<usize>,
}

impl FaultPlan {
    /// A plan with the given `seed` and no faults configured.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Delays `per_mille`/1000 of send events, each held across a seeded
    /// `1..=max_holds` subsequent send events (reordering it behind later
    /// traffic to other tags; FIFO per `(src, tag)` is preserved).
    pub fn delay(mut self, per_mille: u64, max_holds: u32) -> Self {
        assert!(per_mille <= PER_MILLE, "probability is per mille");
        self.delay_per_mille = per_mille;
        self.delay_max_holds = max_holds.max(1);
        self
    }

    /// Drops `per_mille`/1000 of send events (lost messages; receivers hit
    /// the watchdog deadline unless the protocol tolerates the loss).
    pub fn drop_sends(mut self, per_mille: u64) -> Self {
        assert!(per_mille <= PER_MILLE, "probability is per mille");
        self.drop_per_mille = per_mille;
        self
    }

    /// Stalls the sender for `micros` on `per_mille`/1000 of send events
    /// (wall-clock perturbation only; delivery order is unchanged).
    pub fn stall(mut self, per_mille: u64, micros: u64) -> Self {
        assert!(per_mille <= PER_MILLE, "probability is per mille");
        self.stall_per_mille = per_mille;
        self.stall_micros = micros;
        self
    }

    /// Kills PE `rank` when it starts its `phase`-th tag block (phases are
    /// counted per PE as [`pgp_dmp::Comm::fresh_tag_block`] calls).
    pub fn kill(mut self, rank: usize, phase: u64) -> Self {
        self.kills.push((rank, phase));
        self
    }

    /// Restricts send faults to events originating from `rank`.
    pub fn only_src(mut self, rank: usize) -> Self {
        self.only_src = Some(rank);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured `(rank, phase)` kills — recovery tests compare the
    /// supervisor's dead-rank verdict and recovery count against this.
    pub fn kills(&self) -> &[(usize, u64)] {
        &self.kills
    }

    /// A [`RunConfig`] installing this plan plus a watchdog `deadline`.
    /// Plans with drops or kills should always run under a deadline — the
    /// watchdog is what turns the induced hang into a structured error.
    pub fn into_config(self, deadline: Option<Duration>) -> RunConfig {
        RunConfig {
            deadline,
            fault_hook: Some(Arc::new(self)),
            ..RunConfig::default()
        }
    }

    /// The seeded roll in `0..1000` for one send event and fault `salt`.
    fn roll(&self, salt: u64, src: usize, dst: usize, tag: Tag, seq: u64) -> u64 {
        let mut h = mix_seed(self.seed, salt);
        h = mix_seed(h, ids::count_global(src));
        h = mix_seed(h, ids::count_global(dst).wrapping_add(tag));
        mix_seed(h, seq) % PER_MILLE
    }
}

// Distinct salts keep the three fault categories' rolls independent.
const SALT_DROP: u64 = 0xD0;
const SALT_DELAY: u64 = 0xDE1;
const SALT_HOLDS: u64 = 0x401D;
const SALT_STALL: u64 = 0x57A11;

impl FaultHook for FaultPlan {
    fn on_send(&self, src: usize, dst: usize, tag: Tag, seq: u64) -> SendFault {
        if self.only_src.is_some_and(|only| only != src) {
            return SendFault::Deliver;
        }
        if self.drop_per_mille > 0 && self.roll(SALT_DROP, src, dst, tag, seq) < self.drop_per_mille
        {
            return SendFault::Drop;
        }
        if self.delay_per_mille > 0
            && self.roll(SALT_DELAY, src, dst, tag, seq) < self.delay_per_mille
        {
            let span = u64::from(self.delay_max_holds);
            let holds = 1 + self.roll(SALT_HOLDS, src, dst, tag, seq) % span;
            return SendFault::Delay {
                holds: u32::try_from(holds).expect("holds bounded by delay_max_holds (u32)"),
            };
        }
        if self.stall_per_mille > 0
            && self.roll(SALT_STALL, src, dst, tag, seq) < self.stall_per_mille
        {
            return SendFault::Stall {
                micros: self.stall_micros,
            };
        }
        SendFault::Deliver
    }

    fn kill_at_phase(&self, rank: usize) -> Option<u64> {
        self.kills
            .iter()
            .find(|&&(r, _)| r == rank)
            .map(|&(_, phase)| phase)
    }
}

/// Runs `f` on `p` PEs under `plan` with watchdog `deadline`; returns each
/// PE's outcome. Convenience wrapper over [`run_config`].
pub fn chaos_run<R, F>(
    p: usize,
    plan: FaultPlan,
    deadline: Duration,
    f: F,
) -> Vec<Result<R, CommError>>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    run_config(p, plan.into_config(Some(deadline)), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(42).delay(300, 4).drop_sends(50);
        let b = FaultPlan::new(42).delay(300, 4).drop_sends(50);
        for seq in 0..200 {
            assert_eq!(a.on_send(0, 1, 7, seq), b.on_send(0, 1, 7, seq));
        }
    }

    #[test]
    fn different_seeds_give_different_decisions() {
        let a = FaultPlan::new(1).delay(500, 4);
        let b = FaultPlan::new(2).delay(500, 4);
        let differs = (0..200).any(|seq| a.on_send(0, 1, 7, seq) != b.on_send(0, 1, 7, seq));
        assert!(differs, "seeds 1 and 2 produced identical 200-event plans");
    }

    #[test]
    fn fault_free_plan_always_delivers() {
        let plan = FaultPlan::new(7);
        for seq in 0..100 {
            assert_eq!(plan.on_send(0, 1, 3, seq), SendFault::Deliver);
        }
        assert_eq!(plan.kill_at_phase(0), None);
    }

    #[test]
    fn only_src_scopes_faults() {
        let plan = FaultPlan::new(9).drop_sends(1000).only_src(2);
        for seq in 0..50 {
            assert_eq!(plan.on_send(0, 1, 3, seq), SendFault::Deliver);
            assert_eq!(plan.on_send(2, 1, 3, seq), SendFault::Drop);
        }
    }

    #[test]
    fn kill_registers_for_the_right_rank() {
        let plan = FaultPlan::new(0).kill(3, 17);
        assert_eq!(plan.kill_at_phase(3), Some(17));
        assert_eq!(plan.kill_at_phase(2), None);
        assert_eq!(plan.kills(), &[(3, 17)]);
    }

    #[test]
    fn probabilities_are_roughly_honored() {
        let plan = FaultPlan::new(1234).drop_sends(250);
        let drops = (0..4000)
            .filter(|&seq| plan.on_send(0, 1, 5, seq) == SendFault::Drop)
            .count();
        // 25% ± generous slack; the roll is a hash, not a strict RNG.
        assert!((600..=1400).contains(&drops), "drop count {drops}/4000");
    }
}
