//! Chaos suite for the comm substrate (ISSUE 3 satellite): collectives
//! under seeded delay + cross-tag reorder must be *bit-identical* to the
//! fault-free run, and induced hangs must fail structurally within the
//! watchdog deadline instead of parking forever.

use pgp_chaos::{chaos_run, FaultPlan};
use pgp_dmp::collectives::{allgatherv, alltoallv, barrier};
use pgp_dmp::{run, CommError};
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(10);

/// A multi-round alltoallv workload with rank- and round-dependent
/// payloads: plenty of concurrent tags to reorder across.
fn alltoallv_workload(comm: &pgp_dmp::Comm) -> Vec<Vec<u64>> {
    let p = comm.size();
    let mut received = Vec::new();
    for round in 0..6u64 {
        let sends: Vec<Vec<u64>> = (0..p)
            .map(|dst| {
                (0..1 + (comm.rank() + dst + round as usize) % 4)
                    .map(|i| {
                        round * 1_000_000
                            + (comm.rank() as u64) * 10_000
                            + (dst as u64) * 100
                            + i as u64
                    })
                    .collect()
            })
            .collect();
        received.extend(alltoallv(comm, sends));
    }
    received
}

/// A multi-round allgatherv workload.
fn allgatherv_workload(comm: &pgp_dmp::Comm) -> Vec<u64> {
    let mut out = Vec::new();
    for round in 0..6u64 {
        let mine: Vec<u64> = (0..1 + comm.rank() % 3)
            .map(|i| round * 1000 + (comm.rank() as u64) * 10 + i as u64)
            .collect();
        out.extend(allgatherv(comm, mine));
        barrier(comm);
    }
    out
}

#[test]
fn alltoallv_bit_identical_under_delay_reorder() {
    for p in [2, 4] {
        let clean = run(p, alltoallv_workload);
        for seed in [1u64, 42, 777] {
            let plan = FaultPlan::new(seed).delay(400, 5);
            let chaotic = chaos_run(p, plan, DEADLINE, alltoallv_workload);
            let chaotic: Vec<_> = chaotic
                .into_iter()
                .map(|r| r.expect("delay injection must not fail a run"))
                .collect();
            assert_eq!(
                clean, chaotic,
                "alltoallv diverged under delay plan seed {seed}, p={p}"
            );
        }
    }
}

#[test]
fn allgatherv_bit_identical_under_delay_reorder() {
    for p in [2, 4] {
        let clean = run(p, allgatherv_workload);
        for seed in [3u64, 99] {
            let plan = FaultPlan::new(seed).delay(500, 6);
            let chaotic = chaos_run(p, plan, DEADLINE, allgatherv_workload);
            let chaotic: Vec<_> = chaotic
                .into_iter()
                .map(|r| r.expect("delay injection must not fail a run"))
                .collect();
            assert_eq!(
                clean, chaotic,
                "allgatherv diverged under delay plan seed {seed}, p={p}"
            );
        }
    }
}

#[test]
fn watchdog_fires_on_recv_recv_deadlock() {
    // Classic induced deadlock: both PEs receive before either sends. The
    // watchdog must convert the hang into structured errors on both ranks,
    // well before the test harness' own timeout.
    let t0 = Instant::now();
    let results = chaos_run(2, FaultPlan::new(0), Duration::from_millis(80), |comm| {
        let peer = 1 - comm.rank();
        let v: u64 = comm.recv(peer, 1); // deadlock: nobody has sent yet
        comm.send(peer, 1, v);
    });
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "watchdog failed to bound the deadlock"
    );
    for (rank, r) in results.iter().enumerate() {
        assert!(
            matches!(
                r,
                Err(CommError::Timeout { .. }) | Err(CommError::PeerDead { .. })
            ),
            "rank {rank} should fail structurally, got {r:?}"
        );
    }
    assert!(
        results
            .iter()
            .any(|r| matches!(r, Err(CommError::Timeout { .. }))),
        "at least one rank must report the originating timeout"
    );
}

#[test]
fn dropped_send_surfaces_as_timeout() {
    let plan = FaultPlan::new(5).drop_sends(1000).only_src(0);
    let results = chaos_run(2, plan, Duration::from_millis(80), |comm| {
        if comm.rank() == 0 {
            comm.send(1, 9, 123u64);
            0
        } else {
            comm.recv::<u64>(0, 9)
        }
    });
    assert!(
        matches!(
            results[1],
            Err(CommError::Timeout {
                rank: 1,
                src: 0,
                tag: 9
            })
        ),
        "receiver of a dropped message must time out, got {:?}",
        results[1]
    );
}

#[test]
fn killed_pe_yields_peer_dead_everywhere() {
    // Rank 1 dies at its first phase; rank 0 parks in a collective that
    // needs it. Every rank's outcome must name the dead PE.
    let plan = FaultPlan::new(0).kill(1, 0);
    let t0 = Instant::now();
    let results = chaos_run(3, plan, Duration::from_secs(5), |comm| {
        barrier(comm);
        comm.rank()
    });
    assert!(t0.elapsed() < Duration::from_secs(4), "kill must not hang");
    for (rank, r) in results.iter().enumerate() {
        match r {
            Err(CommError::PeerDead { dead, .. }) => assert_eq!(*dead, 1),
            Err(CommError::Timeout { .. }) if rank != 1 => {}
            other => panic!("rank {rank}: expected structured failure, got {other:?}"),
        }
    }
    assert!(
        matches!(results[1], Err(CommError::PeerDead { rank: 1, dead: 1 })),
        "the killed rank must report its own death, got {:?}",
        results[1]
    );
}

#[test]
fn stall_injection_changes_timing_not_results() {
    let clean = run(3, allgatherv_workload);
    let plan = FaultPlan::new(11).stall(300, 200);
    let stalled = chaos_run(3, plan, DEADLINE, allgatherv_workload);
    let stalled: Vec<_> = stalled
        .into_iter()
        .map(|r| r.expect("stalls must not fail a run"))
        .collect();
    assert_eq!(clean, stalled);
}

/// Injected stall time must surface in the trace as a distinct `Fault`
/// event on the PE *doing the stalling* — never silently folded into the
/// receive-wait blame of some innocent peer. The peers' waits, in turn,
/// must blame the stalled PE: that is exactly the straggler-attribution
/// picture a chaos stall is supposed to produce.
#[test]
fn stall_time_is_a_fault_event_and_blame_names_the_stalled_pe() {
    use pgp_obs::{FaultKind, TraceEventKind};
    use std::sync::Arc;

    let obs = pgp_obs::Obs::with_trace(3, 1 << 16);
    // Every send from PE 2 stalls 500 µs; nobody else is touched.
    let mut rc = FaultPlan::new(7)
        .stall(1000, 500)
        .only_src(2)
        .into_config(Some(DEADLINE));
    rc.obs = Some(Arc::clone(&obs));
    // Star-topology rounds: PEs 0 and 1 exchange only with PE 2, never
    // with each other, and every round's sends are posted before any PE
    // blocks. Receive waits can then only be caused by a slow *sender*
    // talking to the waiter directly — the cleanest attribution target.
    // (All-to-all rounds would cascade: PE 2's staggered stalled sends
    // skew 0 and 1 against each other, smearing blame onto innocents.)
    let results = pgp_dmp::run_config(3, rc, |comm| {
        let rec = comm.recorder();
        rec.enter("exchange");
        for round in 0..8u64 {
            let tag = comm.fresh_tag_block();
            if comm.rank() == 2 {
                comm.send(0, tag, round);
                comm.send(1, tag, round);
                assert_eq!(comm.recv::<u64>(0, tag), round);
                assert_eq!(comm.recv::<u64>(1, tag), round);
            } else {
                comm.send(2, tag, round);
                assert_eq!(comm.recv::<u64>(2, tag), round);
            }
        }
        rec.exit("exchange");
    });
    for r in results {
        r.expect("stalls must not fail a run");
    }
    let trace = obs.trace().expect("registry was built with tracing on");

    // The stall shows up as Fault events on PE 2 and only PE 2.
    for pe in &trace.per_pe {
        let stall_faults = pe
            .events
            .iter()
            .filter(|e| {
                matches!(
                    &e.kind,
                    TraceEventKind::Fault {
                        kind: FaultKind::Stall,
                        ..
                    }
                )
            })
            .count();
        if pe.rank == 2 {
            assert!(stall_faults > 0, "the stalled PE must record fault events");
        } else {
            assert_eq!(
                stall_faults, 0,
                "rank {} recorded someone else's stall",
                pe.rank
            );
        }
    }

    // Receive-wait blame points at the stalled PE, overwhelmingly.
    let blame = trace.blame_by_peer();
    let total: u64 = blame.values().sum();
    let on_stalled = blame.get(&2).copied().unwrap_or(0);
    assert!(total > 0, "stalls must induce measurable receive waits");
    assert!(
        on_stalled * 10 >= total * 9,
        "PE 2 must own >= 90% of attributed wait, got {on_stalled} of {total} ns"
    );
}

#[test]
fn chaos_runs_are_reproducible() {
    let plan = || FaultPlan::new(21).delay(300, 4).stall(100, 50);
    let a = chaos_run(3, plan(), DEADLINE, alltoallv_workload);
    let b = chaos_run(3, plan(), DEADLINE, alltoallv_workload);
    let unwrap = |v: Vec<Result<Vec<Vec<u64>>, CommError>>| -> Vec<Vec<Vec<u64>>> {
        v.into_iter().map(|r| r.expect("delay-only plan")).collect()
    };
    assert_eq!(unwrap(a), unwrap(b));
}
