//! Graph-derived chunking for the intra-PE SCLP worker pool (DESIGN.md §13).
//!
//! A PE's owned-node visit order is split into **fixed, graph-derived
//! chunk boundaries**; chunks are claimed by a small pool of scoped worker
//! threads and their proposed moves are merged back **in chunk-index
//! order** on the PE thread. Two invariants make the scheme deterministic:
//!
//! 1. The chunk *count* and *boundaries* depend only on the graph (node
//!    count, degree volume), never on the worker count — so the same
//!    `(seed, p)` run produces identical chunk work-lists for every
//!    `threads_per_pe ≥ 2`.
//! 2. Workers read **round-start** shared state plus their own in-chunk
//!    deltas; all mutation happens on the PE thread during the ordered
//!    merge. Which worker ran a chunk (and when) can therefore never leak
//!    into the result.
//!
//! The pool is built on `std::thread::scope` — no new dependencies, no
//! long-lived threads, workers live exactly one superstep.

use pgp_graph::Node;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Target degree-volume per chunk, in `degree + 1` units. Chosen so the
/// per-chunk compute dwarfs the claim/merge overhead at bench scales
/// while small coarse levels collapse to a single chunk.
const TARGET_CHUNK_NODES: usize = 2048;

/// Hard cap on chunks per PE: merge cost is linear in the chunk count and
/// more chunks buy no extra balance once every worker owns several.
const MAX_CHUNKS: usize = 32;

/// Picks the number of chunks for `n_local` owned nodes. Deliberately
/// **graph-derived only** — independent of `threads_per_pe` — so the
/// chunked SCLP result is bit-identical for every worker count ≥ 2 (see
/// the module docs). Always ≥ 1.
pub fn chunk_count(n_local: usize) -> usize {
    (n_local / TARGET_CHUNK_NODES).clamp(1, MAX_CHUNKS)
}

/// Splits `order` into `chunks` contiguous position ranges with roughly
/// equal total `volume` (degree-proportional in cluster mode, so chunks
/// of a power-law degree order cost about the same to process). Returns
/// `chunks + 1` nondecreasing boundaries starting at 0 and ending at
/// `order.len()`; every chunk is non-empty whenever `order.len() ≥ chunks`.
pub fn balanced_bounds(order: &[Node], volume: impl Fn(Node) -> u64, chunks: usize) -> Vec<usize> {
    let n = order.len();
    let chunks = chunks.clamp(1, n.max(1));
    let total: u64 = order.iter().map(|&v| volume(v)).sum::<u64>().max(1);
    let mut bounds = Vec::with_capacity(chunks + 1);
    bounds.push(0usize);
    let mut acc = 0u64;
    for (pos, &v) in order.iter().enumerate() {
        acc += volume(v);
        if bounds.len() < chunks {
            let i = bounds.len(); // 1-based index of the chunk being filled
            let left_after = n - (pos + 1);
            let need = chunks - i; // later chunks each need ≥ 1 position
            let crossed = acc.saturating_mul(chunks as u64) >= total.saturating_mul(i as u64);
            if left_after == need || (left_after > need && crossed) {
                bounds.push(pos + 1);
            }
        }
    }
    while bounds.len() < chunks {
        bounds.push(n); // only reachable when order is empty
    }
    bounds.push(n);
    bounds
}

/// Uniform positional boundaries over `0..n` (refine mode shuffles its
/// visit order every round, so positions are already volume-random and an
/// even split balances in expectation).
pub fn uniform_bounds(n: usize, chunks: usize) -> Vec<usize> {
    let chunks = chunks.clamp(1, n.max(1));
    (0..=chunks).map(|i| i * n / chunks).collect()
}

/// Runs `work(chunk_index, lo, hi)` for every chunk of `bounds` on a pool
/// of `threads` scoped workers and returns the outputs **in chunk-index
/// order**. Chunks are claimed dynamically (atomic counter) so a slow
/// chunk never idles the pool, but because each `work` call may only read
/// shared round-start state, the claim order cannot affect any output —
/// only the returned ordering matters, and that is fixed here.
pub fn run_chunks<Out, F>(threads: usize, bounds: &[usize], work: F) -> Vec<Out>
where
    Out: Send,
    F: Fn(usize, usize, usize) -> Out + Sync,
{
    let chunks = bounds.len().saturating_sub(1);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Out>> = Vec::with_capacity(chunks);
    slots.resize_with(chunks, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.max(1).min(chunks.max(1)))
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= chunks {
                            break;
                        }
                        produced.push((i, work(i, bounds[i], bounds[i + 1])));
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            for (i, out) in h.join().expect("SCLP chunk worker panicked") {
                slots[i] = Some(out);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every chunk claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_count_is_graph_derived_and_bounded() {
        assert_eq!(chunk_count(0), 1);
        assert_eq!(chunk_count(100), 1);
        assert_eq!(chunk_count(TARGET_CHUNK_NODES * 4), 4);
        assert_eq!(chunk_count(usize::MAX / 2), MAX_CHUNKS);
    }

    #[test]
    fn balanced_bounds_cover_and_balance() {
        // Power-law-ish volumes: the heavy head must not land in one chunk.
        let order: Vec<Node> = (0..1000).collect();
        let volume = |v: Node| 1 + u64::from(v % 97) * u64::from(v % 97);
        let chunks = 8;
        let b = balanced_bounds(&order, volume, chunks);
        assert_eq!(b.len(), chunks + 1);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), order.len());
        assert!(b.windows(2).all(|w| w[0] < w[1]), "empty chunk in {b:?}");
        let total: u64 = order.iter().map(|&v| volume(v)).sum();
        for w in b.windows(2) {
            let vol: u64 = order[w[0]..w[1]].iter().map(|&v| volume(v)).sum();
            // Each chunk within 3x of the even share (greedy splitting can
            // overshoot by at most one node's volume).
            assert!(vol <= 3 * total / chunks as u64, "chunk volume {vol}");
        }
    }

    #[test]
    fn balanced_bounds_degenerate_sizes() {
        assert_eq!(balanced_bounds(&[], |_| 1, 4), vec![0, 0]);
        assert_eq!(balanced_bounds(&[7], |_| 1, 4), vec![0, 1]);
        let b = balanced_bounds(&[1, 2, 3], |_| 1, 3);
        assert_eq!(b, vec![0, 1, 2, 3]);
    }

    #[test]
    fn uniform_bounds_cover() {
        assert_eq!(uniform_bounds(10, 4), vec![0, 2, 5, 7, 10]);
        assert_eq!(uniform_bounds(0, 4), vec![0, 0]);
        assert_eq!(uniform_bounds(3, 8), vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_chunks_returns_chunk_index_order_for_any_pool_size() {
        let bounds: Vec<usize> = (0..=16).map(|i| i * 5).collect();
        let expected: Vec<(usize, usize, usize)> =
            (0..16).map(|i| (i, i * 5, (i + 1) * 5)).collect();
        for threads in [1usize, 2, 3, 4, 8, 32] {
            let outs = run_chunks(threads, &bounds, |i, lo, hi| (i, lo, hi));
            assert_eq!(outs, expected, "threads={threads}");
        }
    }

    #[test]
    fn run_chunks_single_chunk_and_empty_range() {
        let outs = run_chunks(4, &[0, 0], |i, lo, hi| (i, lo, hi));
        assert_eq!(outs, vec![(0, 0, 0)]);
    }
}
