//! Neighbour-cluster aggregation map.
//!
//! When the label propagation algorithm visits a node it must find the
//! cluster with the strongest connection among its neighbours' clusters.
//! Cluster IDs are arbitrary values in `0..n`, so the paper uses *hashing
//! with linear probing* sized by the maximum degree, reporting it "much
//! faster than the hash map of the STL" — this module reproduces that
//! structure (and the `cluster_map` Criterion bench compares it against
//! `std::collections::HashMap`).

use pgp_graph::{Node, Weight};

const EMPTY: u64 = u64::MAX;

/// An open-addressing accumulation map `cluster ID → connection weight`
/// with O(degree) clear via a used-slot stack.
pub struct ClusterMap {
    keys: Vec<u64>,
    vals: Vec<Weight>,
    used: Vec<u32>,
    mask: usize,
}

impl ClusterMap {
    /// Creates a map able to aggregate at least `max_degree` distinct
    /// clusters without exceeding 50 % load.
    pub fn with_max_degree(max_degree: usize) -> Self {
        let cap = (max_degree.max(4) * 2).next_power_of_two();
        Self {
            keys: vec![EMPTY; cap],
            vals: vec![0; cap],
            used: Vec::with_capacity(max_degree.max(4)),
            mask: cap - 1,
        }
    }

    /// Grows the table so at least `max_degree` distinct clusters fit at
    /// ≤ 50 % load. The map must be empty (entries would need rehashing);
    /// callers reuse one map across graphs and regrow at graph boundaries.
    pub fn ensure_degree(&mut self, max_degree: usize) {
        assert!(self.used.is_empty(), "ensure_degree on a non-empty map");
        let cap = (max_degree.max(4) * 2).next_power_of_two();
        if cap <= self.keys.len() {
            return;
        }
        self.keys = vec![EMPTY; cap];
        self.vals = vec![0; cap];
        self.mask = cap - 1;
    }

    /// Removes all entries (O(#entries), not O(capacity)).
    #[inline]
    pub fn clear(&mut self) {
        for &slot in &self.used {
            self.keys[slot as usize] = EMPTY;
            self.vals[slot as usize] = 0;
        }
        self.used.clear();
    }

    /// Number of distinct clusters currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.used.len()
    }

    /// True iff no clusters are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.used.is_empty()
    }

    /// Adds `w` to cluster `c`'s accumulated connection weight.
    #[inline]
    pub fn add(&mut self, c: Node, w: Weight) {
        let mut i = splitmix(c as u64) as usize & self.mask;
        loop {
            let k = self.keys[i];
            if k == c as u64 {
                self.vals[i] += w;
                return;
            }
            if k == EMPTY {
                self.keys[i] = c as u64;
                self.vals[i] = w;
                self.used.push(i as u32);
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Accumulated weight of cluster `c` (0 when absent).
    #[inline]
    pub fn get(&self, c: Node) -> Weight {
        let mut i = splitmix(c as u64) as usize & self.mask;
        loop {
            let k = self.keys[i];
            if k == c as u64 {
                return self.vals[i];
            }
            if k == EMPTY {
                return 0;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Iterates over `(cluster, weight)` entries in insertion order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (Node, Weight)> + '_ {
        self.used
            .iter()
            .map(move |&slot| (self.keys[slot as usize] as Node, self.vals[slot as usize]))
    }
}

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_clears() {
        let mut m = ClusterMap::with_max_degree(8);
        m.add(5, 2);
        m.add(9, 1);
        m.add(5, 3);
        assert_eq!(m.get(5), 5);
        assert_eq!(m.get(9), 1);
        assert_eq!(m.get(7), 0);
        assert_eq!(m.len(), 2);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(5), 0);
    }

    #[test]
    fn survives_many_distinct_keys() {
        let mut m = ClusterMap::with_max_degree(64);
        for c in 0..64u32 {
            m.add(c * 1000, c as Weight + 1);
        }
        assert_eq!(m.len(), 64);
        for c in 0..64u32 {
            assert_eq!(m.get(c * 1000), c as Weight + 1);
        }
    }

    #[test]
    fn iter_matches_adds() {
        let mut m = ClusterMap::with_max_degree(4);
        m.add(1, 10);
        m.add(2, 20);
        m.add(1, 5);
        let mut got: Vec<_> = m.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(1, 15), (2, 20)]);
    }

    #[test]
    fn reuse_after_clear_is_clean() {
        let mut m = ClusterMap::with_max_degree(4);
        for round in 0..100u64 {
            m.clear();
            m.add(round as Node, round);
            m.add((round + 1) as Node, 1);
            assert_eq!(m.len(), 2);
            assert_eq!(m.get(round as Node), round);
        }
    }

    #[test]
    fn matches_std_hashmap_on_random_workload() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut m = ClusterMap::with_max_degree(128);
        let mut reference = std::collections::HashMap::new();
        for _ in 0..128 {
            let c: Node = rng.gen_range(0..40);
            let w: Weight = rng.gen_range(1..10);
            m.add(c, w);
            *reference.entry(c).or_insert(0u64) += w;
        }
        assert_eq!(m.len(), reference.len());
        for (&c, &w) in &reference {
            assert_eq!(m.get(c), w);
        }
    }
}
