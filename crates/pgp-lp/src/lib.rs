//! Size-constrained label propagation (SCLP) — the paper's workhorse for
//! both coarsening (cluster mode) and refinement.
//!
//! * [`cluster_map`] — the linear-probing aggregation table of §IV-A.
//! * [`seq`] — the sequential algorithm of §III-A (used inside KaFFPa-lite
//!   and as the reference implementation).
//! * [`par`] — the distributed-memory parallelization of §IV-A/IV-B on the
//!   `pgp-dmp` substrate: phase-overlapped ghost exchange, localized
//!   cluster weights during coarsening, allreduce-exact block weights
//!   during refinement.
//! * [`chunk`] — graph-derived chunk boundaries and the scoped worker
//!   pool behind the hybrid shared-memory × message-passing SCLP
//!   (`threads_per_pe` ≥ 2; DESIGN.md §13).

pub mod chunk;
pub mod cluster_map;
pub mod par;
pub mod seq;

pub use cluster_map::ClusterMap;
pub use par::{
    parallel_sclp_cluster, parallel_sclp_cluster_with_scratch, parallel_sclp_refine,
    parallel_sclp_refine_with_scratch, singleton_labels, SclpScratch,
};
pub use seq::{sclp, sclp_active, sclp_cluster, sclp_refine, Mode, Order, SclpConfig, SclpStats};
