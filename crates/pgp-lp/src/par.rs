//! Parallel size-constrained label propagation (Sections IV-A and IV-B).
//!
//! Each PE iterates over its owned nodes; ghost labels are refreshed through
//! the phase-overlapped [`LabelExchange`]. The two roles differ in how block
//! weights are maintained, exactly as in the paper:
//!
//! * **Clustering** (coarsening): there are up to `n` clusters, so no PE can
//!   hold all weights. Each PE keeps a *localized* map with the weights of
//!   the clusters its local and ghost nodes belong to — exact at
//!   initialization (every cluster is a singleton), updated on local moves
//!   and on incoming ghost updates, never communicated. The `U = Lmax/f`
//!   bound is soft; concurrent moves on different PEs may overshoot it
//!   slightly, which the paper explicitly tolerates.
//! * **Refinement**: only `k` blocks, so exact global weights are restored
//!   with one `allreduce` per computation phase (ParMetis-style); between
//!   allreduces each PE sees `exact + own local deltas`. The allreduce
//!   carries the per-phase *delta* vector, not a recount of all local
//!   nodes — `exact + Σ deltas` is maintained incrementally and checked
//!   against a full recount under `debug_assertions` (and by the
//!   `pgp-check` claimed-weights validator). To *guarantee* the balance
//!   constraint (the paper reports ParMetis drifting to 6 % imbalance;
//!   ParHIP does not), each PE additionally limits the weight it moves into
//!   any block per phase to its `1/p` share of the block's remaining slack.
//!
//! Both modes draw their visit order and neighbour-aggregation map from a
//! [`SclpScratch`], which caches the degree order per graph so repeated
//! invocations on the same graph (V-cycles, multiple refinement levels)
//! skip the O(n log n) re-sort and all per-call allocations.
//!
//! ## Intra-PE worker pool (hybrid parallelism, DESIGN.md §13)
//!
//! When the run grants a PE more than one thread
//! ([`Comm::threads_per_pe`] > 1), each round is processed as a chunked
//! superstep: the visit order is split at fixed, graph-derived boundaries
//! (see [`crate::chunk`], cached in the scratch), scoped workers propose
//! moves per chunk against **round-start** labels/weights plus their own
//! in-chunk deltas, and the PE thread merges the proposals **in
//! chunk-index order**, re-validating each against the merged weights
//! (cluster: the soft `U` bound; refine: the true per-phase inflow
//! budget, so the `Lmax` guarantee is preserved exactly). The result is
//! bit-identical for a fixed `(seed, p)` across every `threads_per_pe ≥
//! 2`; `threads_per_pe = 1` takes the classic sequential path below,
//! unchanged. The two paths differ (in-round staleness vs. full
//! asynchrony), which is exactly the staleness the paper's localized
//! weights already absorb across PEs.

use crate::chunk;
use crate::cluster_map::ClusterMap;
use crate::seq::SclpStats;
use pgp_dmp::collectives::{allreduce_sum, allreduce_sum_vec, allreduce_sum_vec_i64};
use pgp_dmp::{Comm, DistGraph, LabelExchange};
use pgp_graph::ids;
use pgp_graph::{Node, Weight};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;

/// Reusable SCLP working memory: visit orders and the neighbour-cluster
/// aggregation map, cached per graph.
///
/// The degree order and map capacity only depend on the graph, so one
/// scratch threaded through a whole V-cycle run recomputes them once per
/// distinct level instead of once per SCLP call ([`prepare`](Self) is a
/// fingerprint-guarded no-op when the graph is unchanged).
pub struct SclpScratch {
    /// Fingerprint of the graph the cached fields belong to.
    fingerprint: Option<u64>,
    /// Local nodes in degree-increasing order (cluster-mode visit order).
    degree_order: Vec<Node>,
    /// Maximum local degree (sizes `map`).
    max_degree: usize,
    /// Refine-mode shuffle buffer (reset to identity at each call).
    index_order: Vec<Node>,
    /// Neighbour-cluster aggregation map, regrown at graph boundaries.
    map: ClusterMap,
    /// Cluster-mode chunk boundaries over `degree_order`, balanced by
    /// degree volume (see [`chunk::balanced_bounds`]).
    cluster_bounds: Vec<usize>,
    /// Refine-mode chunk boundaries over the per-round shuffled order
    /// (uniform positional split; see [`chunk::uniform_bounds`]).
    refine_bounds: Vec<usize>,
}

impl SclpScratch {
    /// Creates an empty scratch; the first SCLP call fills it.
    pub fn new() -> Self {
        Self {
            fingerprint: None,
            degree_order: Vec::new(),
            max_degree: 0,
            index_order: Vec::new(),
            map: ClusterMap::with_max_degree(1),
            cluster_bounds: Vec::new(),
            refine_bounds: Vec::new(),
        }
    }

    /// Points the scratch at `graph`: recomputes the degree order, chunk
    /// boundaries, and the map capacity when the graph changed since the
    /// last call; a no-op when it did not (the same finest graph recurs
    /// once per V-cycle). The guard compares [`DistGraph`]'s cached
    /// degree fingerprint — O(1), computed once at graph assembly —
    /// instead of re-hashing the offset array on every SCLP call.
    fn prepare(&mut self, graph: &DistGraph) {
        let fp = graph.degree_fingerprint();
        if self.fingerprint == Some(fp) {
            return;
        }
        self.fingerprint = Some(fp);
        self.degree_order.clear();
        self.degree_order
            .extend(0..ids::node_of_index(graph.n_local()));
        self.degree_order.sort_by_key(|&v| graph.degree(v));
        self.max_degree = self
            .degree_order
            .last()
            .map(|&v| graph.degree(v))
            .unwrap_or(0);
        self.map.clear();
        self.map.ensure_degree(self.max_degree.max(1));
        // Chunk boundaries for the intra-PE worker pool: graph-derived so
        // every threads_per_pe ≥ 2 sees the same work-lists.
        let chunks = chunk::chunk_count(graph.n_local());
        self.cluster_bounds = chunk::balanced_bounds(
            &self.degree_order,
            |v| ids::count_global(graph.degree(v) + 1),
            chunks,
        );
        self.refine_bounds = chunk::uniform_bounds(graph.n_local(), chunks);
    }
}

impl Default for SclpScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Applies a signed allreduced weight delta to the exact block weights.
fn apply_weight_delta(exact: &mut [u64], delta: &[i64]) {
    for (w, &d) in exact.iter_mut().zip(delta) {
        let next = i64::try_from(*w).expect("block weight fits in i64") + d;
        *w = u64::try_from(next).expect("block weight stays non-negative");
    }
}

/// Initial clustering labels: every node (owned and ghost) starts in its
/// own singleton cluster, identified by *global* node ID.
pub fn singleton_labels(graph: &DistGraph) -> Vec<Node> {
    (0..ids::node_of_index(graph.n_local() + graph.n_ghost()))
        .map(|l| graph.local_to_global(l))
        .collect()
}

/// Parallel SCLP in **cluster mode**. `labels` covers owned + ghost nodes
/// and holds global cluster IDs (see [`singleton_labels`]). `constraint`,
/// when given (V-cycles), also covers owned + ghost nodes and holds the
/// input-partition block of each node; clusters never straddle blocks.
///
/// Returns statistics; `labels` is updated in place. Allocates fresh
/// working memory — callers with repeated invocations should use
/// [`parallel_sclp_cluster_with_scratch`].
pub fn parallel_sclp_cluster(
    comm: &Comm,
    graph: &DistGraph,
    u_bound: Weight,
    iterations: usize,
    seed: u64,
    labels: &mut [Node],
    constraint: Option<&[Node]>,
) -> SclpStats {
    let mut scratch = SclpScratch::new();
    parallel_sclp_cluster_with_scratch(
        comm,
        graph,
        u_bound,
        iterations,
        seed,
        labels,
        constraint,
        &mut scratch,
    )
}

/// As [`parallel_sclp_cluster`], drawing visit order and aggregation map
/// from `scratch` (recomputed only when `graph` differs from the scratch's
/// last graph).
#[allow(clippy::too_many_arguments)] // the scratch-threading variant of an already-wide API
pub fn parallel_sclp_cluster_with_scratch(
    comm: &Comm,
    graph: &DistGraph,
    u_bound: Weight,
    iterations: usize,
    seed: u64,
    labels: &mut [Node],
    constraint: Option<&[Node]>,
    scratch: &mut SclpScratch,
) -> SclpStats {
    let n_local = graph.n_local();
    let n_all = n_local + graph.n_ghost();
    assert_eq!(labels.len(), n_all, "labels must cover owned + ghost nodes");
    if let Some(c) = constraint {
        assert_eq!(c.len(), n_all, "constraint must cover owned + ghost nodes");
    }
    let rank_seed = pgp_dmp::mix_seed(seed, ids::count_global(comm.rank()));
    let mut rng = SmallRng::seed_from_u64(rank_seed);

    // Localized cluster weights: exact at init because every cluster the PE
    // can see is composed of nodes the PE can see (singletons). Sized once;
    // FxHash because keys are node IDs, not attacker-controlled input.
    let mut weights: FxHashMap<Node, i64> =
        FxHashMap::with_capacity_and_hasher(n_all, Default::default());
    for l in 0..ids::node_of_index(n_all) {
        *weights.entry(labels[ids::node_index(l)]).or_insert(0) += graph.node_weight(l) as i64;
    }

    let mut exchange = LabelExchange::new(comm, graph);
    scratch.prepare(graph);
    let threads = comm.threads_per_pe();
    let SclpScratch {
        degree_order: order,
        map,
        max_degree,
        cluster_bounds,
        ..
    } = scratch;
    let max_degree = *max_degree;

    let mut stats = SclpStats::default();
    for round in 0..iterations {
        let _round_span = comm.recorder().span("sclp_round");
        // Round marker for the live telemetry plane (SPMD-uniform).
        comm.recorder()
            .set_round(u32::try_from(round).unwrap_or(u32::MAX));
        let moved = if threads > 1 {
            cluster_round_chunked(
                comm,
                graph,
                u_bound,
                pgp_dmp::mix_seed(rank_seed, ids::count_global(round)),
                order,
                cluster_bounds,
                max_degree,
                threads,
                labels,
                constraint,
                &mut weights,
                &mut exchange,
            )
        } else {
            let mut moved = 0u64;
            for &v in order.iter() {
                if graph.degree(v) == 0 {
                    continue;
                }
                let cur = labels[ids::node_index(v)];
                map.clear();
                match constraint {
                    None => {
                        for (u, w) in graph.neighbors(v) {
                            map.add(labels[ids::node_index(u)], w);
                        }
                    }
                    Some(cons) => {
                        let cv = cons[ids::node_index(v)];
                        for (u, w) in graph.neighbors(v) {
                            if cons[ids::node_index(u)] == cv {
                                map.add(labels[ids::node_index(u)], w);
                            }
                        }
                    }
                }
                let cv_weight = graph.node_weight(v) as i64;
                let mut best = cur;
                let mut best_w = map.get(cur);
                let mut ties = 1u32;
                for (c, w) in map.iter() {
                    if c == cur {
                        continue;
                    }
                    let target_weight = weights.get(&c).copied().unwrap_or(0).max(0);
                    if target_weight + cv_weight > u_bound as i64 {
                        continue;
                    }
                    if w > best_w {
                        best = c;
                        best_w = w;
                        ties = 1;
                    } else if w == best_w && best != cur {
                        ties += 1;
                        if rng.gen_range(0..ties) == 0 {
                            best = c;
                        }
                    } else if w == best_w && w > 0 && best == cur {
                        // Equal to the stay-weight: prefer staying (stability).
                    }
                }
                if best != cur {
                    *weights.entry(cur).or_insert(0) -= cv_weight;
                    *weights.entry(best).or_insert(0) += cv_weight;
                    labels[ids::node_index(v)] = best;
                    exchange.record(graph, v, best);
                    moved += 1;
                }
            }
            moved
        };
        stats.rounds += 1;
        stats.moves += moved;
        // Phase boundary: overlap scheme — send now, apply phase κ−1.
        exchange.flush_overlap_with(comm, graph, labels, |l, old, new| {
            let w = graph.node_weight(l) as i64;
            *weights.entry(old).or_insert(0) -= w;
            *weights.entry(new).or_insert(0) += w;
        });
        // Convergence is global: stop only when *no* PE moved anything.
        let global_moves = allreduce_sum(comm, moved);
        if global_moves == 0 {
            break;
        }
    }
    exchange.finish_with(comm, graph, labels, |l, old, new| {
        let w = graph.node_weight(l) as i64;
        *weights.entry(old).or_insert(0) -= w;
        *weights.entry(new).or_insert(0) += w;
    });
    stats
}

/// One chunk's proposed moves (`(node, target label)` in chunk-visit
/// order) plus the worker-measured compute time, folded into the phase
/// stats by the merging PE thread.
struct ChunkMoves {
    moves: Vec<(Node, Node)>,
    elapsed_ns: u64,
}

/// One cluster-mode round as a chunked superstep (`threads_per_pe ≥ 2`):
/// workers propose moves per chunk against round-start `labels`/`weights`
/// plus their own in-chunk weight deltas; the PE thread merges proposals
/// in chunk-index order, re-checking the soft `U` bound against the
/// merged weights so a skipped move never desynchronizes labels from
/// weights. Deterministic in `(seed, p)` and independent of `threads`
/// (chunk boundaries and per-chunk RNG streams are graph/round-derived).
#[allow(clippy::too_many_arguments)] // internal seam of an already-wide API
fn cluster_round_chunked(
    comm: &Comm,
    graph: &DistGraph,
    u_bound: Weight,
    round_seed: u64,
    order: &[Node],
    bounds: &[usize],
    max_degree: usize,
    threads: usize,
    labels: &mut [Node],
    constraint: Option<&[Node]>,
    weights: &mut FxHashMap<Node, i64>,
    exchange: &mut LabelExchange,
) -> u64 {
    // Freeze the round-start state for the worker phase: nothing mutates
    // `labels`/`weights` until the merge below, so workers take shared
    // borrows instead of snapshots.
    let labels_r: &[Node] = labels;
    let weights_r: &FxHashMap<Node, i64> = weights;
    let outs = chunk::run_chunks(threads, bounds, |chunk_idx, lo, hi| {
        let t0 = std::time::Instant::now(); // lint:instant-ok: per-chunk compute span, folded into phase stats at merge
        let mut rng =
            SmallRng::seed_from_u64(pgp_dmp::mix_seed(round_seed, ids::count_global(chunk_idx)));
        let mut map = ClusterMap::with_max_degree(max_degree.max(1));
        let mut wdelta: FxHashMap<Node, i64> = FxHashMap::default();
        let mut moves: Vec<(Node, Node)> = Vec::new();
        for &v in &order[lo..hi] {
            if graph.degree(v) == 0 {
                continue;
            }
            let cur = labels_r[ids::node_index(v)];
            map.clear();
            match constraint {
                None => {
                    for (u, w) in graph.neighbors(v) {
                        map.add(labels_r[ids::node_index(u)], w);
                    }
                }
                Some(cons) => {
                    let cv = cons[ids::node_index(v)];
                    for (u, w) in graph.neighbors(v) {
                        if cons[ids::node_index(u)] == cv {
                            map.add(labels_r[ids::node_index(u)], w);
                        }
                    }
                }
            }
            let cv_weight = graph.node_weight(v) as i64;
            let mut best = cur;
            let mut best_w = map.get(cur);
            let mut ties = 1u32;
            for (c, w) in map.iter() {
                if c == cur {
                    continue;
                }
                // Round-start weight plus this chunk's own accepted moves.
                let target_weight = (weights_r.get(&c).copied().unwrap_or(0)
                    + wdelta.get(&c).copied().unwrap_or(0))
                .max(0);
                if target_weight + cv_weight > u_bound as i64 {
                    continue;
                }
                if w > best_w {
                    best = c;
                    best_w = w;
                    ties = 1;
                } else if w == best_w && best != cur {
                    ties += 1;
                    if rng.gen_range(0..ties) == 0 {
                        best = c;
                    }
                } else if w == best_w && w > 0 && best == cur {
                    // Equal to the stay-weight: prefer staying (stability).
                }
            }
            if best != cur {
                *wdelta.entry(cur).or_insert(0) -= cv_weight;
                *wdelta.entry(best).or_insert(0) += cv_weight;
                moves.push((v, best));
            }
        }
        ChunkMoves {
            moves,
            elapsed_ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        }
    });
    // Ordered merge on the PE thread: chunk-index order, re-validated
    // against the *merged* weights. Label and weight updates are applied
    // together, so a skipped proposal leaves both untouched.
    let mut moved = 0u64;
    for out in outs {
        for &(v, best) in &out.moves {
            let cur = labels[ids::node_index(v)];
            let cv_weight = graph.node_weight(v) as i64;
            let target_weight = weights.get(&best).copied().unwrap_or(0).max(0);
            if target_weight + cv_weight > u_bound as i64 {
                continue; // earlier chunks filled the cluster past the soft bound
            }
            *weights.entry(cur).or_insert(0) -= cv_weight;
            *weights.entry(best).or_insert(0) += cv_weight;
            labels[ids::node_index(v)] = best;
            exchange.record(graph, v, best);
            moved += 1;
        }
        comm.recorder()
            .record_phase_ns("sclp_chunk", out.elapsed_ns);
    }
    moved
}

/// Parallel SCLP in **refine mode** over a `k`-way partition. `blocks`
/// covers owned + ghost nodes and holds block IDs (< `k`). Exact global
/// block weights are maintained incrementally (one delta allreduce per
/// phase); per-phase inflow budgeting guarantees `Lmax` is never exceeded.
///
/// Allocates fresh working memory — callers with repeated invocations
/// should use [`parallel_sclp_refine_with_scratch`].
pub fn parallel_sclp_refine(
    comm: &Comm,
    graph: &DistGraph,
    k: usize,
    lmax: Weight,
    iterations: usize,
    seed: u64,
    blocks: &mut [Node],
) -> SclpStats {
    let mut scratch = SclpScratch::new();
    parallel_sclp_refine_with_scratch(comm, graph, k, lmax, iterations, seed, blocks, &mut scratch)
}

/// As [`parallel_sclp_refine`], drawing working memory from `scratch`.
#[allow(clippy::too_many_arguments)] // the scratch-threading variant of an already-wide API
pub fn parallel_sclp_refine_with_scratch(
    comm: &Comm,
    graph: &DistGraph,
    k: usize,
    lmax: Weight,
    iterations: usize,
    seed: u64,
    blocks: &mut [Node],
    scratch: &mut SclpScratch,
) -> SclpStats {
    let _refine_span = comm.recorder().span("refine");
    let n_local = graph.n_local();
    let n_all = n_local + graph.n_ghost();
    assert_eq!(blocks.len(), n_all, "blocks must cover owned + ghost nodes");
    let p: Weight = ids::count_global(comm.size());
    let rank_seed = pgp_dmp::mix_seed(seed, ids::count_global(comm.rank()));
    let mut rng = SmallRng::seed_from_u64(rank_seed);

    // Exact global block weights: full recount once at entry; afterwards
    // only the per-phase deltas are allreduced (see module docs).
    let local_contrib = |blocks: &[Node]| -> Vec<u64> {
        let mut c = vec![0u64; k];
        for v in 0..ids::node_of_index(n_local) {
            c[ids::node_index(blocks[ids::node_index(v)])] += graph.node_weight(v);
        }
        c
    };
    let mut exact: Vec<u64> = allreduce_sum_vec(comm, local_contrib(blocks));

    let mut exchange = LabelExchange::new(comm, graph);
    scratch.prepare(graph);
    let threads = comm.threads_per_pe();
    let SclpScratch {
        index_order: order,
        map,
        max_degree,
        refine_bounds,
        ..
    } = scratch;
    let max_degree = *max_degree;
    // Identity order at entry; within a call the shuffles compound.
    order.clear();
    order.extend(0..ids::node_of_index(n_local));

    // Per-round working vectors, hoisted out of the loop and refilled.
    let mut budget: Vec<i64> = vec![0; k];
    let mut view: Vec<i64> = vec![0; k];
    let mut delta: Vec<i64> = vec![0; k];

    let mut stats = SclpStats::default();
    for round in 0..iterations {
        let _round_span = comm.recorder().span("sclp_round");
        // Round marker for the live telemetry plane (SPMD-uniform).
        comm.recorder()
            .set_round(u32::try_from(round).unwrap_or(u32::MAX));
        order.shuffle(&mut rng);
        // Per-phase inflow budget: the block's remaining slack is split
        // across PEs (floor share + round-robin remainder, rotated per block
        // and round so small slacks still make progress somewhere), so the
        // per-PE inflows can never jointly exceed Lmax. `view` is the PE's
        // live estimate (exact + its own deltas).
        let r = ids::count_global(comm.rank());
        for (b, &w) in exact.iter().enumerate() {
            let slack = lmax.saturating_sub(w);
            let base = slack / p;
            let rotation = r + ids::count_global(b) + ids::count_global(round);
            let extra = u64::from(rotation % p < slack % p);
            budget[b] = (base + extra) as i64;
            view[b] = w as i64;
            delta[b] = 0;
        }
        let moved = if threads > 1 {
            refine_round_chunked(
                comm,
                graph,
                lmax,
                pgp_dmp::mix_seed(rank_seed, ids::count_global(round)),
                order,
                refine_bounds,
                max_degree,
                threads,
                blocks,
                &mut view,
                &mut budget,
                &mut delta,
                &mut exchange,
            )
        } else {
            let mut moved = 0u64;
            for &v in order.iter() {
                if graph.degree(v) == 0 {
                    continue;
                }
                let cur = blocks[ids::node_index(v)];
                map.clear();
                for (u, w) in graph.neighbors(v) {
                    map.add(blocks[ids::node_index(u)], w);
                }
                let cw = graph.node_weight(v) as i64;
                let overloaded = view[ids::node_index(cur)] > lmax as i64;
                let mut best: Node = if overloaded { Node::MAX } else { cur };
                let mut best_w: Weight = if overloaded { 0 } else { map.get(cur) };
                let mut ties = 1u32;
                for (c, w) in map.iter() {
                    if c == cur {
                        continue;
                    }
                    if cw > budget[ids::node_index(c)] {
                        continue; // would risk exceeding Lmax globally
                    }
                    if best == Node::MAX || w > best_w {
                        best = c;
                        best_w = w;
                        ties = 1;
                    } else if w == best_w {
                        ties += 1;
                        if rng.gen_range(0..ties) == 0 {
                            best = c;
                        }
                    }
                }
                if best != cur && best != Node::MAX {
                    view[ids::node_index(cur)] -= cw;
                    view[ids::node_index(best)] += cw;
                    budget[ids::node_index(best)] -= cw;
                    delta[ids::node_index(cur)] -= cw;
                    delta[ids::node_index(best)] += cw;
                    blocks[ids::node_index(v)] = best;
                    exchange.record(graph, v, best);
                    moved += 1;
                }
            }
            moved
        };
        stats.rounds += 1;
        stats.moves += moved;
        // Phase end: exact ghost labels, then exact weights via one delta
        // allreduce (own moves are counted by the owner, so the summed
        // deltas cover every node exactly once).
        exchange.flush_sync(comm, graph, blocks);
        let global_delta = allreduce_sum_vec_i64(comm, std::mem::take(&mut delta));
        apply_weight_delta(&mut exact, &global_delta);
        delta = global_delta;
        #[cfg(debug_assertions)]
        {
            let recount = allreduce_sum_vec(comm, local_contrib(blocks));
            assert_eq!(exact, recount, "incremental block weights drifted");
        }
        let global_moves = allreduce_sum(comm, moved);
        if global_moves == 0 {
            break;
        }
    }

    // Forced balance repair: the overloaded-block rule above only considers
    // *adjacent* blocks, which can strand weight when no boundary to an
    // underloaded block exists (small or disconnected instances). Drain any
    // remaining overload with budget-coordinated moves to arbitrary
    // underloaded blocks (largest connection first, which is usually 0).
    for round in 0..4u64 {
        if exact.iter().all(|&w| w <= lmax) {
            break;
        }
        let r = ids::count_global(comm.rank());
        for (b, &w) in exact.iter().enumerate() {
            let slack = lmax.saturating_sub(w);
            let base = slack / p;
            let extra = u64::from((r + ids::count_global(b) + round) % p < slack % p);
            budget[b] = (base + extra) as i64;
            view[b] = w as i64;
            delta[b] = 0;
        }
        let mut moved = 0u64;
        for v in 0..ids::node_of_index(n_local) {
            let cur = blocks[ids::node_index(v)];
            if view[ids::node_index(cur)] <= lmax as i64 {
                continue;
            }
            let cw = graph.node_weight(v) as i64;
            map.clear();
            for (u, w) in graph.neighbors(v) {
                map.add(blocks[ids::node_index(u)], w);
            }
            // Best target over *all* blocks: maximize connection, break
            // ties toward the lightest block; must fit the budget.
            let mut best: Option<(Weight, i64, Node)> = None;
            for b in 0..ids::node_of_index(k) {
                if b == cur || cw > budget[ids::node_index(b)] {
                    continue;
                }
                let conn = map.get(b);
                let light = -view[ids::node_index(b)];
                if best.map(|(c, l, _)| (conn, light) > (c, l)).unwrap_or(true) {
                    best = Some((conn, light, b));
                }
            }
            if let Some((_, _, b)) = best {
                view[ids::node_index(cur)] -= cw;
                view[ids::node_index(b)] += cw;
                budget[ids::node_index(b)] -= cw;
                delta[ids::node_index(cur)] -= cw;
                delta[ids::node_index(b)] += cw;
                blocks[ids::node_index(v)] = b;
                exchange.record(graph, v, b);
                moved += 1;
            }
        }
        stats.moves += moved;
        exchange.flush_sync(comm, graph, blocks);
        let global_delta = allreduce_sum_vec_i64(comm, std::mem::take(&mut delta));
        apply_weight_delta(&mut exact, &global_delta);
        delta = global_delta;
        #[cfg(debug_assertions)]
        {
            let recount = allreduce_sum_vec(comm, local_contrib(blocks));
            assert_eq!(exact, recount, "incremental block weights drifted");
        }
        if allreduce_sum(comm, moved) == 0 {
            break;
        }
    }
    stats
}

/// One refine-mode round as a chunked superstep (`threads_per_pe ≥ 2`):
/// workers propose moves against round-start `blocks`/`view`/`budget`
/// plus their own in-chunk deltas; the PE thread merges in chunk-index
/// order, re-checking every proposal against the **true** shared inflow
/// budget — the per-PE slack throttle is thereby applied at merge time,
/// so the joint inflows still can never exceed `Lmax` (the exact balance
/// guarantee of the sequential path). `view`/`budget`/`delta` are updated
/// to the merged end-of-round state.
#[allow(clippy::too_many_arguments)] // internal seam of an already-wide API
fn refine_round_chunked(
    comm: &Comm,
    graph: &DistGraph,
    lmax: Weight,
    round_seed: u64,
    order: &[Node],
    bounds: &[usize],
    max_degree: usize,
    threads: usize,
    blocks: &mut [Node],
    view: &mut [i64],
    budget: &mut [i64],
    delta: &mut [i64],
    exchange: &mut LabelExchange,
) -> u64 {
    let k = view.len();
    // Freeze round-start state: workers read, the merge below mutates.
    let blocks_r: &[Node] = blocks;
    let view_r: &[i64] = view;
    let budget_r: &[i64] = budget;
    let outs = chunk::run_chunks(threads, bounds, |chunk_idx, lo, hi| {
        let t0 = std::time::Instant::now(); // lint:instant-ok: per-chunk compute span, folded into phase stats at merge
        let mut rng =
            SmallRng::seed_from_u64(pgp_dmp::mix_seed(round_seed, ids::count_global(chunk_idx)));
        let mut map = ClusterMap::with_max_degree(max_degree.max(1));
        // This chunk's own view deltas and budget consumption, overlaid on
        // the round-start vectors for all in-chunk decisions.
        let mut dview = vec![0i64; k];
        let mut used = vec![0i64; k];
        let mut moves: Vec<(Node, Node)> = Vec::new();
        for &v in &order[lo..hi] {
            if graph.degree(v) == 0 {
                continue;
            }
            let cur = blocks_r[ids::node_index(v)];
            map.clear();
            for (u, w) in graph.neighbors(v) {
                map.add(blocks_r[ids::node_index(u)], w);
            }
            let cw = graph.node_weight(v) as i64;
            let overloaded =
                view_r[ids::node_index(cur)] + dview[ids::node_index(cur)] > lmax as i64;
            let mut best: Node = if overloaded { Node::MAX } else { cur };
            let mut best_w: Weight = if overloaded { 0 } else { map.get(cur) };
            let mut ties = 1u32;
            for (c, w) in map.iter() {
                if c == cur {
                    continue;
                }
                if cw > budget_r[ids::node_index(c)] - used[ids::node_index(c)] {
                    continue; // would risk exceeding Lmax globally
                }
                if best == Node::MAX || w > best_w {
                    best = c;
                    best_w = w;
                    ties = 1;
                } else if w == best_w {
                    ties += 1;
                    if rng.gen_range(0..ties) == 0 {
                        best = c;
                    }
                }
            }
            if best != cur && best != Node::MAX {
                dview[ids::node_index(cur)] -= cw;
                dview[ids::node_index(best)] += cw;
                used[ids::node_index(best)] += cw;
                moves.push((v, best));
            }
        }
        ChunkMoves {
            moves,
            elapsed_ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        }
    });
    // Ordered merge: the real budget is decremented as proposals are
    // accepted, so chunks jointly respect the same per-PE inflow cap the
    // sequential path enforces — skipped proposals simply stay put.
    let mut moved = 0u64;
    for out in outs {
        for &(v, b) in &out.moves {
            let cur = blocks[ids::node_index(v)];
            let cw = graph.node_weight(v) as i64;
            if cw > budget[ids::node_index(b)] {
                continue; // earlier chunks consumed this block's inflow budget
            }
            view[ids::node_index(cur)] -= cw;
            view[ids::node_index(b)] += cw;
            budget[ids::node_index(b)] -= cw;
            delta[ids::node_index(cur)] -= cw;
            delta[ids::node_index(b)] += cw;
            blocks[ids::node_index(v)] = b;
            exchange.record(graph, v, b);
            moved += 1;
        }
        comm.recorder()
            .record_phase_ns("sclp_chunk", out.elapsed_ns);
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgp_dmp::run;
    use pgp_graph::CsrGraph;
    use std::collections::HashMap;

    fn cluster_weights_global(
        g: &CsrGraph,
        all_labels: &[Vec<Node>],
        dists: &[(u64, usize)],
    ) -> HashMap<Node, u64> {
        // Reassemble global labels from per-PE local label slices.
        let mut global = vec![0 as Node; g.n()];
        for (rank, labels) in all_labels.iter().enumerate() {
            let (first, n_local) = dists[rank];
            for i in 0..n_local {
                global[first as usize + i] = labels[i];
            }
        }
        let mut w = HashMap::new();
        for v in g.nodes() {
            *w.entry(global[v as usize]).or_insert(0) += g.node_weight(v);
        }
        w
    }

    #[test]
    fn parallel_clustering_groups_planted_communities() {
        let (g, truth) = pgp_gen::sbm::sbm(600, pgp_gen::sbm::SbmParams::default(), 1);
        let results = run(4, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let mut labels = singleton_labels(&dg);
            parallel_sclp_cluster(comm, &dg, 200, 8, 42, &mut labels, None);
            (
                labels[..dg.n_local()].to_vec(),
                (dg.first_global(), dg.n_local()),
            )
        });
        let labels: Vec<Vec<Node>> = results.iter().map(|r| r.0.clone()).collect();
        let dists: Vec<(u64, usize)> = results.iter().map(|r| r.1).collect();
        // Coverage of the found clustering should be decent given the
        // planted structure.
        let mut global = vec![0 as Node; g.n()];
        for (rank, l) in labels.iter().enumerate() {
            for i in 0..dists[rank].1 {
                global[dists[rank].0 as usize + i] = l[i];
            }
        }
        let cov = pgp_graph::metrics::coverage(&g, &global);
        assert!(cov > 0.55, "coverage {cov}");
        let _ = truth;
        // Far fewer clusters than nodes.
        let distinct: std::collections::HashSet<_> = global.iter().collect();
        assert!(distinct.len() < g.n() / 3, "{} clusters", distinct.len());
    }

    #[test]
    fn parallel_cluster_weights_respect_soft_bound() {
        let g = pgp_gen::mesh::grid2d(20, 20);
        let u = 25u64;
        let results = run(4, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let mut labels = singleton_labels(&dg);
            parallel_sclp_cluster(comm, &dg, u, 6, 7, &mut labels, None);
            (
                labels[..dg.n_local()].to_vec(),
                (dg.first_global(), dg.n_local()),
            )
        });
        let labels: Vec<Vec<Node>> = results.iter().map(|r| r.0.clone()).collect();
        let dists: Vec<(u64, usize)> = results.iter().map(|r| r.1).collect();
        let w = cluster_weights_global(&g, &labels, &dists);
        // Soft bound: slight overshoot from concurrent moves is tolerated
        // (the paper: "it does no harm if a cluster contains slightly more
        // nodes than the upper bound").
        let max = w.values().copied().max().unwrap();
        assert!(max <= 2 * u, "max cluster weight {max} vs U {u}");
    }

    #[test]
    fn parallel_clustering_is_deterministic() {
        let g = pgp_gen::ba::barabasi_albert(400, 3, 2);
        let go = |seed: u64| {
            run(3, |comm| {
                let dg = DistGraph::from_global(comm, &g);
                let mut labels = singleton_labels(&dg);
                parallel_sclp_cluster(comm, &dg, 50, 5, seed, &mut labels, None);
                labels
            })
        };
        assert_eq!(go(5), go(5));
    }

    #[test]
    fn single_pe_matches_own_rerun() {
        let g = pgp_gen::mesh::grid2d(10, 10);
        let a = run(1, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let mut labels = singleton_labels(&dg);
            parallel_sclp_cluster(comm, &dg, 20, 5, 3, &mut labels, None);
            labels
        });
        assert_eq!(a[0].len(), 100);
        let distinct: std::collections::HashSet<_> = a[0].iter().collect();
        assert!(distinct.len() < 50);
    }

    #[test]
    fn scratch_reuse_is_identical_to_fresh() {
        // Reusing one scratch across calls (and across modes) must produce
        // bit-identical results to fresh per-call working memory.
        let g = pgp_gen::ba::barabasi_albert(300, 3, 4);
        let k = 2usize;
        let lmax = pgp_graph::lmax(g.total_node_weight(), k, 0.03);
        let go = |reuse: bool| {
            run(2, |comm| {
                let dg = DistGraph::from_global(comm, &g);
                let mut scratch = SclpScratch::new();
                let mut out = Vec::new();
                for pass in 0..2u64 {
                    let mut labels = singleton_labels(&dg);
                    let mut blocks: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                        .map(|l| dg.local_to_global(l) % k as Node)
                        .collect();
                    if reuse {
                        parallel_sclp_cluster_with_scratch(
                            comm,
                            &dg,
                            40,
                            4,
                            9 + pass,
                            &mut labels,
                            None,
                            &mut scratch,
                        );
                        parallel_sclp_refine_with_scratch(
                            comm,
                            &dg,
                            k,
                            lmax,
                            4,
                            9 + pass,
                            &mut blocks,
                            &mut scratch,
                        );
                    } else {
                        parallel_sclp_cluster(comm, &dg, 40, 4, 9 + pass, &mut labels, None);
                        parallel_sclp_refine(comm, &dg, k, lmax, 4, 9 + pass, &mut blocks);
                    }
                    out.push((labels, blocks));
                }
                out
            })
        };
        assert_eq!(go(true), go(false));
    }

    #[test]
    fn parallel_refine_reduces_cut_and_keeps_balance() {
        use rand::seq::SliceRandom;
        let g = pgp_gen::mesh::grid2d(16, 16);
        let k = 2usize;
        let lmax = pgp_graph::lmax(g.total_node_weight(), k, 0.03);
        // Random balanced bipartition: terrible cut, perfectly balanced.
        let mut rng0 = SmallRng::seed_from_u64(21);
        let mut ids: Vec<usize> = (0..256).collect();
        ids.shuffle(&mut rng0);
        let mut init = vec![0 as Node; 256];
        for &i in &ids[128..] {
            init[i] = 1;
        }
        let init_p = pgp_graph::Partition::from_assignment(&g, k, init.clone());
        let before = init_p.edge_cut(&g);
        let results = run(4, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let mut blocks: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                .map(|l| init[dg.local_to_global(l) as usize])
                .collect();
            parallel_sclp_refine(comm, &dg, k, lmax, 10, 11, &mut blocks);
            (
                blocks[..dg.n_local()].to_vec(),
                (dg.first_global(), dg.n_local()),
            )
        });
        let mut global = vec![0 as Node; g.n()];
        for (part, (first, n_local)) in &results {
            for i in 0..*n_local {
                global[*first as usize + i] = part[i];
            }
        }
        let p = pgp_graph::Partition::from_assignment(&g, k, global);
        let after = p.edge_cut(&g);
        assert!(after < before, "cut {before} -> {after}");
        assert!(
            p.max_block_weight() <= lmax,
            "weight {} > {lmax}",
            p.max_block_weight()
        );
    }

    #[test]
    fn parallel_refine_never_exceeds_lmax() {
        let g = pgp_gen::ba::barabasi_albert(500, 3, 9);
        let k = 4usize;
        let lmax = pgp_graph::lmax(g.total_node_weight(), k, 0.03);
        // Balanced striped init.
        let init: Vec<Node> = (0..500).map(|i| (i % 4) as Node).collect();
        let results = run(4, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let mut blocks: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                .map(|l| init[dg.local_to_global(l) as usize])
                .collect();
            parallel_sclp_refine(comm, &dg, k, lmax, 8, 13, &mut blocks);
            (
                blocks[..dg.n_local()].to_vec(),
                (dg.first_global(), dg.n_local()),
            )
        });
        let mut global = vec![0 as Node; g.n()];
        for (part, (first, n_local)) in &results {
            for i in 0..*n_local {
                global[*first as usize + i] = part[i];
            }
        }
        let p = pgp_graph::Partition::from_assignment(&g, k, global);
        assert!(p.max_block_weight() <= lmax);
    }

    #[test]
    fn vcycle_constraint_holds_in_parallel() {
        let (g, _) = pgp_gen::sbm::sbm(300, pgp_gen::sbm::SbmParams::default(), 5);
        // Constraint: global parity partition.
        let cons_of = |gid: Node| gid % 2;
        let results = run(3, |comm| {
            let dg = DistGraph::from_global(comm, &g);
            let mut labels = singleton_labels(&dg);
            let cons: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
                .map(|l| cons_of(dg.local_to_global(l)))
                .collect();
            parallel_sclp_cluster(comm, &dg, 100, 6, 1, &mut labels, Some(&cons));
            (
                labels[..dg.n_local()].to_vec(),
                (dg.first_global(), dg.n_local()),
            )
        });
        for (labels, (first, n_local)) in &results {
            #[allow(clippy::needless_range_loop)] // i is a local node id
            for i in 0..*n_local {
                let gid = *first as Node + i as Node;
                // Cluster IDs are node IDs; the cluster's parity class must
                // match the member's.
                assert_eq!(cons_of(labels[i]), cons_of(gid));
            }
        }
    }
}
