//! Sequential size-constrained label propagation (Section III-A).
//!
//! One algorithm, two roles:
//!
//! * **Cluster mode** (coarsening): labels start as node IDs; the size
//!   constraint is the soft bound `U = Lmax/f`; nodes are visited in
//!   increasing-degree order (the paper's quality/runtime improvement).
//! * **Refine mode** (uncoarsening): labels are block IDs of a `k`-way
//!   partition; the constraint is the partition's own `U = Lmax`; random
//!   visiting order; a node in an *overloaded* block must leave it if any
//!   eligible target exists (improves balance at the cost of cut).

use crate::cluster_map::ClusterMap;
use pgp_graph::ordering::{degree_order, random_order};
use pgp_graph::{CsrGraph, Node, Weight};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which role the algorithm plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Graph clustering for coarsening (soft constraint).
    Cluster,
    /// Partition refinement (tight constraint, overloaded-block rule).
    Refine,
}

/// Node visiting order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Increasing node degree (used during coarsening).
    Degree,
    /// Uniformly random, reshuffled every round (used during refinement).
    Random,
}

/// Configuration of one SCLP run.
#[derive(Clone, Debug)]
pub struct SclpConfig {
    /// Upper bound `U` on cluster/block weight.
    pub u_bound: Weight,
    /// Maximum number of rounds `ℓ`.
    pub iterations: usize,
    /// Cluster or Refine.
    pub mode: Mode,
    /// Visiting order.
    pub order: Order,
    /// RNG seed (tie breaking, random order).
    pub seed: u64,
}

/// Outcome statistics — the unified pass-metric type from `pgp-obs`
/// (`rounds` = rounds actually executed with early exit on convergence,
/// `moves` = total node moves, `gain` stays 0 for SCLP).
pub type SclpStats = pgp_obs::PassStats;

/// Runs size-constrained label propagation in place.
///
/// `labels` must hold one label per node: node IDs (identity) for
/// clustering, block IDs for refinement. `constraint`, when given, restricts
/// moves to clusters whose members share the node's constraint value — the
/// V-cycle rule that every cluster stays inside one block of the input
/// partition (Section IV-D).
pub fn sclp(
    graph: &CsrGraph,
    cfg: &SclpConfig,
    labels: &mut [Node],
    constraint: Option<&[Node]>,
) -> SclpStats {
    assert_eq!(labels.len(), graph.n(), "label vector length mismatch");
    if let Some(c) = constraint {
        assert_eq!(c.len(), graph.n(), "constraint vector length mismatch");
    }
    let n = graph.n();
    if n == 0 {
        return SclpStats::default();
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Cluster/block weights indexed by label.
    let max_label = labels.iter().copied().max().unwrap_or(0) as usize;
    let mut weights = vec![0 as Weight; max_label.max(n - 1) + 1];
    for v in graph.nodes() {
        weights[labels[v as usize] as usize] += graph.node_weight(v);
    }

    let mut map = ClusterMap::with_max_degree(graph.max_degree());
    let mut order = match cfg.order {
        Order::Degree => degree_order(graph),
        Order::Random => random_order(n, &mut rng),
    };

    let mut stats = SclpStats::default();
    for _round in 0..cfg.iterations {
        if cfg.order == Order::Random && stats.rounds > 0 {
            order = random_order(n, &mut rng);
        }
        let mut moved = 0u64;
        for &v in &order {
            if graph.degree(v) == 0 {
                continue;
            }
            let cur = labels[v as usize];
            map.clear();
            match constraint {
                None => {
                    for (u, w) in graph.neighbors_weighted(v) {
                        map.add(labels[u as usize], w);
                    }
                }
                Some(cons) => {
                    let cv = cons[v as usize];
                    for (u, w) in graph.neighbors_weighted(v) {
                        if cons[u as usize] == cv {
                            map.add(labels[u as usize], w);
                        }
                    }
                }
            }
            let cv_weight = graph.node_weight(v);
            let overloaded = cfg.mode == Mode::Refine && weights[cur as usize] > cfg.u_bound;
            let mut best: Node = if overloaded { Node::MAX } else { cur };
            let mut best_w: Weight = if overloaded { 0 } else { map.get(cur) };
            let mut ties = 1u32;
            for (c, w) in map.iter() {
                if c == cur {
                    continue;
                }
                if weights[c as usize] + cv_weight > cfg.u_bound {
                    continue; // not eligible: target would overload
                }
                if best == Node::MAX || w > best_w {
                    best = c;
                    best_w = w;
                    ties = 1;
                } else if w == best_w {
                    // Random tie break with reservoir sampling.
                    ties += 1;
                    if rng.gen_range(0..ties) == 0 {
                        best = c;
                    }
                }
            }
            if best != cur && best != Node::MAX {
                weights[cur as usize] -= cv_weight;
                weights[best as usize] += cv_weight;
                labels[v as usize] = best;
                moved += 1;
            }
        }
        stats.rounds += 1;
        stats.moves += moved;
        if moved == 0 {
            break;
        }
    }
    stats
}

/// Active-set variant of [`sclp`]: after one full sweep, only nodes whose
/// neighbourhood changed are revisited (a work queue instead of full
/// rounds). Converges to the same kind of local optimum with considerably
/// fewer node visits on large sparse graphs — the standard engineering of
/// "near linear-time" label propagation. `max_visits` bounds total work
/// (use `iterations * n` for parity with the round-based variant).
///
/// Returns the stats (with `rounds` = visits/n rounded up) and the exact
/// number of node visits.
pub fn sclp_active(
    graph: &CsrGraph,
    cfg: &SclpConfig,
    labels: &mut [Node],
    constraint: Option<&[Node]>,
    max_visits: usize,
) -> (SclpStats, u64) {
    assert_eq!(labels.len(), graph.n(), "label vector length mismatch");
    let n = graph.n();
    if n == 0 {
        return (SclpStats::default(), 0);
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let max_label = labels.iter().copied().max().unwrap_or(0) as usize;
    let mut weights = vec![0 as Weight; max_label.max(n - 1) + 1];
    for v in graph.nodes() {
        weights[labels[v as usize] as usize] += graph.node_weight(v);
    }
    let mut map = ClusterMap::with_max_degree(graph.max_degree());
    let seed_order = match cfg.order {
        Order::Degree => degree_order(graph),
        Order::Random => random_order(n, &mut rng),
    };
    let mut queue: std::collections::VecDeque<Node> = seed_order.into_iter().collect();
    let mut queued = vec![true; n];
    let mut stats = SclpStats::default();
    let mut visits = 0u64;

    while let Some(v) = queue.pop_front() {
        queued[v as usize] = false;
        if visits >= max_visits as u64 {
            break;
        }
        visits += 1;
        if graph.degree(v) == 0 {
            continue;
        }
        let cur = labels[v as usize];
        map.clear();
        match constraint {
            None => {
                for (u, w) in graph.neighbors_weighted(v) {
                    map.add(labels[u as usize], w);
                }
            }
            Some(cons) => {
                let cv = cons[v as usize];
                for (u, w) in graph.neighbors_weighted(v) {
                    if cons[u as usize] == cv {
                        map.add(labels[u as usize], w);
                    }
                }
            }
        }
        let cv_weight = graph.node_weight(v);
        let overloaded = cfg.mode == Mode::Refine && weights[cur as usize] > cfg.u_bound;
        let mut best: Node = if overloaded { Node::MAX } else { cur };
        let mut best_w: Weight = if overloaded { 0 } else { map.get(cur) };
        let mut ties = 1u32;
        for (c, w) in map.iter() {
            if c == cur {
                continue;
            }
            if weights[c as usize] + cv_weight > cfg.u_bound {
                continue;
            }
            if best == Node::MAX || w > best_w {
                best = c;
                best_w = w;
                ties = 1;
            } else if w == best_w {
                ties += 1;
                if rng.gen_range(0..ties) == 0 {
                    best = c;
                }
            }
        }
        if best != cur && best != Node::MAX {
            weights[cur as usize] -= cv_weight;
            weights[best as usize] += cv_weight;
            labels[v as usize] = best;
            stats.moves += 1;
            // Reactivate the neighbourhood: its best choices may change.
            for u in graph.neighbors(v) {
                if !queued[u as usize] {
                    queued[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    stats.rounds = (visits as usize).div_ceil(n.max(1));
    (stats, visits)
}

/// Convenience: clustering from singletons with degree ordering.
pub fn sclp_cluster(graph: &CsrGraph, u_bound: Weight, iterations: usize, seed: u64) -> Vec<Node> {
    let mut labels: Vec<Node> = graph.nodes().collect();
    sclp(
        graph,
        &SclpConfig {
            u_bound,
            iterations,
            mode: Mode::Cluster,
            order: Order::Degree,
            seed,
        },
        &mut labels,
        None,
    );
    labels
}

/// Convenience: refinement of a `k`-way partition in place; returns stats.
pub fn sclp_refine(
    graph: &CsrGraph,
    partition: &mut pgp_graph::Partition,
    eps: f64,
    iterations: usize,
    seed: u64,
) -> SclpStats {
    let k = partition.k();
    let u = pgp_graph::lmax(graph.total_node_weight(), k, eps);
    let mut labels: Vec<Node> = partition.assignment().to_vec();
    let stats = sclp(
        graph,
        &SclpConfig {
            u_bound: u,
            iterations,
            mode: Mode::Refine,
            order: Order::Random,
            seed,
        },
        &mut labels,
        None,
    );
    *partition = pgp_graph::Partition::from_assignment(graph, k, labels);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgp_graph::builder::from_edges;
    use pgp_graph::Partition;

    fn two_triangles() -> CsrGraph {
        from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn clustering_finds_triangles() {
        let g = two_triangles();
        let labels = sclp_cluster(&g, 3, 10, 1);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn u_bound_one_freezes_singletons() {
        let g = two_triangles();
        let labels = sclp_cluster(&g, 1, 10, 1);
        let expect: Vec<Node> = g.nodes().collect();
        assert_eq!(labels, expect);
    }

    #[test]
    fn cluster_weights_respect_bound() {
        let g = pgp_gen::mesh::grid2d(12, 12);
        let u = 10;
        let labels = sclp_cluster(&g, u, 8, 3);
        let mut w = vec![0u64; g.n()];
        for v in g.nodes() {
            w[labels[v as usize] as usize] += g.node_weight(v);
        }
        assert!(
            w.iter().all(|&x| x <= u),
            "max cluster {}",
            w.iter().max().unwrap()
        );
        // And the clustering is non-trivial.
        let clusters = w.iter().filter(|&&x| x > 0).count();
        assert!(clusters < g.n() / 2, "only {clusters} clusters");
    }

    #[test]
    fn refinement_reduces_cut_of_random_partition() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let g = pgp_gen::mesh::grid2d(16, 16);
        // Random balanced bipartition: plenty of profitable moves.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(8);
        let mut ids: Vec<usize> = (0..256).collect();
        ids.shuffle(&mut rng);
        let mut assign = vec![0u32; 256];
        for &i in &ids[128..] {
            assign[i] = 1;
        }
        let mut p = Partition::from_assignment(&g, 2, assign);
        let before = p.edge_cut(&g);
        sclp_refine(&g, &mut p, 0.03, 12, 5);
        let after = p.edge_cut(&g);
        assert!(after < before / 2, "cut {before} -> {after}");
        assert!(p.is_balanced(&g, 0.03), "imbalance {}", p.imbalance(&g));
    }

    #[test]
    fn overloaded_block_rule_restores_balance() {
        let g = pgp_gen::mesh::grid2d(10, 10);
        // 90/10 split: block 0 badly overloaded.
        let assign: Vec<u32> = (0..100).map(|i| if i < 90 { 0 } else { 1 }).collect();
        let mut p = Partition::from_assignment(&g, 2, assign);
        assert!(!p.is_balanced(&g, 0.03));
        sclp_refine(&g, &mut p, 0.03, 30, 7);
        assert!(p.is_balanced(&g, 0.03), "imbalance {}", p.imbalance(&g));
    }

    #[test]
    fn vcycle_constraint_respected() {
        let g = two_triangles();
        // Input partition separates nodes {0,1,2} and {3,4,5}; clusters must
        // not straddle it even though the bridge is attractive.
        let cons = vec![0, 0, 0, 1, 1, 1];
        let mut labels: Vec<Node> = g.nodes().collect();
        sclp(
            &g,
            &SclpConfig {
                u_bound: 100,
                iterations: 10,
                mode: Mode::Cluster,
                order: Order::Degree,
                seed: 2,
            },
            &mut labels,
            Some(&cons),
        );
        for (v, &l) in labels.iter().enumerate() {
            // The label's constraint class must match the node's.
            assert_eq!(cons[l as usize], cons[v]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = pgp_gen::ba::barabasi_albert(300, 3, 4);
        assert_eq!(sclp_cluster(&g, 30, 5, 9), sclp_cluster(&g, 30, 5, 9));
    }

    #[test]
    fn empty_and_isolated() {
        let g = CsrGraph::empty();
        let mut labels: Vec<Node> = Vec::new();
        let s = sclp(
            &g,
            &SclpConfig {
                u_bound: 5,
                iterations: 3,
                mode: Mode::Cluster,
                order: Order::Degree,
                seed: 1,
            },
            &mut labels,
            None,
        );
        assert_eq!(s.rounds, 0);
        // Isolated nodes keep their labels.
        let g2 = from_edges(3, &[(0, 1)]);
        let labels2 = sclp_cluster(&g2, 5, 3, 1);
        assert_eq!(labels2[2], 2);
    }

    #[test]
    fn active_set_matches_round_based_quality_with_less_work() {
        let (g, _) = pgp_gen::sbm::sbm(2000, pgp_gen::sbm::SbmParams::default(), 7);
        let cfg = SclpConfig {
            u_bound: 200,
            iterations: 8,
            mode: Mode::Cluster,
            order: Order::Degree,
            seed: 3,
        };
        let mut round_labels: Vec<Node> = g.nodes().collect();
        sclp(&g, &cfg, &mut round_labels, None);
        let mut active_labels: Vec<Node> = g.nodes().collect();
        let (_, visits) = sclp_active(&g, &cfg, &mut active_labels, None, 8 * g.n());
        let round_cov = pgp_graph::metrics::coverage(&g, &round_labels);
        let active_cov = pgp_graph::metrics::coverage(&g, &active_labels);
        assert!(
            active_cov > round_cov - 0.1,
            "active {active_cov:.3} vs rounds {round_cov:.3}"
        );
        // The work queue converges well below the round-based budget.
        assert!(
            (visits as usize) < 8 * g.n(),
            "no early convergence: {visits} visits"
        );
    }

    #[test]
    fn active_set_respects_bound_and_constraint() {
        let g = pgp_gen::mesh::grid2d(12, 12);
        let cons: Vec<Node> = g.nodes().map(|v| v % 3).collect();
        let cfg = SclpConfig {
            u_bound: 9,
            iterations: 6,
            mode: Mode::Cluster,
            order: Order::Degree,
            seed: 1,
        };
        let mut labels: Vec<Node> = g.nodes().collect();
        sclp_active(&g, &cfg, &mut labels, Some(&cons), 6 * g.n());
        let mut w = vec![0u64; g.n()];
        for v in g.nodes() {
            w[labels[v as usize] as usize] += 1;
            assert_eq!(cons[labels[v as usize] as usize], cons[v as usize]);
        }
        assert!(w.iter().all(|&x| x <= 9));
    }

    #[test]
    fn refine_never_moves_into_overloaded_block() {
        let g = pgp_gen::mesh::grid2d(6, 6);
        let assign: Vec<u32> = (0..36).map(|i| if i < 18 { 0 } else { 1 }).collect();
        let mut p = Partition::from_assignment(&g, 2, assign);
        sclp_refine(&g, &mut p, 0.0, 10, 3);
        // eps = 0: Lmax = 18; blocks must stay exactly even.
        assert_eq!(p.block_weight(0), 18);
        assert_eq!(p.block_weight(1), 18);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Cluster mode always yields cluster weights ≤ U (for U ≥ max node
        /// weight) and labels that are real node IDs.
        #[test]
        fn cluster_mode_invariants(n in 2usize..60, m in 1usize..150, u in 1u64..20, seed in 0u64..50) {
            let g = pgp_gen::er::gnm(n, m.min(n*(n-1)/2), seed);
            let u = u.max(1);
            let labels = sclp_cluster(&g, u, 5, seed);
            let mut w = vec![0u64; n];
            for v in g.nodes() {
                prop_assert!((labels[v as usize] as usize) < n);
                w[labels[v as usize] as usize] += g.node_weight(v);
            }
            prop_assert!(w.iter().all(|&x| x <= u));
        }

        /// Refine mode never worsens balance and never produces an invalid
        /// assignment.
        #[test]
        fn refine_mode_invariants(seed in 0u64..40) {
            let g = pgp_gen::mesh::grid2d(9, 7);
            let k = 3;
            let assign: Vec<u32> = (0..63u32).map(|i| i % k).collect();
            let mut p = pgp_graph::Partition::from_assignment(&g, k as usize, assign);
            let before = p.max_block_weight();
            sclp_refine(&g, &mut p, 0.03, 6, seed);
            prop_assert!(p.max_block_weight() <= before.max(pgp_graph::lmax(63, 3, 0.03)));
            p.validate(&g, 0.10).unwrap();
        }
    }
}
