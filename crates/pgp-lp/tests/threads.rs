//! Tier-1 determinism tests for the intra-PE worker pool (DESIGN.md §13).
//!
//! The contract under test: for a fixed `(seed, p)` the chunked SCLP path
//! is a pure function of the graph — bit-identical across every
//! `threads_per_pe ≥ 2` (the chunk boundaries are graph-derived, workers
//! read only round-start state, and the merge goes in chunk-index order)
//! and across repeated runs. `threads_per_pe = 1` is the classic
//! sequential path and is *allowed* to differ from the chunked result,
//! but must itself stay deterministic.
//!
//! Graphs are sized so each PE's local range splits into several chunks
//! (`TARGET_CHUNK_NODES = 2048`): n = 12 000 at p = 2 gives 2 chunks per
//! PE, so cross-chunk merging is genuinely exercised.

use pgp_dmp::{run_config, DistGraph, RunConfig};
use pgp_graph::{CsrGraph, Node};
use pgp_lp::{parallel_sclp_cluster, parallel_sclp_refine, singleton_labels};

/// Runs `f` on `p` PEs, each with `threads` pool workers.
fn run_t<R, F>(p: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&pgp_dmp::Comm) -> R + Sync,
{
    let cfg = RunConfig {
        threads_per_pe: threads,
        ..RunConfig::default()
    };
    run_config(p, cfg, f)
        .into_iter()
        .map(|r| r.expect("fault-free run cannot fail"))
        .collect()
}

/// Per-PE owned labels after a clustering run.
fn cluster_labels(g: &CsrGraph, p: usize, threads: usize, seed: u64) -> Vec<Vec<Node>> {
    run_t(p, threads, |comm| {
        let dg = DistGraph::from_global(comm, g);
        let mut labels = singleton_labels(&dg);
        let u = (dg.total_node_weight() / 20).max(2);
        parallel_sclp_cluster(comm, &dg, u, 5, seed, &mut labels, None);
        labels[..dg.n_local()].to_vec()
    })
}

/// Per-PE owned blocks after a refinement run from a `global % k` start.
fn refine_blocks(g: &CsrGraph, p: usize, threads: usize, seed: u64, k: usize) -> Vec<Vec<Node>> {
    let lmax = pgp_graph::lmax(g.total_node_weight(), k, 0.03);
    run_t(p, threads, |comm| {
        let dg = DistGraph::from_global(comm, g);
        let mut blocks: Vec<Node> = (0..(dg.n_local() + dg.n_ghost()) as Node)
            .map(|l| dg.local_to_global(l) % k as Node)
            .collect();
        parallel_sclp_refine(comm, &dg, k, lmax, 6, seed, &mut blocks);
        blocks[..dg.n_local()].to_vec()
    })
}

fn test_graphs() -> Vec<(&'static str, CsrGraph)> {
    let (sbm, _) = pgp_gen::sbm::sbm(12_000, pgp_gen::sbm::SbmParams::default(), 11);
    vec![
        ("ba", pgp_gen::ba::barabasi_albert(12_000, 3, 7)),
        ("sbm", sbm),
    ]
}

#[test]
fn cluster_is_identical_across_worker_counts() {
    for (name, g) in test_graphs() {
        let base = cluster_labels(&g, 2, 2, 5);
        for t in [4, 8] {
            assert_eq!(base, cluster_labels(&g, 2, t, 5), "{name}: T=2 vs T={t}");
        }
        // Run-to-run determinism of the chunked path itself.
        assert_eq!(base, cluster_labels(&g, 2, 2, 5), "{name}: rerun");
    }
}

#[test]
fn refine_is_identical_across_worker_counts() {
    for (name, g) in test_graphs() {
        let k = 4;
        let base = refine_blocks(&g, 2, 2, 9, k);
        for t in [4, 8] {
            assert_eq!(base, refine_blocks(&g, 2, t, 9, k), "{name}: T=2 vs T={t}");
        }
        assert_eq!(base, refine_blocks(&g, 2, 2, 9, k), "{name}: rerun");
    }
}

#[test]
fn single_thread_path_stays_deterministic() {
    for (name, g) in test_graphs() {
        assert_eq!(
            cluster_labels(&g, 2, 1, 5),
            cluster_labels(&g, 2, 1, 5),
            "{name}: T=1 rerun"
        );
    }
}

#[test]
fn chunked_refine_respects_lmax_exactly() {
    // The merge-time budget recheck must keep the hard balance bound even
    // when several chunks propose moves into the same block.
    let g = pgp_gen::ba::barabasi_albert(12_000, 3, 3);
    let k = 4;
    let lmax = pgp_graph::lmax(g.total_node_weight(), k, 0.03);
    let parts = refine_blocks(&g, 2, 4, 13, k);
    let mut weights = vec![0u64; k];
    let mut global = vec![0 as Node; g.n()];
    let mut next = 0usize;
    for part in &parts {
        for &b in part {
            global[next] = b;
            next += 1;
        }
    }
    assert_eq!(next, g.n());
    for (v, &b) in global.iter().enumerate() {
        weights[b as usize] += g.node_weight(v as Node);
    }
    let max = weights.iter().copied().max().expect("k >= 1");
    assert!(max <= lmax, "max block weight {max} vs Lmax {lmax}");
}

#[test]
fn chunked_merge_survives_contention_stress() {
    // Many workers on few chunks, repeated: any schedule-dependence in
    // chunk claiming or merge order would show up as run-to-run drift.
    let g = pgp_gen::ba::barabasi_albert(12_000, 3, 17);
    let base = cluster_labels(&g, 2, 8, 23);
    for round in 0..4 {
        assert_eq!(base, cluster_labels(&g, 2, 8, 23), "stress round {round}");
    }
}
